"""Original open source Parquet reader (section V.C, figure 4).

"The original reader conducts analysis in three steps: (1) reads all
Parquet data row by row using the open source Parquet library; (2)
transforms row-based records into columnar Presto blocks in-memory for all
nested columns; and (3) evaluates the predicate on these blocks, executing
the queries in our Presto engine."

Accordingly this reader: reads *every* column of the file (no pruning),
decodes values one at a time (no vectorization), assembles full records,
and only then converts the records into columnar blocks.  Predicates are
NOT evaluated here — the engine does that on the returned pages.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.blocks import block_from_values
from repro.core.page import Page
from repro.formats.parquet.encoding import (
    DICTIONARY,
    decode_dictionary_indices_scalar,
    decode_levels,
    decode_plain_scalar,
)
from repro.formats.parquet.file import ParquetFile
from repro.formats.parquet.shredder import ColumnLevels, assemble_column


class OldParquetReader:
    """Row-by-row reader of all columns."""

    def __init__(self, file: ParquetFile) -> None:
        self.file = file
        self.values_decoded = 0

    def read_pages(self) -> Iterator[Page]:
        """Yield one page per row group containing every schema column."""
        schema = self.file.schema
        column_types = [t for _, t in schema.columns]
        for group_index in range(self.file.num_row_groups()):
            num_rows = self.file.metadata.row_groups[group_index].num_rows
            # Step 1: read ALL leaf columns of ALL fields, value by value.
            per_column_values: list[list[Any]] = []
            for name, presto_type in schema.columns:
                chunks: dict[str, ColumnLevels] = {}
                for leaf in schema.leaves_under(name):
                    chunks[leaf.path] = self._read_chunk_scalar(group_index, leaf.path)
                per_column_values.append(
                    assemble_column(name, presto_type, chunks, num_rows)
                )
            # Row-by-row: materialize full records.
            records = [
                tuple(column[i] for column in per_column_values)
                for i in range(num_rows)
            ]
            # Step 2: transform row-based records into columnar blocks.
            blocks = []
            for channel, presto_type in enumerate(column_types):
                blocks.append(
                    block_from_values(
                        presto_type, [record[channel] for record in records]
                    )
                )
            yield Page(blocks, num_rows)

    def _read_chunk_scalar(self, group_index: int, path: str) -> ColumnLevels:
        """Decode one leaf chunk one value at a time."""
        chunk_meta = self.file.chunk_metadata(group_index, path)
        leaf = self.file.schema.leaf(path)
        count = chunk_meta.num_values
        repetition = list(decode_levels(self.file.read_segment(group_index, path, "rep"), count))
        definition = list(decode_levels(self.file.read_segment(group_index, path, "def"), count))
        defined_count = count - chunk_meta.statistics.null_count

        if chunk_meta.encoding == DICTIONARY:
            dictionary = decode_plain_scalar(
                self.file.read_segment(group_index, path, "dict"),
                leaf.type,
                _dictionary_size(self.file, group_index, path),
            )
            indices = decode_dictionary_indices_scalar(
                self.file.read_segment(group_index, path, "data"), defined_count
            )
            defined_values: list[Any] = [dictionary[i] for i in indices]
        else:
            defined_values = decode_plain_scalar(
                self.file.read_segment(group_index, path, "data"),
                leaf.type,
                defined_count,
            )
        self.values_decoded += count

        values: list[Any] = [None] * count
        cursor = 0
        max_def = leaf.max_definition_level
        for i, level in enumerate(definition):
            if level == max_def:
                values[i] = defined_values[cursor]
                cursor += 1
        return ColumnLevels(
            [int(r) for r in repetition], [int(d) for d in definition], values
        )


def _dictionary_size(file: ParquetFile, group_index: int, path: str) -> int:
    """Number of dictionary entries, recovered by scanning the segment."""
    import struct

    data = file.read_segment(group_index, path, "dict")
    # varchar dictionary: length-prefixed entries.
    count = 0
    pos = 0
    while pos < len(data):
        (length,) = struct.unpack_from("<I", data, pos)
        pos += 4 + length
        count += 1
    return count
