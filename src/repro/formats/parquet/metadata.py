"""File footer metadata: schema, row groups, column chunk statistics.

"Each Parquet file has a footer that stores codecs, encoding information,
as well as column-level statistics, e.g., the minimum and maximum number of
column values" (section V.B).  Everything here serializes to JSON so the
footer can live at the end of the file blob and be cached by the worker's
footer cache (section VII.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.formats.parquet.schema import ParquetSchema


@dataclass(frozen=True)
class ColumnStatistics:
    """Min/max/null statistics for one column chunk."""

    min_value: Optional[Any]
    max_value: Optional[Any]
    null_count: int
    num_values: int  # triplet count (defined + null slots)

    def to_dict(self) -> dict:
        return {
            "min": self.min_value,
            "max": self.max_value,
            "nullCount": self.null_count,
            "numValues": self.num_values,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnStatistics":
        return cls(data["min"], data["max"], data["nullCount"], data["numValues"])

    @classmethod
    def of(cls, values: list, num_slots: int) -> "ColumnStatistics":
        """Compute stats from the defined (non-null) values of a chunk."""
        defined = [v for v in values if v is not None]
        if not defined:
            return cls(None, None, num_slots, num_slots)
        # NaN never orders against anything, so a single NaN would make
        # min()/max() order-dependent garbage: compare the comparable.
        comparable = [v for v in defined if v == v]
        if not comparable:
            return cls(None, None, num_slots - len(defined), num_slots)
        try:
            low, high = min(comparable), max(comparable)
        except TypeError:
            low = high = None  # non-orderable values: no min/max stats
        return cls(low, high, num_slots - len(defined), num_slots)


@dataclass(frozen=True)
class ColumnChunkMetadata:
    """Layout and statistics of one leaf column within one row group.

    ``segments`` maps segment name ("rep", "def", "data", "dict") to
    (absolute offset, compressed length) within the file blob.  The
    dictionary lives in its own segment so dictionary pushdown can read it
    without touching the data pages.
    """

    path: str
    encoding: str  # "plain" | "dictionary"
    codec: str
    num_values: int
    statistics: ColumnStatistics
    segments: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def has_dictionary(self) -> bool:
        return "dict" in self.segments

    def total_compressed_bytes(self) -> int:
        return sum(length for _, length in self.segments.values())

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "encoding": self.encoding,
            "codec": self.codec,
            "numValues": self.num_values,
            "statistics": self.statistics.to_dict(),
            "segments": {k: list(v) for k, v in self.segments.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnChunkMetadata":
        return cls(
            data["path"],
            data["encoding"],
            data["codec"],
            data["numValues"],
            ColumnStatistics.from_dict(data["statistics"]),
            {k: (v[0], v[1]) for k, v in data["segments"].items()},
        )


@dataclass(frozen=True)
class RowGroupMetadata:
    num_rows: int
    columns: dict[str, ColumnChunkMetadata]  # keyed by leaf path

    def column(self, path: str) -> ColumnChunkMetadata:
        return self.columns[path]

    def to_dict(self) -> dict:
        return {
            "numRows": self.num_rows,
            "columns": {k: v.to_dict() for k, v in self.columns.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RowGroupMetadata":
        return cls(
            data["numRows"],
            {k: ColumnChunkMetadata.from_dict(v) for k, v in data["columns"].items()},
        )


@dataclass(frozen=True)
class FileMetadata:
    """The footer: schema plus row group layout."""

    schema: ParquetSchema
    row_groups: list[RowGroupMetadata]
    created_by: str = "repro-parquet"

    @property
    def num_rows(self) -> int:
        return sum(g.num_rows for g in self.row_groups)

    def to_dict(self) -> dict:
        return {
            "schema": self.schema.to_dict(),
            "rowGroups": [g.to_dict() for g in self.row_groups],
            "createdBy": self.created_by,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileMetadata":
        return cls(
            ParquetSchema.from_dict(data["schema"]),
            [RowGroupMetadata.from_dict(g) for g in data["rowGroups"]],
            data.get("createdBy", "repro-parquet"),
        )
