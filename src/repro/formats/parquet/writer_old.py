"""Legacy Parquet writer (section V.J).

"The legacy Presto Parquet writer iterates each columnar block in a page
and reconstructs every single record, then it consumes each individual
record and writes value bytes to Parquet pages.  The old Parquet writer was
adding unnecessary overhead to convert Presto's columnar in-memory data
into row based records, and then doing one more conversion to write row
based records to Parquet's columnar on disk file format."

This writer reproduces that double conversion faithfully: pages are first
materialized as Python record objects (column → row transform), and the
records are then consumed one at a time to rebuild per-column value
streams (row → column transform) before encoding.  It produces byte-for-
byte the same file format as the native writer.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.core.page import Page
from repro.formats.parquet import compression
from repro.formats.parquet.file import LeafChunk, ParquetBlobWriter
from repro.formats.parquet.schema import ParquetSchema
from repro.formats.parquet.shredder import shred_column


class OldParquetWriter:
    """Row-reconstructing writer: columnar → records → columnar → disk."""

    def __init__(
        self,
        schema: ParquetSchema,
        codec: str = compression.SNAPPY,
        row_group_size: int = 10_000,
    ) -> None:
        self.schema = schema
        self.codec = codec
        self.row_group_size = row_group_size

    def write_pages(self, pages: Iterable[Page]) -> bytes:
        blob = ParquetBlobWriter(self.schema, self.codec, value_at_a_time=True)
        column_names = self.schema.column_names()
        for page in pages:
            # Conversion 1: columnar page → row-based records.
            records = [dict(zip(column_names, row)) for row in page.loaded().rows()]
            for start in range(0, max(len(records), 1), self.row_group_size):
                group = records[start : start + self.row_group_size]
                if not group and start > 0:
                    break
                blob.add_row_group(len(group), self._shred_records(group))
        return blob.finish()

    def _shred_records(self, records: list[dict[str, Any]]) -> dict[str, LeafChunk]:
        chunks: dict[str, LeafChunk] = {}
        for name, presto_type in self.schema.columns:
            # Conversion 2: consume each individual record, rebuilding the
            # column's value stream one value at a time.
            column_values: list[Any] = []
            for record in records:
                column_values.append(record[name])
            for path, levels in shred_column(name, presto_type, column_values).items():
                leaf = self.schema.leaf(path)
                max_def = leaf.max_definition_level
                defined = [
                    v for v, d in zip(levels.values, levels.definition) if d == max_def
                ]
                chunks[path] = LeafChunk(
                    leaf=leaf,
                    repetition=levels.repetition,
                    definition=levels.definition,
                    defined_values=defined,
                    num_slots=len(levels),
                )
        return chunks
