"""Compression codecs for column chunks.

The writer benchmarks (figures 18-20) sweep Snappy, Gzip, and no
compression.  Real Snappy is unavailable offline, so it is modeled with
zlib at its fastest level — preserving Snappy's defining trade-off versus
gzip (much faster, lower ratio), which is what shapes the figures.
"""

from __future__ import annotations

import zlib

SNAPPY = "snappy"
GZIP = "gzip"
UNCOMPRESSED = "none"

CODECS = (UNCOMPRESSED, SNAPPY, GZIP)


def compress(data: bytes, codec: str) -> bytes:
    if codec == UNCOMPRESSED:
        return data
    if codec == SNAPPY:
        # Z_RLE restricts matching to run-lengths: an order of magnitude
        # faster than full deflate at a worse ratio — Snappy's trade-off.
        compressor = zlib.compressobj(1, zlib.DEFLATED, zlib.MAX_WBITS, 8, zlib.Z_RLE)
        return compressor.compress(data) + compressor.flush()
    if codec == GZIP:
        return zlib.compress(data, level=6)
    raise ValueError(f"unknown codec {codec!r}")


def decompress(data: bytes, codec: str) -> bytes:
    if codec == UNCOMPRESSED:
        return data
    if codec in (SNAPPY, GZIP):
        return zlib.decompress(data)
    raise ValueError(f"unknown codec {codec!r}")
