"""Parquet schema: leaf columns with repetition/definition levels.

A table schema (engine types) maps to a tree of optional groups (structs),
repeated groups (arrays/maps) and optional leaves.  Each *leaf* is stored
as its own column on disk — "Parquet is storing nested fields as separate
columns on disk.  This gives us the opportunity not to scan unwanted fields
even within the same struct" (section V.B).

Level accounting (Dremel):

- every optional node (all structs and leaves here) adds 1 definition level;
- every array/map adds 2 definition levels (container non-null; slot
  exists, so an empty container is distinguishable) and 1 repetition level;
- map entries contribute ``<path>.key`` and ``<path>.value`` leaves,
  arrays contribute ``<path>.element``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.types import (
    ArrayType,
    MapType,
    PrestoType,
    RowType,
    parse_type,
)


@dataclass(frozen=True)
class LeafColumn:
    """One physical column: a scalar leaf of the schema tree."""

    path: str  # dotted: "base.city_id", "tags.element", "features.key"
    type: PrestoType  # scalar type of the stored values
    max_definition_level: int
    max_repetition_level: int


class ParquetSchema:
    """Schema of one file: ordered top-level columns with nested structure."""

    def __init__(self, columns: list[tuple[str, PrestoType]]) -> None:
        self.columns = list(columns)
        self._types = dict(columns)
        self._leaves: list[LeafColumn] = []
        for name, presto_type in columns:
            self._leaves.extend(_enumerate_leaves(name, presto_type, 0, 0))
        self._leaf_index = {leaf.path: leaf for leaf in self._leaves}

    def column_type(self, name: str) -> PrestoType:
        return self._types[name]

    def column_names(self) -> list[str]:
        return [name for name, _ in self.columns]

    def leaves(self) -> list[LeafColumn]:
        return list(self._leaves)

    def leaf(self, path: str) -> LeafColumn:
        return self._leaf_index[path]

    def has_leaf(self, path: str) -> bool:
        return path in self._leaf_index

    def leaves_under(self, prefix: str) -> list[LeafColumn]:
        """All leaves whose path equals ``prefix`` or starts with it.

        This is the unit of nested column pruning: requesting
        ``base.city_id`` selects exactly the leaves under that path.
        """
        dotted = prefix + "."
        return [
            leaf
            for leaf in self._leaves
            if leaf.path == prefix or leaf.path.startswith(dotted)
        ]

    def type_at(self, path: str) -> PrestoType:
        """Engine type of an arbitrary dotted path (leaf or subtree)."""
        parts = path.split(".")
        current = self._types[parts[0]]
        for part in parts[1:]:
            if isinstance(current, RowType):
                current = current.field_type(part)
            elif isinstance(current, ArrayType) and part == "element":
                current = current.element_type
            elif isinstance(current, MapType) and part == "key":
                current = current.key_type
            elif isinstance(current, MapType) and part == "value":
                current = current.value_type
            else:
                raise KeyError(f"no path {path!r} in schema")
        return current

    # -- serialization (for the file footer) --------------------------------

    def to_dict(self) -> dict:
        return {"columns": [[name, t.display()] for name, t in self.columns]}

    @classmethod
    def from_dict(cls, data: dict) -> "ParquetSchema":
        return cls([(name, parse_type(t)) for name, t in data["columns"]])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ParquetSchema) and self.columns == other.columns


def _enumerate_leaves(
    path: str, presto_type: PrestoType, def_level: int, rep_level: int
) -> Iterator[LeafColumn]:
    if isinstance(presto_type, RowType):
        for field in presto_type.fields:
            yield from _enumerate_leaves(
                f"{path}.{field.name}", field.type, def_level + 1, rep_level
            )
        return
    if isinstance(presto_type, ArrayType):
        yield from _enumerate_leaves(
            f"{path}.element", presto_type.element_type, def_level + 2, rep_level + 1
        )
        return
    if isinstance(presto_type, MapType):
        yield from _enumerate_leaves(
            f"{path}.key", presto_type.key_type, def_level + 2, rep_level + 1
        )
        yield from _enumerate_leaves(
            f"{path}.value", presto_type.value_type, def_level + 2, rep_level + 1
        )
        return
    # Scalar leaf: itself optional (+1 definition level).
    yield LeafColumn(path, presto_type, def_level + 1, rep_level)
