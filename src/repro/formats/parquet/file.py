"""Physical file layout and low-level serializer.

Blob layout::

    [chunk segment bytes ...][footer JSON][8-byte LE footer length][magic]

The footer sits at the end, like real Parquet, so a reader must either
seek-and-read it or hit the footer cache (section VII.B).  Both writers
share this serializer — old and native writers produce identical files and
differ only in how they get from engine pages to leaf chunk streams.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.common.errors import StorageError
from repro.formats.parquet import compression
from repro.formats.parquet.encoding import (
    DICTIONARY,
    PLAIN,
    build_dictionary,
    encode_dictionary_indices,
    encode_dictionary_indices_value_at_a_time,
    encode_levels,
    encode_levels_value_at_a_time,
    encode_plain,
    encode_plain_array,
    encode_plain_value_at_a_time,
)
from repro.formats.parquet.metadata import (
    ColumnChunkMetadata,
    ColumnStatistics,
    FileMetadata,
    RowGroupMetadata,
)
from repro.formats.parquet.schema import LeafColumn, ParquetSchema
from repro.storage.filesystem import BytesInput, SeekableInput

MAGIC = b"PARSIM01"
FOOTER_SUFFIX_LENGTH = 8 + len(MAGIC)


@dataclass
class LeafChunk:
    """One leaf column's data for one row group, ready to serialize.

    ``defined_values`` holds only the non-null values (definition level ==
    max); ``statistics_values`` may be provided when the caller already has
    a cheap value list for stats (defaults to ``defined_values``).
    """

    leaf: LeafColumn
    repetition: Union[Sequence[int], np.ndarray]
    definition: Union[Sequence[int], np.ndarray]
    defined_values: Union[Sequence[Any], np.ndarray]
    num_slots: int

    def compute_statistics(self) -> ColumnStatistics:
        values = self.defined_values
        if isinstance(values, np.ndarray) and values.dtype != object:
            if len(values) == 0:
                return ColumnStatistics(None, None, self.num_slots, self.num_slots)
            comparable = values
            if np.issubdtype(values.dtype, np.floating):
                # NaN poisons ndarray.min()/max() (both become NaN, which
                # then defeats every stats-based row-group skip); min/max
                # summarize the comparable values only.
                comparable = values[~np.isnan(values)]
            if len(comparable) == 0:
                return ColumnStatistics(
                    None, None, self.num_slots - len(values), self.num_slots
                )
            low = comparable.min().item()
            high = comparable.max().item()
            return ColumnStatistics(low, high, self.num_slots - len(values), self.num_slots)
        return ColumnStatistics.of(list(values), self.num_slots)


class ParquetBlobWriter:
    """Accumulates serialized row groups and produces the final blob.

    ``value_at_a_time=True`` selects the legacy encoding loops (one Python
    ``struct.pack`` per value/level) used by the old writer; the produced
    bytes are identical either way.
    """

    def __init__(
        self,
        schema: ParquetSchema,
        codec: str = compression.SNAPPY,
        value_at_a_time: bool = False,
    ) -> None:
        self.schema = schema
        self.codec = codec
        self.value_at_a_time = value_at_a_time
        self._body = bytearray()
        self._row_groups: list[RowGroupMetadata] = []

    def _append_segment(self, data: bytes) -> tuple[int, int]:
        compressed = compression.compress(data, self.codec)
        offset = len(self._body)
        self._body.extend(compressed)
        return offset, len(compressed)

    def add_row_group(self, num_rows: int, chunks: dict[str, LeafChunk]) -> None:
        if self.value_at_a_time:
            levels_encoder = encode_levels_value_at_a_time
            plain_encoder = lambda values, t: encode_plain_value_at_a_time(list(values), t)
            indices_encoder = encode_dictionary_indices_value_at_a_time
        else:
            levels_encoder = encode_levels
            plain_encoder = lambda values, t: (
                encode_plain_array(values, t)
                if isinstance(values, np.ndarray)
                else encode_plain(values, t)
            )
            indices_encoder = encode_dictionary_indices

        columns: dict[str, ColumnChunkMetadata] = {}
        for path, chunk in chunks.items():
            segments: dict[str, tuple[int, int]] = {}
            segments["rep"] = self._append_segment(levels_encoder(chunk.repetition))
            segments["def"] = self._append_segment(levels_encoder(chunk.definition))

            encoding = PLAIN
            values = chunk.defined_values
            dictionary = None
            # Dictionary-encode string-like columns only, so both writers
            # make identical encoding decisions regardless of whether the
            # values arrive as numpy arrays or Python lists.
            if chunk.leaf.type.name in ("varchar", "date", "timestamp"):
                dictionary = build_dictionary(list(values))
            if dictionary is not None:
                dict_values, indices = dictionary
                encoding = DICTIONARY
                segments["dict"] = self._append_segment(
                    plain_encoder(dict_values, chunk.leaf.type)
                )
                segments["data"] = self._append_segment(indices_encoder(indices))
            else:
                segments["data"] = self._append_segment(
                    plain_encoder(values, chunk.leaf.type)
                )

            columns[path] = ColumnChunkMetadata(
                path=path,
                encoding=encoding,
                codec=self.codec,
                num_values=chunk.num_slots,
                statistics=chunk.compute_statistics(),
                segments=segments,
            )
        self._row_groups.append(RowGroupMetadata(num_rows, columns))

    def finish(self) -> bytes:
        footer = FileMetadata(self.schema, self._row_groups)
        footer_bytes = json.dumps(footer.to_dict()).encode("utf-8")
        return (
            bytes(self._body)
            + footer_bytes
            + struct.pack("<Q", len(footer_bytes))
            + MAGIC
        )


def write_file_bytes(
    schema: ParquetSchema,
    row_groups: list[tuple[int, dict[str, LeafChunk]]],
    codec: str = compression.SNAPPY,
) -> bytes:
    writer = ParquetBlobWriter(schema, codec)
    for num_rows, chunks in row_groups:
        writer.add_row_group(num_rows, chunks)
    return writer.finish()


def read_footer(stream: SeekableInput) -> FileMetadata:
    """Read and parse the footer from the end of the file."""
    size = stream.size()
    if size < FOOTER_SUFFIX_LENGTH:
        raise StorageError("not a parquet file: too small")
    suffix = stream.read_fully(size - FOOTER_SUFFIX_LENGTH, FOOTER_SUFFIX_LENGTH)
    if suffix[8:] != MAGIC:
        raise StorageError("not a parquet file: bad magic")
    (footer_length,) = struct.unpack("<Q", suffix[:8])
    footer_bytes = stream.read_fully(
        size - FOOTER_SUFFIX_LENGTH - footer_length, footer_length
    )
    return FileMetadata.from_dict(json.loads(footer_bytes.decode("utf-8")))


class ParquetFile:
    """Reader-side handle: footer plus segment access.

    ``metadata`` may be supplied externally (by the footer cache) to skip
    the footer read entirely.
    """

    def __init__(
        self,
        source: Union[bytes, SeekableInput],
        metadata: Optional[FileMetadata] = None,
    ) -> None:
        self._stream = BytesInput(source) if isinstance(source, bytes) else source
        self._metadata = metadata or read_footer(self._stream)
        # IO accounting for the reader benchmarks.
        self.bytes_read = 0
        self.segments_read = 0
        self._data_cache = None
        self._data_cache_key: Optional[str] = None

    def attach_data_cache(self, cache, file_key: str) -> None:
        """Serve segment reads through a worker-local tiered data cache.

        ``cache`` is a :class:`repro.cache.data_cache.TieredDataCache`
        (duck-typed here so the formats layer stays import-free of the
        cache package); ``file_key`` disambiguates files sharing one
        cache.  Cached segments skip the stream read, so ``bytes_read``
        counts only actual storage IO.
        """
        self._data_cache = cache
        self._data_cache_key = file_key

    @property
    def metadata(self) -> FileMetadata:
        return self._metadata

    @property
    def schema(self) -> ParquetSchema:
        return self._metadata.schema

    def num_row_groups(self) -> int:
        return len(self._metadata.row_groups)

    def read_segment(self, group_index: int, path: str, name: str) -> bytes:
        """Read and decompress one segment of one column chunk."""
        chunk = self._metadata.row_groups[group_index].column(path)
        if name not in chunk.segments:
            raise StorageError(f"chunk {path} has no segment {name!r}")
        offset, length = chunk.segments[name]
        if self._data_cache is not None:
            # Cache the raw compressed segment bytes (what a real data
            # cache holds on SSD); decompression always runs, only the
            # storage read is skipped on a hit.
            def load() -> bytes:
                self.bytes_read += length
                self.segments_read += 1
                return self._stream.read_fully(offset, length)

            read = self._data_cache.read(
                f"{self._data_cache_key}#rg{group_index}/{path}/{name}",
                length,
                loader=load,
            )
            return compression.decompress(read.value, chunk.codec)
        raw = self._stream.read_fully(offset, length)
        self.bytes_read += length
        self.segments_read += 1
        return compression.decompress(raw, chunk.codec)

    def chunk_metadata(self, group_index: int, path: str) -> ColumnChunkMetadata:
        return self._metadata.row_groups[group_index].column(path)
