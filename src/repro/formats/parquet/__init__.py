"""A Parquet-like nested columnar file format (section V.B).

"In Parquet, data is first horizontally partitioned into groups of rows,
then within each group, data is vertically partitioned into columns. ...
Each Parquet file has a footer that stores codecs, encoding information,
as well as column-level statistics."

This implementation reproduces the structures the paper's reader/writer
work exploits:

- nested schemas with repetition/definition levels (Dremel shredding);
- row groups and per-leaf column chunks;
- PLAIN and DICTIONARY encodings, RLE level encoding;
- gzip / snappy-like / no compression;
- a footer with per-chunk min/max/null statistics and dictionary offsets.

Two writers (:mod:`writer_old`, :mod:`writer_native`) and two readers
(:mod:`reader_old`, :mod:`reader_new`) reproduce sections V.C–V.J.
"""

from repro.formats.parquet.schema import ParquetSchema, LeafColumn
from repro.formats.parquet.file import ParquetFile, read_footer, write_file_bytes
from repro.formats.parquet.metadata import (
    ColumnChunkMetadata,
    ColumnStatistics,
    FileMetadata,
    RowGroupMetadata,
)
from repro.formats.parquet.options import ReaderOptions
from repro.formats.parquet.reader_new import NewParquetReader
from repro.formats.parquet.reader_old import OldParquetReader
from repro.formats.parquet.writer_native import NativeParquetWriter
from repro.formats.parquet.writer_old import OldParquetWriter

__all__ = [
    "ParquetSchema",
    "LeafColumn",
    "ParquetFile",
    "read_footer",
    "write_file_bytes",
    "ColumnChunkMetadata",
    "ColumnStatistics",
    "FileMetadata",
    "RowGroupMetadata",
    "ReaderOptions",
    "NewParquetReader",
    "OldParquetReader",
    "NativeParquetWriter",
    "OldParquetWriter",
]
