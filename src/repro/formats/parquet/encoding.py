"""Column encodings: PLAIN, DICTIONARY, and RLE for levels.

The decoder has two code paths per encoding:

- **vectorized** — numpy bulk decode ("a vectorized parquet reader batch
  reads 1000 triplets ... decoder state is kept in registers", section V.I);
- **scalar** — a value-at-a-time ``struct.unpack`` loop, the pre-vectorized
  behaviour the new reader's benchmark compares against.
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.types import BIGINT, BOOLEAN, DOUBLE, INTEGER, PrestoType


PLAIN = "plain"
DICTIONARY = "dictionary"


# ---------------------------------------------------------------------------
# Level encoding: RLE of small ints as (varint value, varint run-length)
# ---------------------------------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_levels(levels: Sequence[int]) -> bytes:
    """RLE-encode a level stream (runs found vectorized)."""
    array = np.asarray(levels, dtype=np.int32)
    out = bytearray()
    if len(array) == 0:
        return bytes(out)
    boundaries = np.flatnonzero(np.diff(array)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(array)]))
    for start, end in zip(starts, ends):
        _write_varint(out, int(array[start]))
        _write_varint(out, int(end - start))
    return bytes(out)


def encode_levels_value_at_a_time(levels: Sequence[int]) -> bytes:
    """RLE-encode a level stream one value at a time (legacy writer path).

    Produces byte-identical output to :func:`encode_levels`; the difference
    is purely the per-value Python loop the legacy writer paid.
    """
    out = bytearray()
    i = 0
    n = len(levels)
    while i < n:
        value = int(levels[i])
        run = 1
        while i + run < n and levels[i + run] == value:
            run += 1
        _write_varint(out, value)
        _write_varint(out, run)
        i += run
    return bytes(out)


def decode_levels(data: bytes, count: int) -> np.ndarray:
    """Decode an RLE level stream into an int32 array of ``count`` levels."""
    result = np.empty(count, dtype=np.int32)
    pos = 0
    filled = 0
    while filled < count:
        value, pos = _read_varint(data, pos)
        run, pos = _read_varint(data, pos)
        result[filled : filled + run] = value
        filled += run
    return result


# ---------------------------------------------------------------------------
# PLAIN encoding
# ---------------------------------------------------------------------------


def encode_plain(values: Sequence[Any], presto_type: PrestoType) -> bytes:
    """PLAIN-encode non-null values."""
    if presto_type in (BIGINT, INTEGER):
        return np.asarray(values, dtype=np.int64).tobytes()
    if presto_type is DOUBLE:
        return np.asarray(values, dtype=np.float64).tobytes()
    if presto_type is BOOLEAN:
        return np.asarray(values, dtype=np.uint8).tobytes()
    # varchar / date / timestamp: 4-byte length prefix + UTF-8 bytes.
    out = bytearray()
    for value in values:
        encoded = str(value).encode("utf-8")
        out.extend(struct.pack("<I", len(encoded)))
        out.extend(encoded)
    return bytes(out)


def encode_plain_array(array: np.ndarray, presto_type: PrestoType) -> bytes:
    """PLAIN-encode a numpy array without Python-level boxing.

    This is the native writer's fast path for flat numeric columns.
    """
    if presto_type in (BIGINT, INTEGER):
        return np.ascontiguousarray(array, dtype=np.int64).tobytes()
    if presto_type is DOUBLE:
        return np.ascontiguousarray(array, dtype=np.float64).tobytes()
    if presto_type is BOOLEAN:
        return np.ascontiguousarray(array, dtype=np.uint8).tobytes()
    return encode_plain(list(array), presto_type)


def encode_plain_value_at_a_time(values: Sequence[Any], presto_type: PrestoType) -> bytes:
    """PLAIN-encode one value at a time (legacy writer path).

    Byte-identical to :func:`encode_plain`, but each value goes through its
    own ``struct.pack`` call — the "consumes each individual record and
    writes value bytes" behaviour of the old writer (section V.J).
    """
    out = bytearray()
    if presto_type in (BIGINT, INTEGER):
        for value in values:
            out.extend(struct.pack("<q", int(value)))
        return bytes(out)
    if presto_type is DOUBLE:
        for value in values:
            out.extend(struct.pack("<d", float(value)))
        return bytes(out)
    if presto_type is BOOLEAN:
        for value in values:
            out.append(1 if value else 0)
        return bytes(out)
    for value in values:
        encoded = str(value).encode("utf-8")
        out.extend(struct.pack("<I", len(encoded)))
        out.extend(encoded)
    return bytes(out)


def encode_dictionary_indices_value_at_a_time(indices: Sequence[int]) -> bytes:
    out = bytearray()
    for index in indices:
        out.extend(struct.pack("<i", int(index)))
    return bytes(out)


def decode_plain_vectorized(
    data: bytes, presto_type: PrestoType, count: int
) -> np.ndarray:
    """Bulk numpy decode (the vectorized reader path)."""
    if presto_type in (BIGINT, INTEGER):
        return np.frombuffer(data, dtype=np.int64, count=count)
    if presto_type is DOUBLE:
        return np.frombuffer(data, dtype=np.float64, count=count)
    if presto_type is BOOLEAN:
        return np.frombuffer(data, dtype=np.uint8, count=count).astype(bool)
    result = np.empty(count, dtype=object)
    pos = 0
    for i in range(count):
        (length,) = struct.unpack_from("<I", data, pos)
        pos += 4
        result[i] = data[pos : pos + length].decode("utf-8")
        pos += length
    return result


def decode_plain_varchar(data: bytes, count: int) -> tuple[np.ndarray, np.ndarray]:
    """PLAIN varchar decode straight into the offsets layout.

    Returns ``(payload uint8 buffer, int64 offsets)`` for a
    :class:`repro.core.blocks.VarcharBlock` — no per-value ``str`` objects.
    The wire format ([u32 length][payload] repeated) is self-describing,
    so the length scan is sequential; payload extraction is one vectorized
    gather over the raw bytes.
    """
    lengths = np.empty(count, dtype=np.int64)
    pos = 0
    for i in range(count):
        (length,) = struct.unpack_from("<I", data, pos)
        lengths[i] = length
        pos += 4 + length
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    # Value i's payload starts after i+1 length prefixes and i payloads.
    starts = offsets[:-1] + 4 * np.arange(1, count + 1, dtype=np.int64)
    raw = np.frombuffer(data, dtype=np.uint8)
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.uint8), offsets
    index = np.repeat(starts - offsets[:-1], lengths) + np.arange(
        total, dtype=np.int64
    )
    return raw[index], offsets


def decode_plain_scalar(data: bytes, presto_type: PrestoType, count: int) -> list[Any]:
    """Value-at-a-time decode (the pre-vectorized reader path)."""
    values: list[Any] = []
    pos = 0
    if presto_type in (BIGINT, INTEGER):
        for _ in range(count):
            (value,) = struct.unpack_from("<q", data, pos)
            pos += 8
            values.append(value)
        return values
    if presto_type is DOUBLE:
        for _ in range(count):
            (value,) = struct.unpack_from("<d", data, pos)
            pos += 8
            values.append(value)
        return values
    if presto_type is BOOLEAN:
        for _ in range(count):
            values.append(bool(data[pos]))
            pos += 1
        return values
    for _ in range(count):
        (length,) = struct.unpack_from("<I", data, pos)
        pos += 4
        values.append(data[pos : pos + length].decode("utf-8"))
        pos += length
    return values


# ---------------------------------------------------------------------------
# DICTIONARY encoding
# ---------------------------------------------------------------------------


def build_dictionary(values: Sequence[Any]) -> Optional[tuple[list[Any], np.ndarray]]:
    """Dictionary-encode if beneficial; returns (dictionary, indices).

    Follows the usual writer heuristic: only when the distinct count is
    small relative to the value count.
    """
    if not len(values):
        return None
    index_of: dict[Any, int] = {}
    indices = np.empty(len(values), dtype=np.int32)
    for i, value in enumerate(values):
        slot = index_of.get(value)
        if slot is None:
            slot = len(index_of)
            index_of[value] = slot
            if slot >= 65536:
                return None  # dictionary too large to pay off
        indices[i] = slot
    if len(index_of) > max(16, len(values) // 2):
        return None
    return list(index_of), indices


def encode_dictionary_indices(indices: np.ndarray) -> bytes:
    return np.ascontiguousarray(indices, dtype=np.int32).tobytes()


def decode_dictionary_indices_vectorized(data: bytes, count: int) -> np.ndarray:
    return np.frombuffer(data, dtype=np.int32, count=count)


def decode_dictionary_indices_scalar(data: bytes, count: int) -> list[int]:
    values = []
    pos = 0
    for _ in range(count):
        (value,) = struct.unpack_from("<i", data, pos)
        pos += 4
        values.append(value)
    return values
