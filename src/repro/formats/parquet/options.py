"""Reader feature switches.

Each flag corresponds to one optimization of sections V.D-V.I so the
figure-17 benchmark can ablate them individually:

- ``nested_column_pruning`` (V.D) — read only required leaf columns.
- ``columnar_reads`` (V.E) — build blocks directly, skipping record
  assembly and the row→column transform.
- ``predicate_pushdown`` (V.F) — evaluate predicates while scanning and
  skip row groups whose footer statistics cannot match.
- ``dictionary_pushdown`` (V.G) — read dictionary pages and skip row
  groups whose dictionaries cannot match the predicate.
- ``lazy_reads`` (V.H) — materialize projected columns only for rows that
  pass the predicate.
- ``vectorized`` (V.I) — batch (numpy) decoding instead of one value at a
  time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ReaderOptions:
    nested_column_pruning: bool = True
    columnar_reads: bool = True
    predicate_pushdown: bool = True
    dictionary_pushdown: bool = True
    lazy_reads: bool = True
    vectorized: bool = True

    @classmethod
    def all_enabled(cls) -> "ReaderOptions":
        return cls()

    @classmethod
    def all_disabled(cls) -> "ReaderOptions":
        return cls(
            nested_column_pruning=False,
            columnar_reads=False,
            predicate_pushdown=False,
            dictionary_pushdown=False,
            lazy_reads=False,
            vectorized=False,
        )

    def with_(self, **updates: bool) -> "ReaderOptions":
        return replace(self, **updates)
