"""Dremel record shredding and assembly.

Shredding converts one top-level column's values into per-leaf triplet
streams (repetition level, definition level, value); assembly reconstructs
the original values.  This is the machinery underneath both writers and
both readers; the *old* reader assembles full records for every column,
the *new* reader avoids assembly wherever it can (columnar reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.types import ArrayType, MapType, PrestoType, RowType
from repro.formats.parquet.schema import LeafColumn, ParquetSchema, _enumerate_leaves


@dataclass
class ColumnLevels:
    """Triplet stream for one leaf column.

    ``values[i]`` is ``None`` whenever ``definition[i]`` is below the
    leaf's max definition level.
    """

    repetition: list[int] = field(default_factory=list)
    definition: list[int] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)

    def append(self, rep: int, definition: int, value: Any) -> None:
        self.repetition.append(rep)
        self.definition.append(definition)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.repetition)


def shred_column(
    name: str, presto_type: PrestoType, values: list[Any]
) -> dict[str, ColumnLevels]:
    """Shred one top-level column's values into per-leaf triplet streams."""
    leaves = list(_enumerate_leaves(name, presto_type, 0, 0))
    out: dict[str, ColumnLevels] = {leaf.path: ColumnLevels() for leaf in leaves}
    leaf_paths_under: dict[str, list[str]] = {}

    def paths_under(path: str) -> list[str]:
        cached = leaf_paths_under.get(path)
        if cached is None:
            dotted = path + "."
            cached = [p for p in out if p == path or p.startswith(dotted)]
            leaf_paths_under[path] = cached
        return cached

    def emit_all(path: str, rep: int, definition: int) -> None:
        for leaf_path in paths_under(path):
            out[leaf_path].append(rep, definition, None)

    def shred(
        presto_type: PrestoType,
        value: Any,
        path: str,
        rep: int,
        definition: int,
        rep_depth: int,
    ) -> None:
        if isinstance(presto_type, RowType):
            if value is None:
                emit_all(path, rep, definition)
                return
            for f in presto_type.fields:
                shred(
                    f.type,
                    value.get(f.name) if isinstance(value, dict) else None,
                    f"{path}.{f.name}",
                    rep,
                    definition + 1,
                    rep_depth,
                )
            return
        if isinstance(presto_type, ArrayType):
            if value is None:
                emit_all(path, rep, definition)
                return
            if not value:
                emit_all(path, rep, definition + 1)
                return
            own_rep = rep_depth + 1
            for i, element in enumerate(value):
                shred(
                    presto_type.element_type,
                    element,
                    f"{path}.element",
                    rep if i == 0 else own_rep,
                    definition + 2,
                    own_rep,
                )
            return
        if isinstance(presto_type, MapType):
            if value is None:
                emit_all(path, rep, definition)
                return
            if not value:
                emit_all(path, rep, definition + 1)
                return
            own_rep = rep_depth + 1
            for i, (key, entry_value) in enumerate(value.items()):
                entry_rep = rep if i == 0 else own_rep
                shred(
                    presto_type.key_type,
                    key,
                    f"{path}.key",
                    entry_rep,
                    definition + 2,
                    own_rep,
                )
                shred(
                    presto_type.value_type,
                    entry_value,
                    f"{path}.value",
                    entry_rep,
                    definition + 2,
                    own_rep,
                )
            return
        # Scalar leaf.
        if value is None:
            out[path].append(rep, definition, None)
        else:
            out[path].append(rep, definition + 1, value)

    for value in values:
        shred(presto_type, value, name, 0, 0, 0)
    return out


class _Cursor:
    __slots__ = ("levels", "position")

    def __init__(self, levels: ColumnLevels) -> None:
        self.levels = levels
        self.position = 0

    def exhausted(self) -> bool:
        return self.position >= len(self.levels)

    def peek_definition(self) -> int:
        return self.levels.definition[self.position]

    def peek_repetition(self) -> int:
        return self.levels.repetition[self.position]

    def take(self) -> tuple[int, int, Any]:
        i = self.position
        self.position += 1
        return (
            self.levels.repetition[i],
            self.levels.definition[i],
            self.levels.values[i],
        )


def assemble_column(
    name: str,
    presto_type: PrestoType,
    chunks: dict[str, ColumnLevels],
    num_records: int,
) -> list[Any]:
    """Reassemble one top-level column's values from leaf triplet streams."""
    cursors = {path: _Cursor(levels) for path, levels in chunks.items()}
    paths_under_cache: dict[str, list[str]] = {}

    def paths_under(path: str) -> list[str]:
        cached = paths_under_cache.get(path)
        if cached is None:
            dotted = path + "."
            cached = [p for p in cursors if p == path or p.startswith(dotted)]
            if not cached:
                raise KeyError(f"no leaf columns under {path!r}")
            paths_under_cache[path] = cached
        return cached

    def consume_all(path: str) -> None:
        for leaf_path in paths_under(path):
            cursors[leaf_path].take()

    def representative(path: str) -> _Cursor:
        return cursors[paths_under(path)[0]]

    def read(
        presto_type: PrestoType, path: str, definition: int, rep_depth: int
    ) -> Any:
        if isinstance(presto_type, RowType):
            if representative(path).peek_definition() <= definition:
                consume_all(path)
                return None
            return {
                f.name: read(f.type, f"{path}.{f.name}", definition + 1, rep_depth)
                for f in presto_type.fields
            }
        if isinstance(presto_type, ArrayType):
            head = representative(path).peek_definition()
            if head <= definition:
                consume_all(path)
                return None
            if head == definition + 1:
                consume_all(path)
                return []
            own_rep = rep_depth + 1
            elements = [
                read(presto_type.element_type, f"{path}.element", definition + 2, own_rep)
            ]
            while (
                not representative(path).exhausted()
                and representative(path).peek_repetition() == own_rep
            ):
                elements.append(
                    read(
                        presto_type.element_type,
                        f"{path}.element",
                        definition + 2,
                        own_rep,
                    )
                )
            return elements
        if isinstance(presto_type, MapType):
            head = representative(path).peek_definition()
            if head <= definition:
                consume_all(path)
                return None
            if head == definition + 1:
                consume_all(path)
                return {}
            own_rep = rep_depth + 1
            result: dict = {}

            def read_entry() -> None:
                key = read(presto_type.key_type, f"{path}.key", definition + 2, own_rep)
                entry_value = read(
                    presto_type.value_type, f"{path}.value", definition + 2, own_rep
                )
                result[key] = entry_value

            read_entry()
            while (
                not representative(path).exhausted()
                and representative(path).peek_repetition() == own_rep
            ):
                read_entry()
            return result
        # Scalar leaf.
        _, leaf_definition, value = cursors[path].take()
        if leaf_definition >= definition + 1:
            return value
        return None

    return [read(presto_type, name, 0, 0) for _ in range(num_records)]
