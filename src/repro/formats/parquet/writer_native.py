"""Native Parquet writer (section V.J).

"Writes directly from Presto's in-memory data structure to Parquet's
columnar file format, including data values, repetition values, and
definition values" — no intermediate row-based records.

Fast paths:

- flat scalar columns: numpy null masks become definition levels and the
  value array is encoded with zero Python-level boxing;
- pure struct trees: definition levels accumulate vectorized down the
  field-block hierarchy;
- columns containing arrays/maps fall back to per-value shredding (still
  one pass, no record reconstruction).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.blocks import (
    ArrayBlock,
    Block,
    DictionaryBlock,
    MapBlock,
    PrimitiveBlock,
    RowBlock,
    VarcharBlock,
)


from repro.core.page import Page
from repro.core.types import PrestoType, RowType
from repro.formats.parquet import compression
from repro.formats.parquet.file import LeafChunk, ParquetBlobWriter
from repro.formats.parquet.schema import LeafColumn, ParquetSchema, _enumerate_leaves
from repro.formats.parquet.shredder import shred_column


def _flat_values(block: Block) -> Block:
    """Decode dictionary/varchar blocks to flat ``.values`` storage.

    The shredder consumes object arrays; offsets-based varchar blocks
    decode here, at the write boundary.
    """
    if isinstance(block, DictionaryBlock):
        block = block.decode()
    if isinstance(block, VarcharBlock):
        block = block.to_primitive()
    return block


class NativeParquetWriter:
    """Writes engine pages straight to the columnar format."""

    def __init__(
        self,
        schema: ParquetSchema,
        codec: str = compression.SNAPPY,
        row_group_size: int = 10_000,
    ) -> None:
        self.schema = schema
        self.codec = codec
        self.row_group_size = row_group_size

    def write_pages(self, pages: Iterable[Page]) -> bytes:
        """Serialize pages (channel order == schema column order) to bytes."""
        blob = ParquetBlobWriter(self.schema, self.codec)
        for page in pages:
            for start in range(0, page.position_count, self.row_group_size):
                end = min(start + self.row_group_size, page.position_count)
                group = (
                    page
                    if (start, end) == (0, page.position_count)
                    else page.take(np.arange(start, end))
                )
                blob.add_row_group(group.position_count, self._shred_group(group))
        return blob.finish()

    def _shred_group(self, page: Page) -> dict[str, LeafChunk]:
        chunks: dict[str, LeafChunk] = {}
        for (name, presto_type), block in zip(self.schema.columns, page.blocks):
            block = _flat_values(block.loaded())
            self._shred_block(name, presto_type, block, chunks)
        return chunks

    def _shred_block(
        self, name: str, presto_type: PrestoType, block: Block, chunks: dict[str, LeafChunk]
    ) -> None:
        count = block.position_count
        if isinstance(block, PrimitiveBlock) and not presto_type.is_nested():
            leaf = self.schema.leaf(name)
            nulls = block.null_mask()
            definition = (~nulls).astype(np.int32)
            chunks[name] = LeafChunk(
                leaf=leaf,
                repetition=np.zeros(count, dtype=np.int32),
                definition=definition,
                defined_values=block.values[~nulls],
                num_slots=count,
            )
            return
        if isinstance(block, RowBlock) and self._is_pure_struct(presto_type):
            parent_present = ~block.null_mask()
            parent_def = parent_present.astype(np.int32)
            self._shred_struct(
                name, presto_type, block, parent_present, parent_def, chunks
            )
            return
        if (
            isinstance(block, ArrayBlock)
            and not presto_type.element_type.is_nested()  # type: ignore[union-attr]
        ):
            self._shred_flat_array(name, block, chunks)
            return
        if (
            isinstance(block, MapBlock)
            and not presto_type.key_type.is_nested()  # type: ignore[union-attr]
            and not presto_type.value_type.is_nested()  # type: ignore[union-attr]
        ):
            self._shred_flat_map(name, block, chunks)
            return
        # Deeply nested collections (or unexpected block kinds): per-value
        # shredding.
        for path, levels in shred_column(name, presto_type, block.to_list()).items():
            leaf = self.schema.leaf(path)
            max_def = leaf.max_definition_level
            defined = [
                v for v, d in zip(levels.values, levels.definition) if d == max_def
            ]
            chunks[path] = LeafChunk(
                leaf=leaf,
                repetition=levels.repetition,
                definition=levels.definition,
                defined_values=defined,
                num_slots=len(levels),
            )

    def _collection_levels(
        self, offsets: np.ndarray, nulls: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized slot layout for a top-level collection column.

        Returns (repetition, base definition per slot, slots per row,
        element-slot mask).  Base definition: 0 null, 1 empty, 2 element
        present (the element's own presence adds the final level).
        """
        counts = np.diff(offsets)
        slots = np.where(counts > 0, counts, 1)
        total = int(slots.sum())
        row_base = np.where(nulls, 0, np.where(counts == 0, 1, 2)).astype(np.int32)
        definition = np.repeat(row_base, slots)
        element_slot = np.repeat((~nulls) & (counts > 0), slots)
        repetition = np.ones(total, dtype=np.int32)
        row_starts = np.concatenate(([0], np.cumsum(slots)[:-1]))
        repetition[row_starts] = 0
        return repetition, definition, slots, element_slot

    def _shred_flat_array(
        self, name: str, block: ArrayBlock, chunks: dict[str, LeafChunk]
    ) -> None:
        """Columnar shredding of array(scalar): levels from offsets."""
        elements = _flat_values(block.elements.loaded())
        repetition, definition, _, element_slot = self._collection_levels(
            block.offsets, block.null_mask()
        )
        element_nulls = elements.null_mask()
        definition = definition.copy()
        definition[element_slot] += (~element_nulls).astype(np.int32)
        leaf = self.schema.leaf(f"{name}.element")
        chunks[leaf.path] = LeafChunk(
            leaf=leaf,
            repetition=repetition,
            definition=definition,
            defined_values=elements.values[~element_nulls],  # type: ignore[union-attr]
            num_slots=len(definition),
        )

    def _shred_flat_map(
        self, name: str, block: MapBlock, chunks: dict[str, LeafChunk]
    ) -> None:
        """Columnar shredding of map(scalar, scalar)."""
        keys = _flat_values(block.keys.loaded())
        values = _flat_values(block.values.loaded())
        repetition, base_definition, _, entry_slot = self._collection_levels(
            block.offsets, block.null_mask()
        )
        key_leaf = self.schema.leaf(f"{name}.key")
        value_leaf = self.schema.leaf(f"{name}.value")
        # Keys are never null: every entry slot gets the full level.
        key_definition = base_definition.copy()
        key_definition[entry_slot] += 1
        chunks[key_leaf.path] = LeafChunk(
            leaf=key_leaf,
            repetition=repetition,
            definition=key_definition,
            defined_values=keys.values,  # type: ignore[union-attr]
            num_slots=len(key_definition),
        )
        value_nulls = values.null_mask()
        value_definition = base_definition.copy()
        value_definition[entry_slot] += (~value_nulls).astype(np.int32)
        chunks[value_leaf.path] = LeafChunk(
            leaf=value_leaf,
            repetition=repetition,
            definition=value_definition,
            defined_values=values.values[~value_nulls],  # type: ignore[union-attr]
            num_slots=len(value_definition),
        )

    def _is_pure_struct(self, presto_type: PrestoType) -> bool:
        """True when the type tree contains only structs and scalars."""
        if isinstance(presto_type, RowType):
            return all(self._is_pure_struct(f.type) for f in presto_type.fields)
        return not presto_type.is_nested()

    def _shred_struct(
        self,
        path: str,
        row_type: RowType,
        block: RowBlock,
        present: np.ndarray,
        definition: np.ndarray,
        chunks: dict[str, LeafChunk],
    ) -> None:
        count = block.position_count
        for field in row_type.fields:
            field_path = f"{path}.{field.name}"
            field_block = _flat_values(block.field(field.name).loaded())
            if isinstance(field.type, RowType):
                child_present = present & ~field_block.null_mask()
                child_def = definition + child_present.astype(np.int32)
                self._shred_struct(
                    field_path, field.type, field_block, child_present, child_def, chunks
                )
            else:
                leaf = self.schema.leaf(field_path)
                value_present = present & ~field_block.null_mask()
                leaf_def = definition + value_present.astype(np.int32)
                chunks[field_path] = LeafChunk(
                    leaf=leaf,
                    repetition=np.zeros(count, dtype=np.int32),
                    definition=leaf_def,
                    defined_values=field_block.values[value_present],  # type: ignore[union-attr]
                    num_slots=count,
                )
