"""The brand new Parquet reader (sections V.D-V.I).

Implements the six optimizations as independently switchable behaviours
(see :class:`~repro.formats.parquet.options.ReaderOptions`):

1. nested column pruning — only requested leaf columns are read;
2. columnar reads — blocks are built directly from decoded arrays, no
   record assembly, for columns without repeated (array/map) structure;
3. predicate pushdown — footer min/max statistics skip whole row groups,
   and surviving groups are filtered while scanning;
4. dictionary pushdown — dictionary segments are checked against
   equality/IN predicates to skip groups stats couldn't;
5. lazy reads — projected columns not used by the predicate are wrapped in
   LazyBlocks and decoded only if rows survive the filter;
6. vectorized reads — numpy batch decoding with a cached dictionary.

The reader's ``columns`` are dotted paths as produced by the engine's
nested-column-pruning rule: ``["base.city_id", "datestr"]`` or ``["base"]``.
The optional ``predicate`` is a RowExpression whose variables are such
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from repro.core.blocks import (
    Block,
    DictionaryBlock,
    LazyBlock,
    PrimitiveBlock,
    RowBlock,
    VarcharBlock,
    block_from_values,
    varchar_blocks_enabled,
)
from repro.core.evaluator import Evaluator
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
    combine_conjuncts,
    conjuncts,
)
from repro.core.page import Page
from repro.core.types import VARCHAR, ArrayType, MapType, PrestoType, RowType
from repro.formats.parquet.encoding import (
    DICTIONARY,
    decode_dictionary_indices_scalar,
    decode_dictionary_indices_vectorized,
    decode_levels,
    decode_plain_scalar,
    decode_plain_varchar,
    decode_plain_vectorized,
)
from repro.formats.parquet.file import ParquetFile
from repro.formats.parquet.metadata import ColumnChunkMetadata
from repro.formats.parquet.options import ReaderOptions
from repro.formats.parquet.schema import LeafColumn
from repro.formats.parquet.shredder import ColumnLevels, assemble_column


@dataclass
class ReaderStats:
    row_groups_total: int = 0
    row_groups_skipped_by_stats: int = 0
    row_groups_skipped_by_dictionary: int = 0
    # Groups eliminated by a runtime dynamic filter's expression form
    # (min/max or dictionary check) — kept separate from the static
    # pushdown counters so adaptive execution's effect is measurable.
    row_groups_skipped_by_dynamic_filter: int = 0
    values_decoded: int = 0
    lazy_loads_avoided: int = 0


@dataclass
class _DecodedLeaf:
    """One decoded leaf chunk: aligned levels plus a columnar block."""

    leaf: LeafColumn
    repetition: np.ndarray
    definition: np.ndarray
    block: Block  # positions == slots; only meaningful for rep_level == 0


class NewParquetReader:
    """Columnar, pruning, pushdown-capable reader."""

    def __init__(
        self,
        file: ParquetFile,
        columns: Sequence[str],
        options: Optional[ReaderOptions] = None,
        predicate: Optional[RowExpression] = None,
        evaluator: Optional[Evaluator] = None,
        restrict: Optional[dict[str, Sequence[str]]] = None,
        dynamic_predicate: Optional[RowExpression] = None,
    ) -> None:
        """``columns`` are dotted output paths; each output block has the
        type at that path (a leaf path yields a scalar block, a struct path
        a RowBlock).  ``restrict`` optionally limits a struct output to a
        subset of its subfield paths — the partial-struct shape nested
        column pruning produces (``{"base": ["base.city_id"]}``).
        ``dynamic_predicate`` is a runtime dynamic filter's expression
        form: applied exactly like ``predicate`` but accounted separately
        (``row_groups_skipped_by_dynamic_filter``)."""
        self.file = file
        self.options = options or ReaderOptions()
        self.predicate = predicate
        self.dynamic_predicate = dynamic_predicate
        row_terms = [p for p in (predicate, dynamic_predicate) if p is not None]
        self._row_predicate: Optional[RowExpression] = (
            combine_conjuncts(row_terms) if row_terms else None
        )
        self.stats = ReaderStats()
        self._evaluator = evaluator or Evaluator()
        self._dictionary_cache: dict[tuple[int, str], Block] = {}
        self.columns = self._resolve_columns(columns)
        if restrict is not None and self.options.nested_column_pruning:
            self._restrict = {k: tuple(v) for k, v in restrict.items()}
        else:
            self._restrict = {}

    # -- column resolution -----------------------------------------------------

    def _resolve_columns(self, columns: Sequence[str]) -> list[str]:
        """Apply (or bypass) nested column pruning to the requested paths."""
        if self.options.nested_column_pruning:
            return list(columns)
        # Pruning disabled: widen every requested path to its whole
        # top-level column (figure 4: "read all Parquet nested fields").
        widened: list[str] = []
        for path in columns:
            top = path.split(".")[0]
            if top not in widened:
                widened.append(top)
        return widened

    def _predicate_paths(self) -> list[str]:
        if self._row_predicate is None:
            return []
        return [v.name for v in self._row_predicate.variables()]

    # -- main loop ----------------------------------------------------------------

    def read_pages(self) -> Iterator[Page]:
        """Yield a page per surviving row group; channels follow ``columns``."""
        predicate_paths = self._predicate_paths()
        for group_index in range(self.file.num_row_groups()):
            self.stats.row_groups_total += 1
            if self.options.predicate_pushdown:
                if self.predicate is not None:
                    if self._skippable_by_stats(group_index, self.predicate):
                        self.stats.row_groups_skipped_by_stats += 1
                        continue
                    if self.options.dictionary_pushdown and self._skippable_by_dictionary(
                        group_index, self.predicate
                    ):
                        self.stats.row_groups_skipped_by_dictionary += 1
                        continue
                if self.dynamic_predicate is not None:
                    if self._skippable_by_stats(
                        group_index, self.dynamic_predicate
                    ) or (
                        self.options.dictionary_pushdown
                        and self._skippable_by_dictionary(
                            group_index, self.dynamic_predicate
                        )
                    ):
                        self.stats.row_groups_skipped_by_dynamic_filter += 1
                        continue
            page = self._read_group(group_index, predicate_paths)
            if page is not None:
                yield page

    # -- statistics / dictionary pushdown ---------------------------------------

    def _skippable_by_stats(self, group_index: int, predicate: RowExpression) -> bool:
        group = self.file.metadata.row_groups[group_index]
        for conjunct in conjuncts(predicate):
            test = _extract_range_test(conjunct)
            if test is None:
                continue
            path, op, constants = test
            if path not in group.columns:
                continue
            statistics = group.columns[path].statistics
            if statistics.min_value is None or statistics.max_value is None:
                continue
            low, high = statistics.min_value, statistics.max_value
            if op == "in" and all(c < low or c > high for c in constants):
                return True
            if op == "equal" and (constants[0] < low or constants[0] > high):
                return True
            if op == "greater_than" and high <= constants[0]:
                return True
            if op == "greater_than_or_equal" and high < constants[0]:
                return True
            if op == "less_than" and low >= constants[0]:
                return True
            if op == "less_than_or_equal" and low > constants[0]:
                return True
        return False

    def _skippable_by_dictionary(
        self, group_index: int, predicate: RowExpression
    ) -> bool:
        group = self.file.metadata.row_groups[group_index]
        for conjunct in conjuncts(predicate):
            test = _extract_range_test(conjunct)
            if test is None or test[1] not in ("equal", "in"):
                continue
            path, _, constants = test
            chunk = group.columns.get(path)
            if chunk is None or not chunk.has_dictionary:
                continue
            dictionary = self._read_dictionary(group_index, path, chunk)
            entries = set(dictionary.to_list())
            if not any(c in entries for c in constants):
                return True
        return False

    # -- group reading ----------------------------------------------------------------

    def _read_group(
        self, group_index: int, predicate_paths: list[str]
    ) -> Optional[Page]:
        num_rows = self.file.metadata.row_groups[group_index].num_rows
        decoded: dict[str, _DecodedLeaf] = {}

        # 1. Decode predicate leaves and evaluate the filter on the fly.
        mask: Optional[np.ndarray] = None
        if self._row_predicate is not None and self.options.predicate_pushdown:
            bindings: dict[str, Block] = {}
            for path in predicate_paths:
                leaf_block = self._decode_leaf_cached(group_index, path, decoded)
                bindings[path] = leaf_block.block
            mask = self._evaluator.filter_mask(self._row_predicate, bindings, num_rows)
            if not mask.any():
                # Whole group filtered; projected columns never decoded.
                self.stats.lazy_loads_avoided += len(
                    [c for c in self.columns if c not in predicate_paths]
                )
                return None

        # 2. Build output blocks (lazily where allowed).
        selected = np.nonzero(mask)[0] if mask is not None else None
        blocks: list[Block] = []
        for path in self.columns:
            needed_by_predicate = path in predicate_paths
            lazy_worthwhile = self._row_predicate is not None and not needed_by_predicate
            if self.options.lazy_reads and lazy_worthwhile:
                block = self._lazy_block(group_index, path, num_rows, decoded)
            else:
                block = self._materialize_path(group_index, path, num_rows, decoded)
            if selected is not None:
                block = block.take(selected)
            blocks.append(block)
        position_count = len(selected) if selected is not None else num_rows
        return Page(blocks, position_count)

    # -- leaf decoding ----------------------------------------------------------------

    def _decode_leaf_cached(
        self, group_index: int, path: str, decoded: dict[str, _DecodedLeaf]
    ) -> _DecodedLeaf:
        if path not in decoded:
            if not self.file.schema.has_leaf(path):
                # Schema evolution: the field was added to the table after
                # this file was written — "Presto will return null" (V.A).
                num_rows = self.file.metadata.row_groups[group_index].num_rows
                from repro.core.evaluator import constant_block
                from repro.core.types import UNKNOWN

                decoded[path] = _DecodedLeaf(
                    LeafColumn(path, UNKNOWN, 1, 0),
                    np.zeros(num_rows, dtype=np.int32),
                    np.zeros(num_rows, dtype=np.int32),
                    constant_block(None, UNKNOWN, num_rows),
                )
            else:
                decoded[path] = self._decode_leaf(group_index, path)
        return decoded[path]

    def _read_dictionary(
        self, group_index: int, path: str, chunk: ColumnChunkMetadata
    ) -> Block:
        """Read (and cache) a chunk's dictionary page (section V.I)."""
        key = (group_index, path)
        cached = self._dictionary_cache.get(key)
        if cached is not None:
            return cached
        leaf = self.file.schema.leaf(path)
        data = self.file.read_segment(group_index, path, "dict")
        size = _count_varchar_entries(data)
        if self.options.vectorized:
            if leaf.type is VARCHAR and varchar_blocks_enabled():
                # Dictionary page straight into the offsets layout: the
                # dictionary under DictionaryBlock becomes a VarcharBlock.
                dict_data, dict_offsets = decode_plain_varchar(data, size)
                block: Block = VarcharBlock(leaf.type, dict_data, dict_offsets)
            else:
                values = decode_plain_vectorized(data, leaf.type, size)
                block = PrimitiveBlock(leaf.type, np.asarray(values, dtype=object))
        else:
            block = PrimitiveBlock.from_values(leaf.type, decode_plain_scalar(data, leaf.type, size))
        self._dictionary_cache[key] = block
        return block

    def _decode_leaf(self, group_index: int, path: str) -> _DecodedLeaf:
        chunk = self.file.chunk_metadata(group_index, path)
        leaf = self.file.schema.leaf(path)
        count = chunk.num_values
        defined_count = count - chunk.statistics.null_count
        definition = decode_levels(
            self.file.read_segment(group_index, path, "def"), count
        )
        repetition = decode_levels(
            self.file.read_segment(group_index, path, "rep"), count
        )
        self.stats.values_decoded += count
        max_def = leaf.max_definition_level
        nulls = definition < max_def

        if chunk.encoding == DICTIONARY:
            dictionary = self._read_dictionary(group_index, path, chunk)
            raw = self.file.read_segment(group_index, path, "data")
            if self.options.vectorized:
                indices = decode_dictionary_indices_vectorized(raw, defined_count)
            else:
                indices = np.asarray(
                    decode_dictionary_indices_scalar(raw, defined_count), dtype=np.int32
                )
            # Scatter defined indices into slot positions; null slots get -1.
            ids = np.full(count, -1, dtype=np.int32)
            ids[~nulls] = indices
            block: Block = DictionaryBlock(dictionary, ids)
        else:
            raw = self.file.read_segment(group_index, path, "data")
            if (
                self.options.vectorized
                and leaf.type is VARCHAR
                and varchar_blocks_enabled()
            ):
                block = _scatter_varchar(leaf.type, raw, nulls, count, defined_count)
            elif self.options.vectorized:
                defined_values = decode_plain_vectorized(raw, leaf.type, defined_count)
                block = _scatter_block(leaf.type, defined_values, nulls, count)
            else:
                defined_values = decode_plain_scalar(raw, leaf.type, defined_count)
                block = _scatter_block(leaf.type, defined_values, nulls, count)
        return _DecodedLeaf(leaf, repetition, definition, block)

    # -- output materialization --------------------------------------------------------

    def _lazy_block(
        self,
        group_index: int,
        path: str,
        num_rows: int,
        decoded: dict[str, _DecodedLeaf],
    ) -> Block:
        output_type = self._output_type(path)
        return LazyBlock(
            output_type,
            num_rows,
            lambda: self._materialize_path(group_index, path, num_rows, decoded),
        )

    def _output_type(self, path: str) -> PrestoType:
        return self.file.schema.type_at(path)

    def _effective_leaves(
        self, path: str, allowed: Optional[tuple[str, ...]]
    ) -> list[LeafColumn]:
        leaves = self.file.schema.leaves_under(path)
        if allowed is None:
            return leaves
        return [
            leaf
            for leaf in leaves
            if any(leaf.path == a or leaf.path.startswith(a + ".") for a in allowed)
        ]

    def _materialize_path(
        self,
        group_index: int,
        path: str,
        num_rows: int,
        decoded: dict[str, _DecodedLeaf],
        allowed: Optional[tuple[str, ...]] = None,
    ) -> Block:
        if allowed is None:
            allowed = self._restrict.get(path)
        output_type = self._output_type(path)
        if allowed is not None and isinstance(output_type, RowType):
            return self._build_partial_struct(
                group_index, path, output_type, num_rows, decoded, allowed
            )
        leaves = self._effective_leaves(path, allowed)
        if not leaves:
            raise KeyError(f"no leaf columns under {path!r}")

        has_repeated = any(l.max_repetition_level > 0 for l in leaves)
        if self.options.columnar_reads and not has_repeated:
            return self._build_columnar(group_index, path, output_type, num_rows, decoded)

        # Record-assembly path (figure 5: pruned but still row-based, or any
        # column containing arrays/maps).
        chunks: dict[str, ColumnLevels] = {}
        depth_offset = len(path.split(".")) - 1
        for leaf in leaves:
            decoded_leaf = self._decode_leaf_cached(group_index, leaf.path, decoded)
            values = self._slot_values(decoded_leaf)
            shifted_def = [
                max(int(d) - depth_offset, 0) for d in decoded_leaf.definition
            ]
            chunks[leaf.path] = ColumnLevels(
                [int(r) for r in decoded_leaf.repetition], shifted_def, values
            )
        assembled = assemble_column(path, output_type, chunks, num_rows)
        return block_from_values(output_type, assembled)

    def _slot_values(self, decoded_leaf: _DecodedLeaf) -> list[Any]:
        block = decoded_leaf.block.loaded()
        return block.to_list()

    def _build_partial_struct(
        self,
        group_index: int,
        path: str,
        row_type: RowType,
        num_rows: int,
        decoded: dict[str, _DecodedLeaf],
        allowed: tuple[str, ...],
    ) -> RowBlock:
        """Materialize a struct with only the allowed subfields (section V.D:
        the pruned struct carries just the requested fields)."""
        depth = len(path.split("."))
        field_blocks: dict[str, Block] = {}
        for f in row_type.fields:
            field_path = f"{path}.{f.name}"
            fully_allowed = any(
                field_path == a or field_path.startswith(a + ".") for a in allowed
            )
            partially_allowed = any(a.startswith(field_path + ".") for a in allowed)
            if not fully_allowed and not partially_allowed:
                continue
            field_blocks[f.name] = self._materialize_path(
                group_index,
                field_path,
                num_rows,
                decoded,
                allowed=None if fully_allowed else allowed,
            )
        effective = self._effective_leaves(path, allowed)
        if not effective:
            # Every requested subfield was added after this file was written
            # (schema evolution): dereferences of the missing fields return
            # null regardless of struct presence, so presence is immaterial.
            return RowBlock(row_type, field_blocks, None, num_rows)
        representative = self._decode_leaf_cached(group_index, effective[0].path, decoded)
        if effective[0].max_repetition_level > 0:
            # Level streams under arrays carry multiple slots per row; the
            # slots with repetition 0 are the row starts.
            row_starts = np.nonzero(representative.repetition == 0)[0]
            nulls = representative.definition[row_starts] < depth
        else:
            nulls = representative.definition < depth
        return RowBlock(
            row_type, field_blocks, nulls if nulls.any() else None, num_rows
        )

    def _build_columnar(
        self,
        group_index: int,
        path: str,
        output_type: PrestoType,
        num_rows: int,
        decoded: dict[str, _DecodedLeaf],
    ) -> Block:
        """Directly build blocks for scalar/struct paths (no assembly)."""
        if not isinstance(output_type, RowType):
            decoded_leaf = self._decode_leaf_cached(group_index, path, decoded)
            return decoded_leaf.block
        depth = len(path.split("."))
        field_blocks: dict[str, Block] = {}
        for f in output_type.fields:
            field_path = f"{path}.{f.name}"
            if not self.file.schema.leaves_under(field_path):
                continue
            field_blocks[f.name] = self._build_columnar(
                group_index, field_path, f.type, num_rows, decoded
            )
        # Struct null mask: any descendant leaf has definition < depth.
        first_leaf = self.file.schema.leaves_under(path)[0]
        decoded_leaf = self._decode_leaf_cached(group_index, first_leaf.path, decoded)
        nulls = decoded_leaf.definition < depth
        return RowBlock(
            output_type,
            field_blocks,
            nulls if nulls.any() else None,
            num_rows,
        )


def _scatter_varchar(
    presto_type: PrestoType, raw: bytes, nulls: np.ndarray, count: int, defined_count: int
) -> VarcharBlock:
    """Decode a PLAIN varchar page into an offsets-based block.

    Null slots own zero bytes, so the defined payload buffer is reused
    as-is — only the offsets are re-spread across the full slot count.
    """
    data, offsets = decode_plain_varchar(raw, defined_count)
    if not nulls.any():
        return VarcharBlock(presto_type, data, offsets)
    lengths_full = np.zeros(count, dtype=np.int64)
    lengths_full[~nulls] = np.diff(offsets)
    full_offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths_full, out=full_offsets[1:])
    return VarcharBlock(presto_type, data, full_offsets, nulls)


def _scatter_block(
    presto_type: PrestoType, defined_values, nulls: np.ndarray, count: int
) -> PrimitiveBlock:
    """Spread defined values into their slots, leaving nulls in between."""
    if isinstance(defined_values, np.ndarray) and defined_values.dtype != object:
        storage = np.zeros(count, dtype=defined_values.dtype)
        storage[~nulls] = defined_values
    else:
        storage = np.empty(count, dtype=object)
        storage[~nulls] = np.asarray(list(defined_values), dtype=object)
    return PrimitiveBlock(presto_type, storage, nulls if nulls.any() else None)


def _count_varchar_entries(data: bytes) -> int:
    import struct

    count = 0
    pos = 0
    while pos < len(data):
        (length,) = struct.unpack_from("<I", data, pos)
        pos += 4 + length
        count += 1
    return count


def _extract_range_test(
    conjunct: RowExpression,
) -> Optional[tuple[str, str, list[Any]]]:
    """Match ``path <op> constant`` / ``path IN (constants)`` conjuncts."""
    if (
        isinstance(conjunct, SpecialFormExpression)
        and conjunct.form is SpecialForm.IN
        and isinstance(conjunct.arguments[0], VariableReferenceExpression)
        and all(isinstance(a, ConstantExpression) for a in conjunct.arguments[1:])
    ):
        constants = [a.value for a in conjunct.arguments[1:] if a.value is not None]
        if constants:
            return conjunct.arguments[0].name, "in", constants
        return None
    if isinstance(conjunct, CallExpression) and len(conjunct.arguments) == 2:
        name = conjunct.function_handle.name
        if name not in (
            "equal",
            "greater_than",
            "greater_than_or_equal",
            "less_than",
            "less_than_or_equal",
        ):
            return None
        left, right = conjunct.arguments
        if isinstance(left, VariableReferenceExpression) and isinstance(
            right, ConstantExpression
        ):
            if right.value is None:
                return None
            return left.name, name, [right.value]
        if isinstance(left, ConstantExpression) and isinstance(
            right, VariableReferenceExpression
        ):
            flipped = {
                "equal": "equal",
                "greater_than": "less_than",
                "greater_than_or_equal": "less_than_or_equal",
                "less_than": "greater_than",
                "less_than_or_equal": "greater_than_or_equal",
            }
            if left.value is None:
                return None
            return right.name, flipped[name], [left.value]
    return None
