"""File formats.  Currently: the Parquet-like columnar format of section V."""
