"""Presto-on-Spark: automatic query translation and batch fallback.

Section XII.C: "Presto has limitations for big joins ... Presto will
return an error, with message 'Insufficient Resource'.  ...  We need to
resolve the problem either via: adding fault tolerance to Presto, or
automatically translate failed Presto queries to other systems.  Presto on
Spark is a good option, which enables users writing the same Presto SQL,
with automatic translation."
"""

from repro.spark.batch_engine import BatchSqlEngine
from repro.spark.translator import QueryTranslator
from repro.spark.fallback import FallbackQueryRunner, RoutedResult

__all__ = [
    "BatchSqlEngine",
    "QueryTranslator",
    "FallbackQueryRunner",
    "RoutedResult",
]
