"""A SparkSQL-like batch engine over the same catalog.

Section XI characterizes the trade: Spark "can operate on intermediate
results in memory ... [but] these systems do not support end-to-end
pipelining, and usually persist data to a filesystem during inter-stage
shuffles.  Although this improves fault tolerance, the additional latency
causes such systems to be a poor fit for interactive or low-latency use
cases."

Accordingly this engine:

- executes the same plans over the same connectors (results match Presto);
- has no in-memory join limit — build sides beyond the memory budget
  *spill*, tracked in ``spilled_rows`` and charged to the simulated clock;
- pays batch costs per query: job startup plus a per-stage shuffle
  materialization charge, so it is reliably slower than Presto on
  interactive queries but succeeds where Presto runs out of memory.
"""

from __future__ import annotations

from typing import Optional

from repro.common.clock import SimulatedClock
from repro.connectors.spi import Catalog
from repro.execution.context import ExecutionContext
from repro.execution.driver import execute_plan
from repro.execution.engine import PrestoEngine, QueryResult
from repro.planner.analyzer import Session
from repro.planner.plan import AggregationNode, JoinNode, SpatialJoinNode


def _register_spark_function_names() -> None:
    """Teach the shared registry Spark's names for translated functions."""
    from repro.core.functions import default_registry

    registry = default_registry()
    if registry.is_aggregate("approx_count_distinct"):
        return
    approx = registry._aggregates["approx_distinct"][0]
    from dataclasses import replace

    registry.register_aggregate(replace(approx, name="approx_count_distinct"))
    instr = registry._scalars["strpos"][0]
    registry.register_scalar(replace(instr, name="instr"))


_register_spark_function_names()


class BatchSqlEngine:
    """Executes (Spark-dialect) SQL with batch semantics."""

    def __init__(
        self,
        catalog: Catalog,
        session: Optional[Session] = None,
        clock: Optional[SimulatedClock] = None,
        memory_budget_rows: int = 1_000_000,
        job_startup_ms: float = 4_000.0,
        shuffle_ms_per_stage: float = 1_500.0,
        spill_ms_per_row: float = 0.002,
    ) -> None:
        # Reuse the same frontend/planner; only execution semantics differ.
        self._inner = PrestoEngine(catalog=catalog, session=session, clock=clock)
        self.clock = clock
        self.memory_budget_rows = memory_budget_rows
        self.job_startup_ms = job_startup_ms
        self.shuffle_ms_per_stage = shuffle_ms_per_stage
        self.spill_ms_per_row = spill_ms_per_row
        self.spilled_rows = 0
        self.jobs_run = 0

    def execute(self, sql: str) -> QueryResult:
        plan = self._inner.plan(sql)
        # Batch cost model: startup + one shuffle per stage boundary.
        stage_boundaries = sum(
            1
            for node in plan.walk()
            if isinstance(node, (JoinNode, SpatialJoinNode, AggregationNode))
        )
        if self.clock is not None:
            self.clock.advance(
                self.job_startup_ms + stage_boundaries * self.shuffle_ms_per_stage
            )
        ctx = ExecutionContext(
            catalog=self._inner.catalog,
            session=self._inner.session,
            registry=self._inner.registry,
            clock=self.clock,
            # No hard limit: oversized build sides spill instead of failing.
            max_build_rows=2**62,
        )
        rows = []
        for page in execute_plan(plan, ctx):
            rows.extend(page.rows())
        self.jobs_run += 1
        # Spill accounting: anything beyond the in-memory budget hit disk.
        overflow = max(0, ctx.stats.peak_build_rows - self.memory_budget_rows)
        if overflow:
            self.spilled_rows += overflow
            if self.clock is not None:
                self.clock.advance(overflow * self.spill_ms_per_row)
        return QueryResult(list(plan.column_names), rows, ctx.stats)
