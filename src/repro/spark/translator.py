"""Presto SQL → SparkSQL translation.

The user keeps writing Presto SQL; the translator parses it with the
Presto frontend and re-renders it in the Spark dialect — function name
differences included (``approx_distinct`` → ``approx_count_distinct``).
"""

from __future__ import annotations

from repro.sql import parse_sql
from repro.sql.formatter import SPARK, Dialect, format_query


class QueryTranslator:
    """Translates Presto SQL text into another dialect's SQL text."""

    def __init__(self, target: Dialect = SPARK) -> None:
        self.target = target
        self.translated = 0

    def translate(self, presto_sql: str) -> str:
        """Parse with the Presto grammar, render in the target dialect."""
        query = parse_sql(presto_sql)
        self.translated += 1
        return format_query(query, self.target)
