"""Automatic fallback: Presto first, translate to Spark on failure.

This is the resolution section XII.C asks for — "the 'Insufficient
Resource' error and query translation is always on the top of users'
complaints" — implemented as a runner that catches Presto's memory
failure, translates the SQL, and reruns on the batch engine without user
involvement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import InsufficientResourcesError
from repro.execution.engine import PrestoEngine, QueryResult
from repro.spark.batch_engine import BatchSqlEngine
from repro.spark.translator import QueryTranslator


@dataclass
class RoutedResult:
    """A query result plus which engine ultimately served it."""

    result: QueryResult
    engine: str  # 'presto' | 'spark'
    translated_sql: str = ""


class FallbackQueryRunner:
    """Runs on Presto; on Insufficient Resources, translates and retries."""

    def __init__(
        self,
        presto: PrestoEngine,
        batch: BatchSqlEngine,
        translator: QueryTranslator | None = None,
    ) -> None:
        self.presto = presto
        self.batch = batch
        self.translator = translator or QueryTranslator()
        self.fallbacks = 0

    def execute(self, sql: str) -> RoutedResult:
        try:
            return RoutedResult(self.presto.execute(sql), "presto")
        except InsufficientResourcesError:
            self.fallbacks += 1
            translated = self.translator.translate(sql)
            result = self.batch.execute(translated)
            return RoutedResult(result, "spark", translated)
