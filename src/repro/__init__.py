"""repro — a working reproduction of "Running Presto at Scale" (ICDE 2022).

A single-process, fully simulated implementation of the Presto features the
paper describes: a SQL engine with pushdown-capable connectors, a nested
columnar (Parquet-like) file format with old/new readers and writers, a
geospatial QuadTree plugin, coordinator/worker caches, cluster federation
through a gateway, and cloud elasticity over a simulated S3.

Quickstart::

    from repro import MemoryConnector, PrestoEngine, Session
    from repro.core.types import BIGINT, VARCHAR

    connector = MemoryConnector()
    connector.create_table("demo", "t", [("id", BIGINT), ("name", VARCHAR)],
                           [(1, "ada"), (2, "grace")])
    engine = PrestoEngine(session=Session(catalog="memory", schema="demo"))
    engine.register_connector("memory", connector)
    print(engine.execute("SELECT name FROM t ORDER BY id").rows)
"""

from repro.connectors.memory import MemoryConnector
from repro.connectors.spi import Catalog
from repro.execution.engine import PrestoEngine, QueryResult
from repro.planner.analyzer import Session

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "MemoryConnector",
    "PrestoEngine",
    "QueryResult",
    "Session",
    "__version__",
]
