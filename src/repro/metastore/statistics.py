"""Table and column statistics for cost-based planning.

The paper's production Presto runs "a rule based optimizer, ignoring
statistics" (section XII.A) because statistics could not be kept fresh at
Uber's ingestion rates.  This module is the counter-experiment the
SQL-on-Hadoop comparative study (PAPERS.md) motivates: a small, explicit
statistics model — per-table row counts plus per-column NDV / min / max /
null-fraction — collected on demand by ``ANALYZE TABLE`` and stored in the
metastore, versioned like every other metastore mutation so staleness is
at least observable.

Statistics are *advisory*: every consumer (the cost estimator, the join
reorder rule, the broadcast chooser) must behave identically to the
stats-free engine when they are absent, and must never change query
results when they are present — only plan shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence


@dataclass(frozen=True)
class ColumnStatisticsEntry:
    """Summary of one column: distinct values, range, null fraction.

    ``min_value``/``max_value`` are None for non-orderable types (arrays,
    maps, structs) and for all-null columns.  ``ndv`` counts distinct
    non-null values.  NaN never appears in ``min_value``/``max_value``
    (consistent with the parquet writer's NaN-free chunk statistics).
    """

    ndv: int
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    null_fraction: float = 0.0

    def to_dict(self) -> dict:
        return {
            "ndv": self.ndv,
            "min": self.min_value,
            "max": self.max_value,
            "nullFraction": self.null_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnStatisticsEntry":
        return cls(data["ndv"], data["min"], data["max"], data["nullFraction"])


@dataclass(frozen=True)
class TableStatistics:
    """Row count plus per-column statistics, keyed by column name."""

    row_count: int
    columns: Mapping[str, ColumnStatisticsEntry]

    def column(self, name: str) -> Optional[ColumnStatisticsEntry]:
        return self.columns.get(name)

    def to_dict(self) -> dict:
        return {
            "rowCount": self.row_count,
            "columns": {n: c.to_dict() for n, c in self.columns.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableStatistics":
        return cls(
            data["rowCount"],
            {
                n: ColumnStatisticsEntry.from_dict(c)
                for n, c in data["columns"].items()
            },
        )


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and math.isnan(value)


def column_statistics_from_values(values: Sequence[Any]) -> ColumnStatisticsEntry:
    """Exact statistics over one column's Python values.

    NaN values are excluded from the range (they compare unreliably) but
    still count as distinct non-null values.
    """
    total = len(values)
    defined = [v for v in values if v is not None]
    nulls = total - len(defined)
    orderable = [v for v in defined if not _is_nan(v)]
    low = high = None
    if orderable:
        try:
            low, high = min(orderable), max(orderable)
        except TypeError:
            low = high = None  # non-orderable values (lists, dicts, ...)
    try:
        ndv = len(set(defined))
    except TypeError:
        ndv = len({repr(v) for v in defined})  # unhashable values
    return ColumnStatisticsEntry(
        ndv=ndv,
        min_value=low,
        max_value=high,
        null_fraction=(nulls / total) if total else 0.0,
    )


def statistics_from_rows(
    column_names: Sequence[str], rows: Sequence[Sequence[Any]]
) -> TableStatistics:
    """Exact table statistics computed from materialized rows.

    Used by connectors whose data is already in memory (the memory
    connector) and as the oracle the hive footer-derived collection is
    tested against.
    """
    columns = {
        name: column_statistics_from_values([row[i] for row in rows])
        for i, name in enumerate(column_names)
    }
    return TableStatistics(row_count=len(rows), columns=columns)
