"""Schema evolution rules for nested data (section V.A).

The company-wide rules the paper describes:

- **Adding** new fields to an existing struct is allowed.  Querying the
  new field over old data (written before the field existed) returns null.
- **Removing** fields is allowed.  Data still ingested into a removed
  field is ignored.
- **Renaming** fields is NOT allowed — the field name identifies the
  column across the metastore schema and the Parquet file schema, so a
  rename would make them mismatch.
- **Type changes** are NOT allowed — Presto is type strict and performs no
  automatic coercion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SchemaEvolutionError
from repro.core.types import ArrayType, MapType, PrestoType, RowType


@dataclass
class SchemaChange:
    """One detected change between schema versions."""

    kind: str  # 'add' | 'remove' | 'type_change'
    path: str
    old_type: Optional[PrestoType] = None
    new_type: Optional[PrestoType] = None


class SchemaEvolutionValidator:
    """Validates a proposed schema against the current one."""

    def diff(
        self,
        old_columns: list[tuple[str, PrestoType]],
        new_columns: list[tuple[str, PrestoType]],
    ) -> list[SchemaChange]:
        """All changes between two column lists, recursing into structs."""
        changes: list[SchemaChange] = []
        self._diff_fields(dict(old_columns), dict(new_columns), "", changes)
        return changes

    def validate(
        self,
        old_columns: list[tuple[str, PrestoType]],
        new_columns: list[tuple[str, PrestoType]],
    ) -> list[SchemaChange]:
        """Raise :class:`SchemaEvolutionError` on any forbidden change."""
        changes = self.diff(old_columns, new_columns)
        for change in changes:
            if change.kind == "type_change":
                raise SchemaEvolutionError(
                    f"type change is not allowed: {change.path} "
                    f"{change.old_type.display()} -> {change.new_type.display()}"
                )
        # Rename detection: a simultaneous remove+add at the same struct
        # level with identical types is treated as a rename attempt.
        removed = {c.path: c for c in changes if c.kind == "remove"}
        added = {c.path: c for c in changes if c.kind == "add"}
        for removed_path, removed_change in removed.items():
            parent = removed_path.rsplit(".", 1)[0] if "." in removed_path else ""
            for added_path, added_change in added.items():
                added_parent = added_path.rsplit(".", 1)[0] if "." in added_path else ""
                if parent == added_parent and removed_change.old_type == added_change.new_type:
                    raise SchemaEvolutionError(
                        f"field rename is not allowed: {removed_path} -> {added_path} "
                        "(rename triggers schema mismatch between metastore and Parquet files)"
                    )
        return changes

    def _diff_fields(
        self,
        old: dict[str, PrestoType],
        new: dict[str, PrestoType],
        prefix: str,
        changes: list[SchemaChange],
    ) -> None:
        for name, old_type in old.items():
            path = f"{prefix}.{name}" if prefix else name
            if name not in new:
                changes.append(SchemaChange("remove", path, old_type=old_type))
                continue
            new_type = new[name]
            if isinstance(old_type, RowType) and isinstance(new_type, RowType):
                self._diff_fields(
                    {f.name: f.type for f in old_type.fields},
                    {f.name: f.type for f in new_type.fields},
                    path,
                    changes,
                )
            elif old_type != new_type:
                changes.append(
                    SchemaChange("type_change", path, old_type=old_type, new_type=new_type)
                )
        for name, new_type in new.items():
            if name not in old:
                path = f"{prefix}.{name}" if prefix else name
                changes.append(SchemaChange("add", path, new_type=new_type))


def resolve_read_schema(
    file_columns: list[tuple[str, PrestoType]],
    table_columns: list[tuple[str, PrestoType]],
) -> list[tuple[str, PrestoType, str]]:
    """Reconcile a file's schema with the (possibly newer) table schema.

    Returns per table column: (name, type, disposition) where disposition is
    ``"read"`` (present in the file), ``"null"`` (added after the file was
    written → nulls), matching the paper's read-side rules.  Columns present
    only in the file (removed from the table) are simply not returned —
    "Presto just ignores them."
    """
    file_types = dict(file_columns)
    resolution: list[tuple[str, PrestoType, str]] = []
    for name, table_type in table_columns:
        if name not in file_types:
            resolution.append((name, table_type, "null"))
            continue
        file_type = file_types[name]
        if isinstance(table_type, RowType) and isinstance(file_type, RowType):
            resolution.append((name, table_type, "read"))
        elif file_type == table_type:
            resolution.append((name, table_type, "read"))
        else:
            raise SchemaEvolutionError(
                f"schema mismatch for column {name!r}: file has "
                f"{file_type.display()}, table has {table_type.display()}"
            )
    return resolution
