"""Hive-style metastore: databases, tables, partitions.

Tracks table schemas, partition locations, and whether a partition is
*sealed* or *open* — the distinction the file-list cache keys on (section
VII.A: caching "can only be applied to sealed directories.  For open
partitions, Presto will skip caching those directories to guarantee data
freshness" for near-real-time ingestion).

Every mutation bumps a version counter, which the metastore versioned
cache uses for invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.errors import ConnectorError
from repro.core.types import PrestoType
from repro.metastore.statistics import TableStatistics


@dataclass
class PartitionInfo:
    """One partition: its key values, storage location, and seal state."""

    values: tuple[str, ...]
    location: str
    sealed: bool = True


@dataclass
class TableInfo:
    """One table's metadata."""

    database: str
    name: str
    columns: list[tuple[str, PrestoType]]  # data columns (in file)
    partition_keys: list[tuple[str, PrestoType]] = field(default_factory=list)
    location: str = ""
    partitions: dict[tuple[str, ...], PartitionInfo] = field(default_factory=dict)

    def all_columns(self) -> list[tuple[str, PrestoType]]:
        return self.columns + self.partition_keys

    def partition_key_names(self) -> list[str]:
        return [name for name, _ in self.partition_keys]


class HiveMetastore:
    """In-memory metastore with version tracking."""

    def __init__(self) -> None:
        self._tables: dict[tuple[str, str], TableInfo] = {}
        self._statistics: dict[tuple[str, str], TableStatistics] = {}
        self.version = 0

    def _bump(self) -> None:
        self.version += 1

    # -- DDL -----------------------------------------------------------------

    def create_table(
        self,
        database: str,
        name: str,
        columns: Sequence[tuple[str, PrestoType]],
        partition_keys: Sequence[tuple[str, PrestoType]] = (),
        location: str = "",
    ) -> TableInfo:
        key = (database, name)
        if key in self._tables:
            raise ConnectorError(f"table {database}.{name} already exists")
        table = TableInfo(
            database,
            name,
            list(columns),
            list(partition_keys),
            location or f"/warehouse/{database}/{name}",
        )
        self._tables[key] = table
        self._bump()
        return table

    def drop_table(self, database: str, name: str) -> None:
        self._tables.pop((database, name), None)
        self._statistics.pop((database, name), None)
        self._bump()

    def update_table_columns(
        self, database: str, name: str, columns: Sequence[tuple[str, PrestoType]]
    ) -> None:
        self.get_table(database, name).columns = list(columns)
        self._bump()

    # -- partitions ------------------------------------------------------------

    def add_partition(
        self,
        database: str,
        name: str,
        values: Sequence[str],
        location: Optional[str] = None,
        sealed: bool = True,
    ) -> PartitionInfo:
        table = self.get_table(database, name)
        values = tuple(values)
        if len(values) != len(table.partition_keys):
            raise ConnectorError(
                f"partition values {values} do not match keys {table.partition_key_names()}"
            )
        if location is None:
            parts = "/".join(
                f"{key}={value}"
                for (key, _), value in zip(table.partition_keys, values)
            )
            location = f"{table.location}/{parts}"
        partition = PartitionInfo(values, location, sealed)
        table.partitions[values] = partition
        self._bump()
        return partition

    def seal_partition(self, database: str, name: str, values: Sequence[str]) -> None:
        """Mark a partition sealed: ingestion finished, safe to cache."""
        partition = self.get_partition(database, name, values)
        partition.sealed = True
        self._bump()

    def get_partition(
        self, database: str, name: str, values: Sequence[str]
    ) -> PartitionInfo:
        table = self.get_table(database, name)
        partition = table.partitions.get(tuple(values))
        if partition is None:
            raise ConnectorError(f"no partition {values} in {database}.{name}")
        return partition

    def list_partitions(self, database: str, name: str) -> list[PartitionInfo]:
        return list(self.get_table(database, name).partitions.values())

    # -- statistics ------------------------------------------------------------

    def set_table_statistics(
        self, database: str, name: str, statistics: TableStatistics
    ) -> None:
        """Store ANALYZE results; bumps the version like any mutation."""
        self.get_table(database, name)  # raises if the table does not exist
        self._statistics[(database, name)] = statistics
        self._bump()

    def get_table_statistics(
        self, database: str, name: str
    ) -> Optional[TableStatistics]:
        return self._statistics.get((database, name))

    # -- lookup ----------------------------------------------------------------

    def get_table(self, database: str, name: str) -> TableInfo:
        table = self._tables.get((database, name))
        if table is None:
            raise ConnectorError(f"table {database}.{name} does not exist")
        return table

    def has_table(self, database: str, name: str) -> bool:
        return (database, name) in self._tables

    def list_databases(self) -> list[str]:
        return sorted({d for d, _ in self._tables})

    def list_tables(self, database: str) -> list[str]:
        return sorted(n for d, n in self._tables if d == database)
