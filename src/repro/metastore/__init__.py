"""Metastore and the schema service.

"Schemas are managed as a service outside of Presto, which tracks
different versions of schemas, enforces schema evolution rules, and
guarantees schema matching between Parquet file schema and metastore
schema" (section V.A).
"""

from repro.metastore.metastore import HiveMetastore, PartitionInfo, TableInfo
from repro.metastore.evolution import (
    SchemaEvolutionValidator,
    resolve_read_schema,
)
from repro.metastore.schema_service import SchemaService

__all__ = [
    "HiveMetastore",
    "PartitionInfo",
    "TableInfo",
    "SchemaEvolutionValidator",
    "SchemaService",
    "resolve_read_schema",
]
