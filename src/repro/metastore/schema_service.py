"""The schema service: versioned schemas with enforced evolution rules.

Lives outside the query engine ("Schemas are managed as a service outside
of Presto"), owns the history of every table's schema, and gatekeeps
changes through :class:`SchemaEvolutionValidator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SchemaEvolutionError
from repro.core.types import PrestoType
from repro.metastore.evolution import SchemaEvolutionValidator


@dataclass(frozen=True)
class SchemaVersion:
    version: int
    columns: tuple[tuple[str, PrestoType], ...]


class SchemaService:
    """Tracks schema versions per table and enforces evolution rules."""

    def __init__(self) -> None:
        self._history: dict[str, list[SchemaVersion]] = {}
        self._validator = SchemaEvolutionValidator()

    def register(self, table: str, columns: list[tuple[str, PrestoType]]) -> SchemaVersion:
        """Register a table's initial schema (version 1)."""
        if table in self._history:
            raise SchemaEvolutionError(f"schema for {table!r} already registered")
        version = SchemaVersion(1, tuple(columns))
        self._history[table] = [version]
        return version

    def evolve(self, table: str, columns: list[tuple[str, PrestoType]]) -> SchemaVersion:
        """Propose a new schema; raises on forbidden changes."""
        history = self._require(table)
        current = history[-1]
        self._validator.validate(list(current.columns), columns)
        version = SchemaVersion(current.version + 1, tuple(columns))
        history.append(version)
        return version

    def current(self, table: str) -> SchemaVersion:
        return self._require(table)[-1]

    def version(self, table: str, number: int) -> SchemaVersion:
        for version in self._require(table):
            if version.version == number:
                return version
        raise SchemaEvolutionError(f"{table!r} has no schema version {number}")

    def history(self, table: str) -> list[SchemaVersion]:
        return list(self._require(table))

    def _require(self, table: str) -> list[SchemaVersion]:
        history = self._history.get(table)
        if history is None:
            raise SchemaEvolutionError(f"no schema registered for {table!r}")
        return history
