"""The Presto gateway: HTTP-redirect cluster federation (section VIII).

"Using HTTP Redirect, we developed a presto gateway.  The gateway will
redirect incoming queries to specific presto clusters, based on user name
and group information."

The design deliberately embodies the section XII.B lesson — a *general*
gateway that proxied traffic, estimated cost, and did admission control
"could not scale" and "is a failure".  This gateway therefore only
resolves a route and answers with a redirect; the client then talks to
the chosen cluster's coordinator directly, so the gateway is never on the
query's data path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from contextlib import nullcontext

from repro.common.errors import AdmissionRejectedError, GatewayError, PrestoError
from repro.execution.cluster import PrestoClusterSim, QueryExecution
from repro.federation.routing import RoutingTable
from repro.obs.trace import QueryTrace, activate


@dataclass(frozen=True)
class Redirect:
    """An HTTP 307-style answer: resubmit to this cluster."""

    cluster_name: str
    status_code: int = 307


@dataclass
class GatewaySubmission:
    """One non-blocking gateway submission and where it currently lives.

    ``cluster_name``/``execution`` are updated if the gateway later
    re-routes the query (admission spill, drain eviction); ``handle``
    is the engine-side query and owns the result.
    """

    user: str
    handle: object  # repro.execution.engine.QueryHandle
    cluster_name: str
    execution: QueryExecution
    attempts: int = 1


class PrestoGateway:
    """Routing-only federation gateway over multiple cluster simulations."""

    def __init__(self, routing: Optional[RoutingTable] = None, metrics=None) -> None:
        self.routing = routing or RoutingTable()
        self.clusters: dict[str, PrestoClusterSim] = {}
        self._drained: set[str] = set()
        self._fallback: Optional[str] = None
        self.redirects_served = 0
        self.failovers = 0
        self.load_sheds = 0
        self.all_sheds = 0
        # Live non-blocking submissions (submit_sql_async), so a drain
        # can re-route the still-queued ones.
        self._submissions: list[GatewaySubmission] = []
        # Optional observability: ``gateway_redirects_total``,
        # ``gateway_queries_routed_total{cluster}`` and
        # ``gateway_failovers_total{cluster}``.
        self.metrics = metrics

    def _count(self, name: str, **labels) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc()

    # -- cluster management -----------------------------------------------------

    def register_cluster(self, cluster: PrestoClusterSim) -> None:
        self.clusters[cluster.name] = cluster

    def drain_cluster(self, name: str, fallback: str) -> None:
        """Maintenance: stop routing to ``name``, sending traffic to
        ``fallback`` — "we will redirect traffic either to shared cluster,
        or newly launched new cluster, to guarantee no downtime".

        Queries already *running* on the drained cluster finish in place
        (their splits keep draining through its workers); queries still
        sitting in its admission queue never executed a task, so the
        gateway evicts them and resubmits their handles to ``fallback``
        with no double-publish risk.
        """
        if fallback not in self.clusters:
            raise GatewayError(f"fallback cluster {fallback!r} not registered")
        self._drained.add(name)
        self._fallback = fallback
        drained = self.clusters.get(name)
        if drained is None:
            return
        target = self.clusters[fallback]
        for run in drained.evict_queued():
            self.failovers += 1
            self._count("gateway_failovers_total", cluster=name)
            # A group path is cluster-local; rebuild it (minus the "root."
            # prefix) on the fallback cluster's tree.
            relative = run.group.path.partition(".")[2] or None
            execution = target.submit_handle(
                run.handle,
                user=run.user,
                resource_group=relative,
                memory_mb=run.memory_mb,
                priority=run.priority,
                on_finish=run.on_finish,
            )
            for submission in self._submissions:
                if submission.handle is run.handle:
                    submission.cluster_name = fallback
                    submission.execution = execution
                    submission.attempts += 1

    def undrain_cluster(self, name: str) -> None:
        self._drained.discard(name)

    # -- request handling ----------------------------------------------------------

    def redirect(self, user: str, groups: tuple[str, ...] = ()) -> Redirect:
        """Resolve the target cluster and answer with a redirect."""
        self.redirects_served += 1
        self._count("gateway_redirects_total")
        cluster_name = self.routing.resolve(user, groups)
        if cluster_name in self._drained:
            cluster_name = self._fallback
        if cluster_name not in self.clusters:
            raise GatewayError(f"route points to unknown cluster {cluster_name!r}")
        return Redirect(cluster_name)

    def submit(
        self,
        user: str,
        split_durations_ms: list[float],
        groups: tuple[str, ...] = (),
    ) -> QueryExecution:
        """Client convenience: follow the redirect and submit directly.

        Note the two hops mirror production: the gateway answers instantly
        with a redirect and the query itself runs on the target coordinator.
        """
        redirect = self.redirect(user, groups)
        return self.clusters[redirect.cluster_name].submit_query(split_durations_ms)

    def submit_sql(
        self,
        user: str,
        engine,
        sql: str,
        groups: tuple[str, ...] = (),
        max_failovers: Optional[int] = None,
    ) -> tuple:
        """Follow the redirect and run a real query on the target cluster.

        The query executes on ``engine`` through staged execution; the
        resulting task records are scheduled as cluster work on whichever
        cluster the route resolves to.  Returns ``(QueryResult,
        QueryExecution)``.

        Failover (the Twitter hybrid-cloud gateway pattern): when the run
        fails with a *retryable* error (INTERNAL_ERROR / EXTERNAL — the
        cluster or its infrastructure, not the query), the gateway
        resubmits to another registered, undrained cluster, up to
        ``max_failovers`` re-routes (default: every other cluster once).
        USER_ERRORs and INSUFFICIENT_RESOURCES fail fast — no amount of
        re-routing fixes a bad query or an over-large join.
        """
        redirect = self.redirect(user, groups)
        cluster_name = redirect.cluster_name
        if max_failovers is None:
            max_failovers = len(self.clusters) - 1
        # One trace per gateway submission, rooted at the routing hop, so
        # a failed-over query's tree shows every cluster it touched.
        tracer = QueryTrace() if getattr(engine, "tracing", False) else None
        submit_span = (
            tracer.span("gateway.submit", user=user)
            if tracer is not None
            else nullcontext()
        )
        tried: list[str] = []
        with activate(tracer) if tracer is not None else nullcontext(), submit_span:
            while True:
                tried.append(cluster_name)
                self._count("gateway_queries_routed_total", cluster=cluster_name)
                if tracer is not None:
                    tracer.instant(
                        "gateway.route", cluster=cluster_name, attempt=len(tried)
                    )
                try:
                    return self.clusters[cluster_name].submit_engine_query(engine, sql)
                except PrestoError as error:
                    if not error.retryable:
                        raise
                    candidates = [
                        name
                        for name in self.clusters
                        if name not in tried and name not in self._drained
                    ]
                    if not candidates or len(tried) > max_failovers:
                        raise
                    self.failovers += 1
                    self._count("gateway_failovers_total", cluster=cluster_name)
                    cluster_name = candidates[0]

    # -- non-blocking submission ------------------------------------------------

    def queue_depths(self) -> dict[str, int]:
        """Per-cluster admission-queue depth, surfaced to routing.

        Also refreshes the ``gateway_cluster_queue_depth`` gauges, so
        dashboards see what the router saw.
        """
        depths = {
            name: cluster.queued_query_count()
            for name, cluster in self.clusters.items()
        }
        if self.metrics is not None:
            for name, depth in depths.items():
                self.metrics.gauge("gateway_cluster_queue_depth", cluster=name).set(
                    depth
                )
        return depths

    def submit_sql_async(
        self,
        user: str,
        engine,
        sql: str,
        groups: tuple[str, ...] = (),
        resource_group: Optional[str] = None,
        memory_mb: float = 100.0,
        priority: int = 0,
    ) -> GatewaySubmission:
        """Route and admit ``sql`` without blocking on its execution.

        The gateway resolves the route, plans the query on ``engine``
        (coordinator work — synchronous, as in production), and admits
        the resulting handle to the target cluster's resource groups.
        Execution proceeds as the cluster's event loop is driven; the
        caller collects rows from ``submission.handle.result()``.

        If the routed cluster sheds the query at admission
        (:class:`AdmissionRejectedError`), the gateway *spills*: it
        retries the remaining undrained clusters from the shallowest
        admission queue up — the per-cluster queue depth surfaced by
        :meth:`queue_depths` is exactly what this decision reads.  If
        every cluster sheds, the rejection with the *minimum*
        ``retry_after_ms`` propagates to the client: the soonest any
        cluster expects capacity is when the client should retry, not
        whenever the last-tried (deepest-queued) cluster frees up.
        """
        redirect = self.redirect(user, groups)
        handle = engine.submit(sql)
        tracer = getattr(handle, "trace", None)
        span = tracer.open_span("gateway.submit", user=user) if tracer is not None else None

        def finished(run) -> None:
            if tracer is not None and span is not None:
                tracer.close_span(span)

        depths = self.queue_depths()
        spill_order = [redirect.cluster_name] + sorted(
            (
                name
                for name in self.clusters
                if name != redirect.cluster_name and name not in self._drained
            ),
            key=lambda name: (depths[name], name),
        )
        rejections: list[AdmissionRejectedError] = []
        for attempt, cluster_name in enumerate(spill_order, start=1):
            cluster = self.clusters[cluster_name]
            self._count("gateway_queries_routed_total", cluster=cluster_name)
            if tracer is not None:
                tracer.instant(
                    "gateway.route",
                    cluster=cluster_name,
                    attempt=attempt,
                    queue_depth=cluster.queued_query_count(),
                )
            try:
                execution = cluster.submit_handle(
                    handle,
                    user=user,
                    resource_group=resource_group,
                    memory_mb=memory_mb,
                    priority=priority,
                    on_finish=finished,
                )
            except AdmissionRejectedError as error:
                rejections.append(error)
                self.load_sheds += 1
                self._count("gateway_load_shed_total", cluster=cluster_name)
                continue
            if attempt > 1:
                self.failovers += 1
                self._count("gateway_failovers_total", cluster=spill_order[0])
            submission = GatewaySubmission(
                user=user,
                handle=handle,
                cluster_name=cluster_name,
                execution=execution,
                attempts=attempt,
            )
            self._submissions.append(submission)
            return submission
        if tracer is not None and span is not None:
            tracer.close_span(span)
        assert rejections
        self.all_sheds += 1
        self._count("gateway_all_shed_total")
        raise min(rejections, key=lambda error: error.retry_after_ms)
