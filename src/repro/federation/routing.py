"""User/group → cluster routing, stored in MySQL (section VIII).

"The user and group to cluster mapping data is stored in MySQL.  Presto
administrators could play with MySQL to dynamically redirect any traffic
to any cluster."  The routing table is literally a table in the simulated
MySQL server, so an administrator UPDATE takes effect on the next lookup.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import GatewayError
from repro.connectors.mysql import MySqlServer
from repro.core.types import VARCHAR

ROUTING_DATABASE = "presto_gateway"
ROUTING_TABLE = "routing"


class RoutingTable:
    """Reads/writes the user/group→cluster mapping in MySQL."""

    def __init__(self, mysql: Optional[MySqlServer] = None) -> None:
        self.mysql = mysql or MySqlServer()
        try:
            self.mysql.columns(ROUTING_DATABASE, ROUTING_TABLE)
        except Exception:
            self.mysql.create_table(
                ROUTING_DATABASE,
                ROUTING_TABLE,
                [("principal", VARCHAR), ("kind", VARCHAR), ("cluster", VARCHAR)],
            )

    # -- administration ------------------------------------------------------

    def assign_user(self, user: str, cluster: str) -> None:
        self._assign(user, "user", cluster)

    def assign_group(self, group: str, cluster: str) -> None:
        self._assign(group, "group", cluster)

    def set_default(self, cluster: str) -> None:
        self._assign("*", "default", cluster)

    def _assign(self, principal: str, kind: str, cluster: str) -> None:
        rows = [
            row
            for row in self._all_rows()
            if not (row[0] == principal and row[1] == kind)
        ]
        rows.append((principal, kind, cluster))
        self.mysql.create_table(
            ROUTING_DATABASE,
            ROUTING_TABLE,
            [("principal", VARCHAR), ("kind", VARCHAR), ("cluster", VARCHAR)],
            rows,
        )

    def remove(self, principal: str, kind: str = "user") -> None:
        rows = [
            row
            for row in self._all_rows()
            if not (row[0] == principal and row[1] == kind)
        ]
        self.mysql.create_table(
            ROUTING_DATABASE,
            ROUTING_TABLE,
            [("principal", VARCHAR), ("kind", VARCHAR), ("cluster", VARCHAR)],
            rows,
        )

    def _all_rows(self) -> list[tuple]:
        return self.mysql.execute(
            ROUTING_DATABASE, ROUTING_TABLE, ["principal", "kind", "cluster"]
        )

    # -- resolution ---------------------------------------------------------------

    def resolve(self, user: str, groups: tuple[str, ...] = ()) -> str:
        """User mapping wins over group mapping wins over default."""
        rows = self._all_rows()
        by_key = {(principal, kind): cluster for principal, kind, cluster in rows}
        if (user, "user") in by_key:
            return by_key[(user, "user")]
        for group in groups:
            if (group, "group") in by_key:
                return by_key[(group, "group")]
        if ("*", "default") in by_key:
            return by_key[("*", "default")]
        raise GatewayError(f"no route for user {user!r} (groups {groups})")
