"""Cluster federation: the Presto gateway (section VIII)."""

from repro.federation.routing import RoutingTable
from repro.federation.gateway import PrestoGateway, Redirect

__all__ = ["RoutingTable", "PrestoGateway", "Redirect"]
