"""Presto on cloud: graceful expansion/shrink and autoscaling (section IX)."""

from repro.cloud.elasticity import Autoscaler, AutoscalerPolicy

__all__ = ["Autoscaler", "AutoscalerPolicy"]
