"""Elastic scaling of a cluster on cloud infrastructure (section IX).

"During busy hours, to expand on Amazon or GCP, we could simply add more
workers, configured with the same coordinator.  New workers are
automatically added to the existing cluster.  During non-busy hours, to
gracefully shrink workers from existing clusters, administrators could
send a command to presto workers" — which triggers the SHUTTING_DOWN
drain protocol implemented in :mod:`repro.execution.cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.execution.cluster import (
    DEFAULT_GRACE_PERIOD_MS,
    PrestoClusterSim,
    WorkerState,
)


@dataclass
class AutoscalerPolicy:
    """Utilization-band policy: scale out above ``high``, in below ``low``."""

    low_utilization: float = 0.3
    high_utilization: float = 0.8
    min_workers: int = 2
    max_workers: int = 1000
    step: int = 1


class Autoscaler:
    """Drives expansion and graceful shrink from observed utilization."""

    def __init__(
        self,
        cluster: PrestoClusterSim,
        policy: Optional[AutoscalerPolicy] = None,
        grace_period_ms: float = DEFAULT_GRACE_PERIOD_MS,
    ) -> None:
        self.cluster = cluster
        self.policy = policy or AutoscalerPolicy()
        self.grace_period_ms = grace_period_ms
        self.scale_out_events = 0
        self.scale_in_events = 0

    def utilization(self) -> float:
        """Fraction of active slots currently running work."""
        active = [
            w for w in self.cluster.workers.values() if w.state is WorkerState.ACTIVE
        ]
        total_slots = sum(w.slots for w in active)
        if total_slots == 0:
            return 1.0
        return sum(w.running for w in active) / total_slots

    def evaluate(self) -> str:
        """One policy evaluation; returns 'out', 'in', or 'hold'."""
        utilization = self.utilization()
        active = self.cluster.active_worker_count()
        if (
            utilization > self.policy.high_utilization
            and active < self.policy.max_workers
        ):
            for _ in range(self.policy.step):
                self.cluster.add_worker()
            self.scale_out_events += 1
            return "out"
        if (
            utilization < self.policy.low_utilization
            and active > self.policy.min_workers
        ):
            victims = self._least_loaded(self.policy.step)
            for worker in victims:
                self.cluster.request_graceful_shutdown(
                    worker.worker_id, self.grace_period_ms
                )
            if victims:
                self.scale_in_events += 1
                return "in"
        return "hold"

    def _least_loaded(self, count: int):
        active = [
            w for w in self.cluster.workers.values() if w.state is WorkerState.ACTIVE
        ]
        # Never shrink below the floor.
        available = max(0, len(active) - self.policy.min_workers)
        active.sort(key=lambda w: w.running)
        return active[: min(count, available)]
