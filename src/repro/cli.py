"""Command-line SQL shell: ``python -m repro``.

Starts an engine over a demo warehouse (nested trips data on simulated
HDFS plus a small MySQL dimension) and runs SQL from ``-e/--execute``
arguments or an interactive prompt.  Supports the metadata statements
(SHOW/DESCRIBE/EXPLAIN) so the experience mirrors the Presto CLI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence, TextIO

from repro.execution.engine import PrestoEngine, QueryResult
from repro.planner.analyzer import Session


def build_demo_engine() -> PrestoEngine:
    """An engine preloaded with the demo warehouse."""
    from repro.connectors.hive import HiveConnector
    from repro.connectors.mysql import MySqlConnector, MySqlServer
    from repro.core.types import BIGINT, VARCHAR
    from repro.metastore.metastore import HiveMetastore
    from repro.storage.hdfs import HdfsFileSystem
    from repro.workloads.trips import load_trips_table

    metastore = HiveMetastore()
    fs = HdfsFileSystem()
    load_trips_table(
        metastore,
        fs,
        ["2017-03-01", "2017-03-02"],
        rows_per_date=500,
        row_group_size=250,
        num_cities=40,
        table="trips",
    )
    mysql = MySqlServer()
    mysql.create_table(
        "dim",
        "cities",
        [("city_id", BIGINT), ("region", VARCHAR)],
        [(i, f"region{i % 5}") for i in range(1, 41)],
    )
    engine = PrestoEngine(session=Session(catalog="hive", schema="rawdata"))
    engine.register_connector("hive", HiveConnector(metastore, fs))
    engine.register_connector("mysql", MySqlConnector(mysql))
    # Storage round-trips show up in --metrics alongside the query series.
    fs.namenode.bind_metrics(engine.metrics)
    return engine


def render_result(result: QueryResult, out: TextIO) -> None:
    """Presto-CLI-style aligned table output."""
    rows = [tuple("NULL" if v is None else str(v) for v in row) for row in result.rows]
    headers = result.column_names
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write("-+-".join("-" * w for w in widths) + "\n")
    for row in rows:
        out.write(" | ".join(v.ljust(w) for v, w in zip(row, widths)) + "\n")
    out.write(f"({len(rows)} row{'s' if len(rows) != 1 else ''})\n")


def run_statement(
    engine: PrestoEngine, sql: str, out: TextIO, show_trace: bool = False
) -> Optional[QueryResult]:
    """Execute one statement; returns the result, or None on error."""
    from repro.common.errors import PrestoError

    try:
        result = engine.execute(sql)
    except PrestoError as error:
        out.write(f"Query failed: {error}\n")
        return None
    render_result(result, out)
    if show_trace and result.trace is not None:
        out.write(result.trace.to_json(indent=2) + "\n")
    return result


def main(
    argv: Optional[Sequence[str]] = None,
    engine: Optional[PrestoEngine] = None,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQL shell over the repro engine (demo warehouse preloaded)",
    )
    parser.add_argument(
        "-e",
        "--execute",
        action="append",
        default=[],
        metavar="SQL",
        help="execute a statement and exit (repeatable)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="after each query, dump its span tree as JSON",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="on exit, dump the engine metrics registry as JSON",
    )
    arguments = parser.parse_args(argv)
    out = stdout or sys.stdout
    engine = engine or build_demo_engine()

    if arguments.execute:
        ok = True
        for sql in arguments.execute:
            ok = (
                run_statement(engine, sql, out, show_trace=arguments.trace)
                is not None
            ) and ok
        if arguments.metrics:
            out.write(engine.metrics.to_json(indent=2) + "\n")
        return 0 if ok else 1

    source = stdin or sys.stdin
    out.write("repro SQL shell — demo catalog 'hive', schema 'rawdata'.\n")
    out.write("Try: SHOW TABLES; DESCRIBE trips; SELECT count(*) FROM trips;\n")
    buffer = ""
    while True:
        if not buffer.strip():
            buffer = ""
        out.write("repro> " if not buffer else "    -> ")
        out.flush()
        line = source.readline()
        if not line:
            break
        buffer += line
        if ";" not in buffer:
            continue
        statement, _, buffer = buffer.partition(";")
        statement = statement.strip()
        if not statement:
            continue
        if statement.lower() in ("quit", "exit"):
            break
        run_statement(engine, statement, out, show_trace=arguments.trace)
    if arguments.metrics:
        out.write(engine.metrics.to_json(indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
