"""Presto on cloud: S3, elasticity, and cluster federation (sections VIII-IX).

Demonstrates the operational side of the paper:

1. PrestoS3FileSystem over a simulated S3 — lazy seek, exponential
   backoff through an injected outage, multipart upload, S3 Select;
2. a Hive warehouse living on S3 instead of HDFS, queried identically;
3. graceful expansion and shrink of a simulated cluster (section IX);
4. a federation gateway routing users to clusters, with a zero-downtime
   maintenance drain (section VIII).

Run:  python examples/presto_on_cloud.py
"""

import itertools

from repro import PrestoEngine, Session
from repro.cloud.elasticity import Autoscaler, AutoscalerPolicy
from repro.common.clock import SimulatedClock
from repro.connectors.hive import HiveConnector, write_hive_partition
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.cluster import PrestoClusterSim, WorkerState
from repro.federation.gateway import PrestoGateway
from repro.metastore.metastore import HiveMetastore
from repro.storage.s3 import S3Client
from repro.storage.s3_filesystem import PrestoS3FileSystem


def s3_features() -> None:
    print("== PrestoS3FileSystem optimizations ==")
    clock = SimulatedClock()
    # First three requests fail: exponential backoff rides it out.
    failures = itertools.chain([True, True, True], itertools.repeat(False))
    client = S3Client(clock=clock, failure_injector=lambda op: next(failures))
    fs = PrestoS3FileSystem(client, "warehouse", multipart_threshold=4_000_000)

    fs.create("/bulk/data.bin", b"x" * 20_000_000)  # multipart upload
    print(
        f"  multipart upload of 20MB: {client.stats.multipart_part_uploads} parts, "
        f"{fs.stats.retries} retries absorbed, "
        f"{fs.stats.backoff_ms_total:.0f}ms backoff"
    )

    stream = fs.open("/bulk/data.bin")
    before = client.stats.get_requests
    stream.seek(1_000_000)
    stream.seek(5_000_000)
    stream.seek(9_000_000)  # lazy: no GETs yet
    stream.read(64)
    print(
        f"  lazy seek: 3 seeks + 1 read -> {client.stats.get_requests - before} GET request(s)"
    )

    client.put_object("warehouse", "raw/events.csv", b"1,sf,9\n2,nyc,3\n3,sf,7\n")
    rows = fs.select("/raw/events.csv", projection=[2], predicate=lambda f: f[1] == "sf")
    print(f"  S3 Select pushdown: {rows} (only selected bytes left S3)")


def warehouse_on_s3() -> None:
    print("\n== Hive warehouse on S3 ==")
    client = S3Client(clock=SimulatedClock())
    fs = PrestoS3FileSystem(client, "lakehouse")
    metastore = HiveMetastore()
    metastore.create_table(
        "web", "clicks", [("user_id", BIGINT), ("dwell", DOUBLE)],
        partition_keys=[("ds", VARCHAR)],
    )
    write_hive_partition(
        metastore, fs, "web", "clicks", ["2022-06-01"],
        [Page.from_rows([BIGINT, DOUBLE], [(i % 40, float(i % 9)) for i in range(500)])],
    )
    engine = PrestoEngine(session=Session(catalog="hive", schema="web"))
    engine.register_connector("hive", HiveConnector(metastore, fs))
    result = engine.execute("SELECT count(*), sum(dwell) FROM clicks")
    print(f"  query over S3-resident Parquet: {result.rows[0]}")


def elasticity() -> None:
    print("\n== graceful expansion and shrink (section IX) ==")
    cluster = PrestoClusterSim(workers=2, slots_per_worker=2, clock=SimulatedClock())
    scaler = Autoscaler(
        cluster, AutoscalerPolicy(min_workers=2, max_workers=8), grace_period_ms=1000
    )
    # Busy hours: load arrives, the autoscaler expands.
    cluster.submit_query([400.0] * 16)
    import heapq

    time_ms, _, callback = heapq.heappop(cluster._events)
    cluster.clock.advance(time_ms - cluster.clock.now_ms())
    callback()
    decision = scaler.evaluate()
    print(f"  under load: utilization={scaler.utilization():.0%} -> scale {decision}")
    cluster.run_until_idle()
    # Quiet hours: idle, the autoscaler drains a worker gracefully.
    decision = scaler.evaluate()
    cluster.run_until_idle()
    states = [w.state.value for w in cluster.workers.values()]
    print(f"  when idle: scale {decision}; worker states: {states}")


def federation() -> None:
    print("\n== federation gateway (section VIII) ==")
    gateway = PrestoGateway()
    for name, workers in [("etl", 6), ("interactive", 4), ("shared", 8)]:
        gateway.register_cluster(
            PrestoClusterSim(workers=workers, clock=SimulatedClock(), name=name)
        )
    gateway.routing.assign_group("data-eng", "etl")
    gateway.routing.assign_user("ceo-dashboard", "interactive")
    gateway.routing.set_default("shared")

    for user, groups in [("ceo-dashboard", ()), ("bob", ("data-eng",)), ("carol", ())]:
        redirect = gateway.redirect(user, groups)
        print(f"  {user!r} -> HTTP {redirect.status_code} redirect to {redirect.cluster_name!r}")

    gateway.drain_cluster("interactive", fallback="shared")
    redirect = gateway.redirect("ceo-dashboard")
    print(f"  during maintenance drain: 'ceo-dashboard' -> {redirect.cluster_name!r} (no downtime)")


def main() -> None:
    s3_features()
    warehouse_on_s3()
    elasticity()
    federation()


if __name__ == "__main__":
    main()
