"""Geospatial analytics with the QuadTree plugin (section VI).

Reproduces the paper's trips-per-city workflow: geofences (city polygons
with hundreds of vertices) live in one table, trip destination points in
another, and the analyst writes the natural ``st_contains`` join.  The
optimizer rewrites it (figure 13) into a QuadTree spatial join; a session
property keeps the brute-force plan for comparison.

Run:  python examples/geospatial_trips.py
"""

import time

from repro import MemoryConnector, PrestoEngine, Session
from repro.core.types import BIGINT, DOUBLE, GEOMETRY, VARCHAR
from repro.geo.wkt import format_wkt, parse_wkt
from repro.workloads.geofences import generate_cities, generate_trip_points

NUM_CITIES = 60
VERTICES = 250
NUM_TRIPS = 1_500

SQL = (
    "SELECT c.city_id, count(*) AS trips "
    "FROM trips_table t "
    "JOIN city_table c ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat)) "
    "WHERE t.datestr = '2017-08-01' "
    "GROUP BY c.city_id ORDER BY trips DESC LIMIT 5"
)


def main() -> None:
    print(f"generating {NUM_CITIES} geofences x {VERTICES} vertices, {NUM_TRIPS} trips...")
    cities = generate_cities(NUM_CITIES, vertices_per_city=VERTICES)
    points = generate_trip_points(NUM_TRIPS, cities, in_city_fraction=0.65)

    connector = MemoryConnector()
    connector.create_table(
        "geo",
        "city_table",
        [("city_id", BIGINT), ("geo_shape", GEOMETRY)],
        list(cities),
    )
    connector.create_table(
        "geo",
        "trips_table",
        [("dest_lng", DOUBLE), ("dest_lat", DOUBLE), ("datestr", VARCHAR)],
        [(p.x, p.y, "2017-08-01") for p in points],
    )

    print("\n-- WKT round trip (section VI.A) --")
    wkt = format_wkt(cities[0][1])
    print(f"city 1 geofence: {wkt[:90]}... ({cities[0][1].vertex_count()} vertices)")
    assert parse_wkt(wkt).vertex_count() == cities[0][1].vertex_count()

    for use_index, label in [(True, "QuadTree (build_geo_index)"), (False, "brute force")]:
        session = Session(
            catalog="memory", schema="geo", properties={"geo_index_enabled": use_index}
        )
        engine = PrestoEngine(session=session)
        engine.register_connector("memory", connector)
        start = time.perf_counter()
        result = engine.execute(SQL)
        elapsed = time.perf_counter() - start
        print(f"\n-- {label}: {elapsed * 1000:.0f} ms --")
        for row in result.rows:
            print(f"  city {row[0]}: {row[1]} trips")

    print("\n-- the rewritten plan (figure 13) --")
    session = Session(catalog="memory", schema="geo")
    engine = PrestoEngine(session=session)
    engine.register_connector("memory", connector)
    print(engine.explain(SQL))


if __name__ == "__main__":
    main()
