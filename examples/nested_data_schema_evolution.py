"""Nested data, the new Parquet reader, and schema evolution (section V).

Walks the paper's complex-data story end to end:

1. write deeply nested trips data (a 20-field ``base`` struct, 5 levels)
   into Hive partitions with the native Parquet writer;
2. run the paper's example query with the old reader and the new reader,
   showing the work each does (values decoded, row groups skipped);
3. evolve the schema through the schema service — adding a field is
   allowed (old files read null), renaming/type changes are rejected.

Run:  python examples/nested_data_schema_evolution.py
"""

import time

from repro import PrestoEngine, Session
from repro.common.errors import SchemaEvolutionError
from repro.connectors.hive import HiveConnector
from repro.core.types import DOUBLE, RowType
from repro.metastore.metastore import HiveMetastore
from repro.metastore.schema_service import SchemaService
from repro.storage.hdfs import HdfsFileSystem
from repro.workloads.trips import TRIPS_BASE_TYPE, TRIPS_COLUMNS, load_trips_table

QUERY = (
    "SELECT base.driver_uuid FROM schemaless_mezzanine_trips_rows "
    "WHERE datestr = '2017-03-02' AND base.city_id IN (12)"
)


def main() -> None:
    metastore = HiveMetastore()
    fs = HdfsFileSystem()
    print("writing nested trips data (20-field struct, 5 nesting levels)...")
    load_trips_table(
        metastore, fs, ["2017-03-01", "2017-03-02"], rows_per_date=2_000,
        row_group_size=250, num_cities=50,
    )

    print(f"\n-- the paper's section V.C query --\n{QUERY}\n")
    for reader in ("old", "new"):
        engine = PrestoEngine(session=Session(catalog="hive", schema="rawdata"))
        engine.register_connector("hive", HiveConnector(metastore, fs, reader=reader))
        start = time.perf_counter()
        result = engine.execute(QUERY)
        elapsed = (time.perf_counter() - start) * 1000
        print(
            f"{reader:>3} reader: {elapsed:7.1f} ms, {len(result.rows)} drivers, "
            f"{result.stats.rows_scanned} rows entered the engine"
        )

    # -- schema evolution through the schema service (section V.A) ---------
    print("\n-- schema evolution rules --")
    service = SchemaService()
    service.register("trips", list(TRIPS_COLUMNS))

    # Adding a field: allowed.  Old data reads null.
    evolved_base = RowType.of(
        *[(f.name, f.type) for f in TRIPS_BASE_TYPE.fields], ("loyalty_tier", DOUBLE)
    )
    version = service.evolve(
        "trips", [("base", evolved_base)] + list(TRIPS_COLUMNS[1:])
    )
    print(f"added base.loyalty_tier -> schema version {version.version} (allowed)")

    metastore.update_table_columns(
        "rawdata",
        "schemaless_mezzanine_trips_rows",
        [("base", evolved_base)] + list(TRIPS_COLUMNS[1:]),
    )
    engine = PrestoEngine(session=Session(catalog="hive", schema="rawdata"))
    engine.register_connector("hive", HiveConnector(metastore, fs))
    result = engine.execute(
        "SELECT base.loyalty_tier FROM schemaless_mezzanine_trips_rows LIMIT 3"
    )
    print(f"querying the new field over old files -> {result.rows} (nulls, as specified)")

    # Renaming a field: rejected.
    renamed = RowType.of(
        *[
            ("driver_id" if f.name == "driver_uuid" else f.name, f.type)
            for f in evolved_base.fields
        ]
    )
    try:
        service.evolve("trips", [("base", renamed)] + list(TRIPS_COLUMNS[1:]))
    except SchemaEvolutionError as error:
        print(f"rename base.driver_uuid -> base.driver_id: REJECTED ({error})")

    # Changing a type: rejected.
    from repro.core.types import VARCHAR

    retyped = RowType.of(
        *[
            (f.name, VARCHAR if f.name == "city_id" else f.type)
            for f in evolved_base.fields
        ]
    )
    try:
        service.evolve("trips", [("base", retyped)] + list(TRIPS_COLUMNS[1:]))
    except SchemaEvolutionError as error:
        print(f"retype base.city_id bigint -> varchar: REJECTED ({error})")


if __name__ == "__main__":
    main()
