"""Unified SQL on heterogeneous storage, without data copy (section IV).

The paper's motivating scenario: "it is desirable to join Hadoop batch
data with Pinot real time data to get fresh Uber Eats reports."  This
example stands up four storage systems —

- a Hive warehouse (trips history in the Parquet-like format on HDFS),
- a MySQL server (restaurant dimension data),
- a Druid cluster (real-time order events, minutes old),
- an Elasticsearch cluster (service health logs),

registers a connector for each, and answers one federated question with a
single SQL query — no copy pipelines.  Watch the EXPLAIN output: the
predicate, projection, and aggregation pushdowns land in each connector's
table handle.

Run:  python examples/federated_analytics.py
"""

from repro import PrestoEngine, Session
from repro.connectors.elasticsearch import ElasticsearchCluster, ElasticsearchConnector
from repro.connectors.hive import HiveConnector, write_hive_partition
from repro.connectors.mysql import MySqlConnector, MySqlServer
from repro.connectors.realtime import DruidCluster, DruidConnector
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.metastore.metastore import HiveMetastore
from repro.storage.hdfs import HdfsFileSystem


def build_hive_warehouse():
    """Batch layer: completed orders, partitioned by day."""
    metastore = HiveMetastore()
    fs = HdfsFileSystem()
    metastore.create_table(
        "eats",
        "completed_orders",
        [("restaurant_id", BIGINT), ("amount", DOUBLE)],
        partition_keys=[("datestr", VARCHAR)],
    )
    for date, orders in {
        "2022-01-01": [(1, 25.0), (2, 14.0), (1, 31.5), (3, 9.0)],
        "2022-01-02": [(2, 22.0), (3, 18.0), (3, 12.5), (1, 40.0)],
    }.items():
        write_hive_partition(
            metastore,
            fs,
            "eats",
            "completed_orders",
            [date],
            [Page.from_rows([BIGINT, DOUBLE], orders)],
        )
    return HiveConnector(metastore, fs)


def build_mysql():
    """Transactional layer: the restaurant dimension."""
    server = MySqlServer()
    server.create_table(
        "eats",
        "restaurants",
        [("restaurant_id", BIGINT), ("name", VARCHAR), ("city", VARCHAR)],
        [
            (1, "Taqueria Uno", "san_francisco"),
            (2, "Pho Palace", "san_francisco"),
            (3, "Bagel Barn", "new_york"),
        ],
    )
    return MySqlConnector(server)


def build_druid():
    """Real-time layer: order events from the last few minutes."""
    cluster = DruidCluster(nodes=4)
    cluster.create_datasource(
        "live_orders", [("restaurant_id", BIGINT), ("status", VARCHAR), ("amount", DOUBLE)]
    )
    cluster.add_segment(
        "live_orders",
        [
            (1, "placed", 19.0),
            (1, "placed", 27.5),
            (2, "canceled", 11.0),
            (3, "placed", 16.0),
            (3, "placed", 8.5),
        ],
    )
    return DruidConnector(cluster)


def build_elasticsearch():
    """Operational layer: delivery service logs."""
    cluster = ElasticsearchCluster()
    cluster.create_index(
        "delivery_logs", [("restaurant_id", BIGINT), ("level", VARCHAR), ("message", VARCHAR)]
    )
    cluster.index_documents(
        "delivery_logs",
        [
            {"restaurant_id": 1, "level": "info", "message": "courier assigned"},
            {"restaurant_id": 2, "level": "error", "message": "courier timeout"},
            {"restaurant_id": 2, "level": "error", "message": "retry failed"},
            {"restaurant_id": 3, "level": "info", "message": "delivered"},
        ],
    )
    return ElasticsearchConnector(cluster)


def main() -> None:
    engine = PrestoEngine(session=Session(catalog="hive", schema="eats"))
    engine.register_connector("hive", build_hive_warehouse())
    engine.register_connector("mysql", build_mysql())
    engine.register_connector("druid", build_druid())
    engine.register_connector("es", build_elasticsearch())

    print("-- the fresh Uber Eats report: batch history + live orders + dimension --")
    sql = (
        "SELECT r.name, "
        "       sum(h.amount) AS batch_revenue, "
        "       sum(l.amount) AS live_revenue "
        "FROM mysql.eats.restaurants r "
        "JOIN hive.eats.completed_orders h ON r.restaurant_id = h.restaurant_id "
        "JOIN druid.druid.live_orders l ON r.restaurant_id = l.restaurant_id "
        "WHERE l.status = 'placed' "
        "GROUP BY r.name ORDER BY 2 DESC"
    )
    for row in engine.execute(sql).rows:
        print(row)

    print("\n-- which restaurants had delivery errors today? (Elasticsearch join) --")
    sql = (
        "SELECT r.name, count(*) AS errors "
        "FROM es.default.delivery_logs d "
        "JOIN mysql.eats.restaurants r ON d.restaurant_id = r.restaurant_id "
        "WHERE d.level = 'error' GROUP BY r.name"
    )
    for row in engine.execute(sql).rows:
        print(row)

    print("\n-- aggregation pushdown in action (figure 2): EXPLAIN --")
    print(
        engine.explain(
            "SELECT restaurant_id, max(amount) FROM druid.druid.live_orders "
            "GROUP BY restaurant_id"
        )
    )


if __name__ == "__main__":
    main()
