"""Quickstart: run SQL against in-memory tables with the repro engine.

Demonstrates the basic engine surface of section III: SQL text goes in,
the coordinator pipeline (parse → analyze → optimize → execute) runs, and
rows come out — with EXPLAIN showing the optimized plan.

Run:  python examples/quickstart.py
"""

from repro import MemoryConnector, PrestoEngine, Session
from repro.core.types import BIGINT, DOUBLE, VARCHAR


def main() -> None:
    connector = MemoryConnector()
    connector.create_table(
        "demo",
        "orders",
        [("order_id", BIGINT), ("city", VARCHAR), ("amount", DOUBLE)],
        [
            (1, "san_francisco", 12.50),
            (2, "new_york", 8.25),
            (3, "san_francisco", 43.10),
            (4, "chicago", 5.00),
            (5, "new_york", 21.75),
            (6, "san_francisco", 9.99),
        ],
    )
    connector.create_table(
        "demo",
        "cities",
        [("city", VARCHAR), ("state", VARCHAR)],
        [("san_francisco", "CA"), ("new_york", "NY"), ("chicago", "IL")],
    )

    engine = PrestoEngine(session=Session(catalog="memory", schema="demo"))
    engine.register_connector("memory", connector)

    print("-- simple aggregation --")
    result = engine.execute(
        "SELECT city, count(*) AS orders, sum(amount) AS revenue "
        "FROM orders GROUP BY city ORDER BY revenue DESC"
    )
    for row in result.rows:
        print(row)

    print("\n-- join with a HAVING clause --")
    result = engine.execute(
        "SELECT c.state, sum(o.amount) AS revenue "
        "FROM orders o JOIN cities c ON o.city = c.city "
        "GROUP BY c.state HAVING sum(o.amount) > 10 ORDER BY 2 DESC"
    )
    for row in result.rows:
        print(row)

    print("\n-- EXPLAIN: the optimized plan --")
    print(engine.explain("SELECT city FROM orders WHERE amount > 10 LIMIT 2"))

    print("\n-- execution statistics --")
    result = engine.execute("SELECT count(*) FROM orders")
    print(f"count(*): {result.rows[0][0]}  stats: {result.stats.as_dict()}")


if __name__ == "__main__":
    main()
