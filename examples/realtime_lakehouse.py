"""Real-time to lakehouse: Kafka → Iceberg micro-batches → SQL, with the
Spark fallback for oversized joins.

Combines the paper's newer surfaces: the Kafka connector tails a topic
with log-seek pushdown; micro-batches land in an Iceberg-style table whose
snapshots give time travel; and a join too big for Presto's memory limit
automatically translates to the batch engine (section XII.C).

Run:  python examples/realtime_lakehouse.py
"""

from repro import PrestoEngine, Session
from repro.common.clock import SimulatedClock
from repro.connectors.kafka import KafkaBroker, KafkaConnector
from repro.connectors.lakehouse import IcebergConnector, IcebergTable
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.spark import BatchSqlEngine, FallbackQueryRunner
from repro.storage.hdfs import HdfsFileSystem


def main() -> None:
    clock = SimulatedClock()
    broker = KafkaBroker(clock=clock)
    broker.create_topic(
        "order_events", [("order_id", BIGINT), ("city", VARCHAR), ("amount", DOUBLE)]
    )
    for i in range(40):
        clock.advance(500)
        broker.produce(
            "order_events",
            (i, f"city{i % 3}", float(i)),
            timestamp_ms=int(clock.now_ms()),
        )

    fs = HdfsFileSystem()
    lake_table = IcebergTable(
        fs, "/lake/orders", [("order_id", BIGINT), ("city", VARCHAR), ("amount", DOUBLE)]
    )
    iceberg = IcebergConnector()
    iceberg.register_table("orders", lake_table)

    engine = PrestoEngine(session=Session(catalog="kafka", schema="kafka"))
    engine.register_connector("kafka", KafkaConnector(broker))
    engine.register_connector("iceberg", iceberg)

    print("-- tail the stream (timestamp pushdown = log seek) --")
    tail = engine.execute(
        "SELECT order_id, city FROM order_events "
        "WHERE _timestamp_ms >= 19000 ORDER BY order_id"
    )
    print(f"  last {len(tail.rows)} events: {tail.rows[:3]} ...")

    print("\n-- micro-batch the stream into the lakehouse --")
    for lower, upper in [(0, 10_000), (10_000, 20_000)]:
        batch = engine.execute(
            "SELECT order_id, city, amount FROM order_events "
            f"WHERE _timestamp_ms >= {lower + 1} AND _timestamp_ms <= {upper}"
        )
        lake_table.append(batch.rows)
        snapshot = lake_table.current_snapshot()
        print(f"  committed snapshot {snapshot.snapshot_id}: {snapshot.row_count} rows total")

    print("\n-- query the lake, then time travel --")
    current = engine.execute("SELECT count(*), sum(amount) FROM iceberg.lake.orders")
    first = engine.execute('SELECT count(*) FROM iceberg.lake."orders$snapshot=1"')
    print(f"  current snapshot: {current.rows[0]}; snapshot 1 had {first.rows[0][0]} rows")

    print("\n-- a join too big for Presto falls back to the batch engine --")
    engine.max_build_rows = 10  # tiny memory budget to force the failure
    runner = FallbackQueryRunner(
        engine, BatchSqlEngine(engine.catalog, engine.session)
    )
    routed = runner.execute(
        "SELECT count(*) FROM iceberg.lake.orders a "
        "JOIN iceberg.lake.orders b ON a.city = b.city"
    )
    print(
        f"  served by {routed.engine!r}: {routed.result.rows[0][0]} joined rows "
        f"(fallbacks so far: {runner.fallbacks})"
    )


if __name__ == "__main__":
    main()
