"""Streaming lakehouse: Kafka → exactly-once pipeline → hybrid SQL, with
the Spark fallback for oversized joins.

Combines the paper's newer surfaces end to end: the ingestion pipeline
tails a Kafka topic into the realtime store, the compactor seals the
tail into Iceberg snapshots whose metadata carries the offset watermark
(so every record is visible exactly once — never from both the tail and
the lake), hybrid queries union the two at a consistent watermark with
time travel to any earlier cut, a materialized view answers aggregates
straight from its incrementally-refreshed state, and a join too big for
Presto's memory limit automatically translates to the batch engine
(section XII.C).

Run:  python examples/realtime_lakehouse.py
"""

from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.realtime import StreamingLakehouse, ViewAggregate, watermark_table_name
from repro.spark import BatchSqlEngine, FallbackQueryRunner


def main() -> None:
    lakehouse = StreamingLakehouse(
        fields=[("order_id", BIGINT), ("city", VARCHAR), ("amount", DOUBLE)],
        topic="order_events",
        poll_interval_ms=250,
        compaction_interval_ms=5_000,
    )
    view = lakehouse.create_materialized_view(
        "city_revenue",
        ["city"],
        [ViewAggregate("count", None, "orders"), ViewAggregate("sum", "amount", "revenue")],
    )

    print("-- produce, ingest, and compact on the simulated clock --")
    for i in range(40):
        lakehouse.produce((i, f"city{i % 3}", float(i)), timestamp_ms=i * 500)
    lakehouse.pipeline.run_for(12_000)  # several polls, two compaction cycles
    for i in range(40, 52):
        lakehouse.produce((i, f"city{i % 3}", float(i)), timestamp_ms=20_000 + i)
    lakehouse.pipeline.run_for(300)  # ingested into the tail, not yet sealed

    table = lakehouse.table
    print(
        f"  committed watermark {table.committed.encode()}: "
        f"{table.sealed_watermark().total()} rows sealed in "
        f"{len(lakehouse.lake.current_snapshot().files)} lake files, "
        f"{table.tail_row_count()} still in the tail"
    )

    engine = lakehouse.make_engine()
    print("\n-- one hybrid query spans the lake and the live tail --")
    fresh = engine.execute(
        "SELECT count(*), max(order_id), sum(amount) FROM order_events"
    )
    print(f"  count/max/sum over all 52 events: {fresh.rows[0]}")

    print("\n-- time travel: pin the read to the sealed watermark --")
    sealed_name = watermark_table_name("order_events", table.sealed_watermark())
    sealed = engine.execute(f'SELECT count(*) FROM "{sealed_name}"')
    print(
        f"  at watermark {table.sealed_watermark().encode()} the table had "
        f"{sealed.rows[0][0]} rows (lake only, no tail)"
    )

    print("\n-- the materialized view answers the aggregate directly --")
    view.refresh()
    pinned = watermark_table_name("order_events", view.watermark)
    sql = f'SELECT city, count(*), sum(amount) FROM "{pinned}" GROUP BY city ORDER BY city'
    plan = "\n".join(row[0] for row in engine.execute("EXPLAIN " + sql).rows)
    answered_by = "city_revenue" if "city_revenue" in plan else "base table"
    for city, orders, revenue in engine.execute(sql).rows:
        print(f"  {city}: {orders} orders, {revenue:.1f} revenue  [from {answered_by}]")

    print("\n-- a join too big for Presto falls back to the batch engine --")
    engine.max_build_rows = 10  # tiny memory budget to force the failure
    runner = FallbackQueryRunner(engine, BatchSqlEngine(engine.catalog, engine.session))
    routed = runner.execute(
        "SELECT count(*) FROM lake.lake.order_events a "
        "JOIN lake.lake.order_events b ON a.city = b.city"
    )
    print(
        f"  served by {routed.engine!r}: {routed.result.rows[0][0]} joined rows "
        f"(fallbacks so far: {runner.fallbacks})"
    )


if __name__ == "__main__":
    main()
