"""Observability: dump a TPC-H query's span tree and the metrics registry.

Every query the engine runs produces a deterministic span tree
(`QueryResult.trace`) stamped from the simulated clock — gateway/cluster
hops, stages, task attempts, operators, exchanges, cache and storage
accesses — and every component reports into one labeled metrics registry
(`engine.metrics`).  This example runs a TPC-H-style aggregation, prints
the critical path, and dumps both as JSON (the same payloads
``python -m repro --trace --metrics`` emits).

Run:  python examples/observability_trace.py
"""

from repro import MemoryConnector, PrestoEngine, Session
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem

TPCH_Q1 = (
    "SELECT returnflag, linestatus, sum(quantity) AS sum_qty, "
    "avg(extendedprice) AS avg_price, count(*) AS count_order "
    "FROM lineitem GROUP BY returnflag, linestatus "
    "ORDER BY returnflag, linestatus"
)


def main() -> None:
    connector = MemoryConnector(split_size=50)
    connector.create_table("tpch", "lineitem", LINEITEM_COLUMNS, generate_lineitem(500))
    engine = PrestoEngine(session=Session(catalog="memory", schema="tpch"))
    engine.register_connector("memory", connector)

    result = engine.execute(TPCH_Q1)
    print("-- rows --")
    for row in result.rows:
        print(row)

    trace = result.trace
    stats = result.stats
    print("\n-- span tree summary --")
    print(f"spans: {len(trace.spans)}  simulated: {stats.simulated_ms:.2f} ms")
    for name in ("query", "stage", "task", "attempt", "operator", "exchange", "split"):
        print(f"  {name:>8}: {len(trace.find(name))}")

    print("\n-- critical path (sums exactly to the simulated time) --")
    query_span = trace.find("query")[-1]
    for entry in trace.critical_path(query_span):
        attrs = ", ".join(f"{k}={v}" for k, v in sorted(entry.span.attributes.items()))
        print(f"  {entry.span.name} [{attrs}]: {entry.contribution_ms:.2f} ms")

    print("\n-- trace JSON (first lines; byte-identical across runs) --")
    print("\n".join(trace.to_json(indent=2).splitlines()[:14]))

    print("\n-- metrics snapshot (counters reconcile with QueryStats) --")
    metrics = engine.metrics
    query_id = stats.query_id
    print(f"tasks run:      {metrics.total('scheduler_tasks_run_total', query_id=query_id)}"
          f"  (stats.tasks_total = {stats.tasks_total})")
    print(f"rows exchanged: {metrics.total('exchange_rows_total', query_id=query_id)}"
          f"  (stats.rows_exchanged = {stats.rows_exchanged})")
    print("\n".join(metrics.to_json(indent=2).splitlines()[:16]))


if __name__ == "__main__":
    main()
