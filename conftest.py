"""Pytest root conftest: make ``src`` importable without installation.

The canonical workflow is ``pip install -e .``; this fallback keeps tests
and benchmarks runnable in environments where the editable install is not
present (e.g. a fresh checkout).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
