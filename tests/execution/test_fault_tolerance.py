"""Fault injection and task-level retries in staged execution.

The acceptance bar: with a seeded injector at a 10% task-failure rate, a
TPC-H staged query returns results identical to the zero-fault run,
``tasks_retried > 0``, and two runs with the same seed produce
byte-identical ``task_records``; a USER_ERROR is never retried while an
INTERNAL_ERROR is retried up to the bound then surfaces with its
category.
"""

import pytest

from repro.common.errors import (
    ErrorCategory,
    InjectedFaultError,
    PrestoError,
    SemanticError,
    TaskTimeoutError,
)
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, VARCHAR
from repro.execution.faults import FaultInjector
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem

from tests.obs.helpers import assert_query_observable

TPCH_SQL = (
    "SELECT returnflag, linestatus, sum(quantity), avg(extendedprice), count(*) "
    "FROM lineitem GROUP BY returnflag, linestatus ORDER BY returnflag, linestatus"
)


def make_engine(**kwargs):
    connector = MemoryConnector(split_size=31)
    connector.create_table("db", "lineitem", LINEITEM_COLUMNS, generate_lineitem(250))
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **kwargs)
    engine.register_connector("memory", connector)
    return engine


def normalize(rows):
    return [
        tuple(float(f"{v:.10g}") if isinstance(v, float) else v for v in row)
        for row in rows
    ]


class TestErrorTaxonomy:
    def test_categories_and_retryability(self):
        assert ErrorCategory.USER_ERROR.retryable is False
        assert ErrorCategory.INSUFFICIENT_RESOURCES.retryable is False
        assert ErrorCategory.INTERNAL_ERROR.retryable is True
        assert ErrorCategory.EXTERNAL.retryable is True

    def test_error_classes_carry_categories(self):
        from repro.common.errors import (
            ExecutionError,
            InsufficientResourcesError,
            StorageError,
            SyntaxError_,
        )

        assert SyntaxError_("bad").category is ErrorCategory.USER_ERROR
        assert SemanticError("bad").category is ErrorCategory.USER_ERROR
        assert ExecutionError("boom").category is ErrorCategory.INTERNAL_ERROR
        assert StorageError("s3").category is ErrorCategory.EXTERNAL
        assert InsufficientResourcesError().category is (
            ErrorCategory.INSUFFICIENT_RESOURCES
        )
        assert not InsufficientResourcesError().retryable
        assert ExecutionError("boom").retryable

    def test_injected_fault_takes_configured_category(self):
        error = InjectedFaultError("x", category=ErrorCategory.EXTERNAL)
        assert error.category is ErrorCategory.EXTERNAL
        assert error.retryable


class TestFaultInjector:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(task_failure_rate=1.5)

    def test_decisions_are_deterministic(self):
        a = FaultInjector(seed=11, task_failure_rate=0.3)
        b = FaultInjector(seed=11, task_failure_rate=0.3)
        decisions_a = [a.should_fail_task("q", 0, t, 1) for t in range(200)]
        decisions_b = [b.should_fail_task("q", 0, t, 1) for t in range(200)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_seed_changes_pattern(self):
        a = FaultInjector(seed=1, task_failure_rate=0.3)
        b = FaultInjector(seed=2, task_failure_rate=0.3)
        assert [a.should_fail_task("q", 0, t, 1) for t in range(200)] != [
            b.should_fail_task("q", 0, t, 1) for t in range(200)
        ]

    def test_rate_roughly_respected(self):
        injector = FaultInjector(seed=5, task_failure_rate=0.2)
        failures = sum(
            injector.should_fail_task("q", 0, t, 1) for t in range(2000)
        )
        assert 300 < failures < 500  # ~400 expected

    def test_attempt_number_changes_outcome(self):
        # A doomed attempt is usually followed by a surviving retry: the
        # attempt number is hashed into the decision.
        injector = FaultInjector(seed=3, task_failure_rate=0.2)
        doomed = [
            (t, a)
            for t in range(50)
            for a in (1, 2)
            if injector.should_fail_task("q", 0, t, a)
        ]
        failed_both = {t for t, a in doomed if a == 1} & {t for t, a in doomed if a == 2}
        assert doomed and len(failed_both) < len(doomed)

    def test_storage_injector_plugs_into_s3(self):
        from repro.storage.s3 import S3Client, S3ServerError

        injector = FaultInjector(seed=9, storage_failure_rate=1.0)
        client = S3Client(failure_injector=injector.storage_failure_injector())
        with pytest.raises(S3ServerError):
            client.put_object("b", "k", b"data")
        assert injector.storage_requests_failed == 1
        assert client.stats.failed_requests == 1


class TestTaskRetries:
    def test_results_identical_to_zero_fault_run(self):
        # Differential: 10% injected task failures with retries on must
        # not change a single row vs the direct oracle.
        faulty = make_engine(
            fault_injector=FaultInjector(seed=7, task_failure_rate=0.1)
        )
        clean = make_engine()
        result = faulty.execute(TPCH_SQL)
        oracle = clean.execute_direct(TPCH_SQL)
        assert normalize(result.rows) == normalize(oracle.rows)
        assert result.stats.tasks_retried > 0
        assert result.stats.tasks_failed == 0
        # The retried run's span tree still reconciles with its stats.
        assert_query_observable(result, faulty.metrics)

    def test_same_seed_produces_identical_task_records(self):
        first = make_engine(
            fault_injector=FaultInjector(seed=7, task_failure_rate=0.1)
        ).execute(TPCH_SQL)
        second = make_engine(
            fault_injector=FaultInjector(seed=7, task_failure_rate=0.1)
        ).execute(TPCH_SQL)
        assert first.stats.task_records == second.stats.task_records
        assert first.stats.simulated_ms == second.stats.simulated_ms

    def test_different_seed_changes_retry_pattern(self):
        runs = [
            make_engine(
                fault_injector=FaultInjector(seed=seed, task_failure_rate=0.25)
            )
            .execute(TPCH_SQL)
            .stats.tasks_retried
            for seed in range(4)
        ]
        assert len(set(runs)) > 1

    def test_retried_tasks_record_attempts_and_backoff(self):
        engine = make_engine(
            fault_injector=FaultInjector(seed=7, task_failure_rate=0.1),
            retry_backoff_ms=100.0,
        )
        result = engine.execute(TPCH_SQL)
        retried = [r for r in result.stats.task_records if r["attempts"] > 1]
        assert retried
        clean = make_engine().execute(TPCH_SQL)
        # Each retry charges its exponential backoff to simulated time.
        assert result.stats.simulated_ms > clean.stats.simulated_ms
        for record in retried:
            assert record["failed"] is False
            assert record["sim_ms"] >= 100.0

    def test_internal_error_retried_to_bound_then_surfaces(self):
        injector = FaultInjector(seed=1, task_failure_rate=1.0)
        engine = make_engine(fault_injector=injector, max_task_retries=3)
        with pytest.raises(InjectedFaultError) as excinfo:
            engine.execute(TPCH_SQL)
        # Surfaces with its category after 1 original + 3 retried attempts.
        assert excinfo.value.category is ErrorCategory.INTERNAL_ERROR
        assert injector.tasks_failed == 4

    def test_user_error_never_retried(self):
        engine = make_engine(
            fault_injector=FaultInjector(
                seed=1,
                task_failure_rate=1.0,
                task_error_category=ErrorCategory.USER_ERROR,
            )
        )
        injector = engine.fault_injector
        with pytest.raises(InjectedFaultError) as excinfo:
            engine.execute(TPCH_SQL)
        assert excinfo.value.category is ErrorCategory.USER_ERROR
        # Exactly one doomed attempt: fail fast, no retries.
        assert injector.tasks_failed == 1

    def test_split_faults_are_retryable_external(self):
        engine = make_engine(
            fault_injector=FaultInjector(seed=3, split_failure_rate=0.1)
        )
        result = engine.execute(TPCH_SQL)
        oracle = make_engine().execute_direct(TPCH_SQL)
        assert normalize(result.rows) == normalize(oracle.rows)
        assert engine.fault_injector.splits_failed > 0
        assert result.stats.tasks_retried > 0
        assert_query_observable(result, engine.metrics)

    def test_task_timeout_is_bounded_and_surfaces(self):
        # A 0.5ms budget is below the 1ms per-task overhead, so every
        # attempt deterministically times out; the retry bound stops the
        # loop instead of spinning forever.
        engine = make_engine(task_timeout_ms=0.5, max_task_retries=2)
        with pytest.raises(TaskTimeoutError):
            engine.execute(TPCH_SQL)

    def test_generous_timeout_is_harmless(self):
        engine = make_engine(task_timeout_ms=10_000.0)
        result = engine.execute(TPCH_SQL)
        assert result.stats.tasks_failed == 0
        assert result.stats.tasks_retried == 0


class TestFailureAccounting:
    def test_exhausted_retries_counted_as_failed(self):
        from repro.execution.context import ExecutionContext, QueryStats
        from repro.execution.scheduler import StageScheduler
        from repro.planner.fragmenter import Fragmenter

        engine = make_engine()
        plan = engine.plan(TPCH_SQL)
        ctx = ExecutionContext(
            catalog=engine.catalog,
            session=engine.session,
            registry=engine.registry,
            stats=QueryStats(query_id="query-x"),
        )
        scheduler = StageScheduler(
            ctx,
            fault_injector=FaultInjector(seed=1, task_failure_rate=1.0),
            max_task_retries=2,
        )
        with pytest.raises(InjectedFaultError):
            scheduler.run(Fragmenter().fragment(plan))
        assert ctx.stats.tasks_failed == 1
        assert ctx.stats.tasks_retried == 2
        failed = [r for r in ctx.stats.task_records if r["failed"]]
        assert len(failed) == 1
        assert failed[0]["attempts"] == 3  # 1 original + 2 retries
        assert failed[0]["rows_out"] == 0

    def test_explain_analyze_renders_retries(self):
        engine = make_engine(
            fault_injector=FaultInjector(seed=7, task_failure_rate=0.1)
        )
        result = engine.execute(f"EXPLAIN ANALYZE {TPCH_SQL}")
        text = "\n".join(row[0] for row in result.rows)
        assert "retried" in text and "failed" in text

    def test_stats_as_dict_includes_fault_counters(self):
        engine = make_engine()
        stats = engine.execute(TPCH_SQL).stats.as_dict()
        assert stats["tasks_failed"] == 0
        assert stats["tasks_retried"] == 0
        assert stats["query_id"].startswith("query-")

    def test_query_ids_increment_per_query(self):
        engine = make_engine()
        first = engine.execute(TPCH_SQL).stats.query_id
        second = engine.execute(TPCH_SQL).stats.query_id
        assert first != second
