"""Tests for the SQL shell."""

import io

import pytest

from repro.cli import build_demo_engine, main, render_result
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, VARCHAR
from repro.execution.engine import PrestoEngine, QueryResult
from repro.execution.context import QueryStats
from repro.planner.analyzer import Session


def tiny_engine():
    connector = MemoryConnector()
    connector.create_table("db", "t", [("k", BIGINT), ("s", VARCHAR)], [(1, "a"), (2, None)])
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


class TestExecuteFlag:
    def test_single_statement(self):
        out = io.StringIO()
        code = main(["-e", "SELECT k FROM t ORDER BY k"], engine=tiny_engine(), stdout=out)
        assert code == 0
        text = out.getvalue()
        assert "k" in text and "(2 rows)" in text

    def test_multiple_statements(self):
        out = io.StringIO()
        code = main(
            ["-e", "SELECT count(*) FROM t", "-e", "SHOW CATALOGS"],
            engine=tiny_engine(),
            stdout=out,
        )
        assert code == 0
        assert "memory" in out.getvalue()

    def test_error_returns_nonzero(self):
        out = io.StringIO()
        code = main(["-e", "SELECT nope FROM t"], engine=tiny_engine(), stdout=out)
        assert code == 1
        assert "Query failed" in out.getvalue()

    def test_null_rendering(self):
        out = io.StringIO()
        main(["-e", "SELECT s FROM t ORDER BY k"], engine=tiny_engine(), stdout=out)
        assert "NULL" in out.getvalue()


class TestInteractive:
    def test_reads_until_semicolon_and_quits(self):
        out = io.StringIO()
        stdin = io.StringIO("SELECT\ncount(*) FROM t;\nquit;\n")
        code = main([], engine=tiny_engine(), stdin=stdin, stdout=out)
        assert code == 0
        assert "(1 row)" in out.getvalue()

    def test_eof_exits(self):
        out = io.StringIO()
        code = main([], engine=tiny_engine(), stdin=io.StringIO(""), stdout=out)
        assert code == 0

    def test_error_does_not_kill_shell(self):
        out = io.StringIO()
        stdin = io.StringIO("SELECT nope FROM t;\nSELECT count(*) FROM t;\n")
        main([], engine=tiny_engine(), stdin=stdin, stdout=out)
        text = out.getvalue()
        assert "Query failed" in text
        assert "(1 row)" in text


class TestDemoEngine:
    def test_demo_warehouse_queryable(self):
        engine = build_demo_engine()
        assert engine.execute("SELECT count(*) FROM trips").rows == [(1000,)]
        result = engine.execute(
            "SELECT c.region, count(*) FROM trips t "
            "JOIN mysql.dim.cities c ON t.base.city_id = c.city_id GROUP BY c.region"
        )
        assert sum(r[1] for r in result.rows) == 1000


class TestRenderResult:
    def test_alignment(self):
        out = io.StringIO()
        render_result(
            QueryResult(["name", "n"], [("a", 1), ("long-name", 22)], QueryStats()), out
        )
        lines = out.getvalue().splitlines()
        assert lines[0].startswith("name")
        assert "(2 rows)" in lines[-1]

    def test_empty(self):
        out = io.StringIO()
        render_result(QueryResult(["x"], [], QueryStats()), out)
        assert "(0 rows)" in out.getvalue()
