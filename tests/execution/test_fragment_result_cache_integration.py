"""Fragment result cache wired into the engine's scan path (section VII)."""

import pytest

from repro.cache.fragment_result_cache import FragmentResultCache
from repro.connectors.hive import HiveConnector, write_hive_partition
from repro.connectors.memory import MemoryConnector
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.metastore.metastore import HiveMetastore
from repro.planner.analyzer import Session
from repro.storage.hdfs import HdfsFileSystem


def memory_engine():
    connector = MemoryConnector(split_size=5)
    connector.create_table(
        "db", "t", [("k", BIGINT), ("v", DOUBLE)], [(i % 3, float(i)) for i in range(20)]
    )
    engine = PrestoEngine(
        session=Session(catalog="memory", schema="db"),
        fragment_result_cache=FragmentResultCache(),
    )
    engine.register_connector("memory", connector)
    return engine, connector


class TestDashboardQueries:
    def test_repeat_query_served_from_cache(self):
        engine, _ = memory_engine()
        first = engine.execute("SELECT k, sum(v) FROM t GROUP BY k")
        assert first.stats.fragment_cache_hits == 0
        second = engine.execute("SELECT k, sum(v) FROM t GROUP BY k")
        assert second.stats.fragment_cache_hits == 4  # all splits cached
        assert sorted(first.rows) == sorted(second.rows)

    def test_different_query_shares_scan_fragments(self):
        engine, _ = memory_engine()
        engine.execute("SELECT k, sum(v) FROM t GROUP BY k")
        # A different aggregation over the same scan fragment (same pruned
        # columns k, v) still hits: the cache key is the scan fragment,
        # not the whole query.
        result = engine.execute("SELECT k, max(v) FROM t GROUP BY k")
        assert result.stats.fragment_cache_hits == 4

    def test_insert_invalidates_via_data_version(self):
        engine, connector = memory_engine()
        engine.execute("SELECT count(*) FROM t")
        connector.insert("db", "t", [(9, 99.0)])
        result = engine.execute("SELECT count(*) FROM t")
        assert result.rows == [(21,)]  # fresh data, no stale cache hit
        assert result.stats.fragment_cache_hits == 0

    def test_projection_changes_miss(self):
        engine, _ = memory_engine()
        engine.execute("SELECT sum(v) FROM t")
        result = engine.execute("SELECT count(DISTINCT k) FROM t")
        # Different required columns → different fragment → miss.
        assert result.rows == [(3,)]


class TestHiveDataVersion:
    def test_rewritten_partition_not_served_stale(self):
        metastore = HiveMetastore()
        fs = HdfsFileSystem()
        metastore.create_table(
            "db", "t", [("v", DOUBLE)], partition_keys=[("ds", VARCHAR)]
        )
        write_hive_partition(
            metastore, fs, "db", "t", ["d1"],
            [Page.from_rows([DOUBLE], [(1.0,), (2.0,)])],
        )
        engine = PrestoEngine(
            session=Session(catalog="hive", schema="db"),
            fragment_result_cache=FragmentResultCache(),
        )
        engine.register_connector("hive", HiveConnector(metastore, fs))
        assert engine.execute("SELECT sum(v) FROM t").rows == [(3.0,)]

        # Rewrite the partition file with new contents and a newer mtime.
        partition = metastore.get_partition("db", "t", ["d1"])
        from repro.formats.parquet.schema import ParquetSchema
        from repro.formats.parquet.writer_native import NativeParquetWriter

        fs.clock.advance(1_000)
        blob = NativeParquetWriter(ParquetSchema([("v", DOUBLE)])).write_pages(
            [Page.from_rows([DOUBLE], [(10.0,)])]
        )
        fs.create(f"{partition.location}/part-00000.parquet", blob)
        result = engine.execute("SELECT sum(v) FROM t")
        assert result.rows == [(10.0,)]
        assert result.stats.fragment_cache_hits == 0
