"""Oracle property test: the engine agrees with a naive Python reference.

Random flat tables and randomly generated filter/aggregate queries are
executed both by the full engine (parser, optimizer, vectorized operators,
connector splits) and by a dozen-line Python reference implementation.
This checks end-to-end *semantics*, complementing the optimizer
equivalence test, which only checks internal consistency.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, BOOLEAN, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-20, 20)),
        st.sampled_from(["a", "b", "c", None]),
        st.one_of(st.none(), st.booleans()),
    ),
    max_size=30,
)


def make_engine(rows):
    connector = MemoryConnector(split_size=7)
    connector.create_table(
        "db", "t", [("k", BIGINT), ("s", VARCHAR), ("f", BOOLEAN)], rows
    )
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


def reference_filter(rows, predicate):
    return [row for row in rows if predicate(row) is True]


@st.composite
def simple_predicates(draw):
    """(SQL text, Python reference) pairs over columns k, s, f."""
    kind = draw(st.integers(0, 4))
    if kind == 0:
        bound = draw(st.integers(-25, 25))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]))
        python_op = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
        }[op]
        return (
            f"k {op} {bound}",
            lambda row: None if row[0] is None else python_op(row[0], bound),
        )
    if kind == 1:
        values = draw(st.lists(st.sampled_from(["a", "b", "c", "z"]), min_size=1, max_size=3))
        rendered = ", ".join(f"'{v}'" for v in values)
        return (
            f"s IN ({rendered})",
            lambda row: None if row[1] is None else row[1] in values,
        )
    if kind == 2:
        return ("f", lambda row: row[2])
    if kind == 3:
        return ("k IS NULL", lambda row: row[0] is None)
    return ("s IS NOT NULL", lambda row: row[1] is not None)


@given(rows_strategy, simple_predicates())
@settings(max_examples=120, deadline=None)
def test_filter_matches_reference(rows, predicate_pair):
    sql_predicate, python_predicate = predicate_pair
    engine = make_engine(rows)
    result = engine.execute(f"SELECT k, s, f FROM t WHERE {sql_predicate}")
    expected = reference_filter(rows, python_predicate)
    assert sorted(map(repr, result.rows)) == sorted(map(repr, expected))


@given(rows_strategy, simple_predicates())
@settings(max_examples=80, deadline=None)
def test_aggregates_match_reference(rows, predicate_pair):
    sql_predicate, python_predicate = predicate_pair
    engine = make_engine(rows)
    result = engine.execute(
        f"SELECT count(*), count(k), sum(k), min(k), max(k) FROM t WHERE {sql_predicate}"
    )
    kept = reference_filter(rows, python_predicate)
    ks = [row[0] for row in kept if row[0] is not None]
    expected = (
        len(kept),
        len(ks),
        sum(ks) if ks else None,
        min(ks) if ks else None,
        max(ks) if ks else None,
    )
    assert result.rows == [expected]


@given(rows_strategy)
@settings(max_examples=80, deadline=None)
def test_group_by_matches_reference(rows):
    engine = make_engine(rows)
    result = engine.execute("SELECT s, count(*), sum(k) FROM t GROUP BY s")
    expected: dict = {}
    for k, s, f in rows:
        count, total = expected.get(s, (0, None))
        if k is not None:
            total = k if total is None else total + k
        expected[s] = (count + 1, total)
    got = {row[0]: (row[1], row[2]) for row in result.rows}
    assert got == expected


@given(rows_strategy, st.integers(0, 10))
@settings(max_examples=60, deadline=None)
def test_order_limit_matches_reference(rows, limit):
    engine = make_engine(rows)
    result = engine.execute(f"SELECT k FROM t ORDER BY k LIMIT {limit}")
    non_null = sorted(row[0] for row in rows if row[0] is not None)
    nulls = [None] * sum(1 for row in rows if row[0] is None)
    expected = (non_null + nulls)[:limit]
    assert [r[0] for r in result.rows] == expected


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_distinct_matches_reference(rows):
    engine = make_engine(rows)
    result = engine.execute("SELECT DISTINCT s FROM t")
    assert sorted(map(repr, (r[0] for r in result.rows))) == sorted(
        map(repr, {row[1] for row in rows})
    )
