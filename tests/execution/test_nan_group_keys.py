"""Regression: GROUP BY over a double column containing NaN and NULL.

IEEE NaN compares unequal to itself, so a naive vectorized factorizer
either mints one group per NaN row or (sorting bit patterns) disagrees
with the row-at-a-time oracle.  The engine canonicalizes NaN keys to the
null sentinel before factorization, in both the vectorized lane and the
row oracle: NaN and NULL rows land in one shared group, and staged vs
direct execution agree row-for-row.
"""

import math

import pytest

from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, DOUBLE
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session

ROWS = [
    (1.0, 1),
    (float("nan"), 2),
    (None, 3),
    (2.0, 4),
    (float("nan"), 5),
    (1.0, 6),
    (None, 7),
    (float("nan"), 8),
]


@pytest.fixture(scope="module")
def engine():
    connector = MemoryConnector(split_size=3)
    connector.create_table("db", "measurements", [("d", DOUBLE), ("n", BIGINT)], ROWS)
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


def canonical_groups(rows):
    def key(row):
        d = row[0]
        if d is not None and isinstance(d, float) and math.isnan(d):
            return "nan-or-null"
        return "nan-or-null" if d is None else repr(d)

    return sorted((key(r), r[1]) for r in rows)


def test_nan_and_null_share_a_group(engine):
    result = engine.execute("SELECT d, count(*) FROM measurements GROUP BY d")
    # Groups: 1.0 (x2), 2.0 (x1), and the merged NaN/NULL sentinel (x5).
    assert len(result.rows) == 3
    counts = {}
    for d, count in result.rows:
        if d is None or (isinstance(d, float) and math.isnan(d)):
            counts["nan-or-null"] = counts.get("nan-or-null", 0) + count
        else:
            counts[d] = count
    assert counts == {1.0: 2, 2.0: 1, "nan-or-null": 5}


def test_nan_groups_staged_matches_direct(engine):
    sql = "SELECT d, count(*), sum(n) FROM measurements GROUP BY d"
    staged = engine.execute(sql)
    direct = engine.execute_direct(sql)
    assert canonical_groups(staged.rows) == canonical_groups(direct.rows)


def test_nan_aggregate_inputs_survive(engine):
    # Canonicalization applies to *keys* only; NaN measure values still
    # flow into aggregates (sum over a NaN-free group stays exact).
    result = engine.execute(
        "SELECT d, sum(n) FROM measurements WHERE n <= 6 GROUP BY d"
    )
    sums = {}
    for d, total in result.rows:
        if d is None or (isinstance(d, float) and math.isnan(d)):
            sums["nan-or-null"] = sums.get("nan-or-null", 0) + total
        else:
            sums[d] = total
    assert sums == {1.0: 7, 2.0: 4, "nan-or-null": 10}
