"""Concurrent multi-query serving: steppable scheduler + admission control.

Covers the run-to-completion → incremental refactor end to end: the
steppable :class:`QueryScheduler` state machine, the engine's
non-blocking submit handle, resource-group quotas and nesting, per-user
admission queues with priority/fair-share dequeue, queue-time
accounting, load shedding, interleaved execution on the cluster event
loop, and fault tolerance (crash requeue) across in-flight queries.
"""

import pytest

from repro.common.errors import (
    AdmissionRejectedError,
    ErrorCategory,
    ExecutionError,
    InjectedFaultError,
)
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT
from repro.execution.cluster import (
    PrestoClusterSim,
    QueryState,
    ResourceGroup,
    WorkerState,
)
from repro.execution.engine import PrestoEngine
from repro.obs.metrics import MetricsRegistry
from repro.planner.analyzer import Session
from tests.obs.helpers import assert_query_observable

SQL = "SELECT b, count(*), sum(a) FROM t GROUP BY b ORDER BY b"


def make_engine(rows=60, split_size=7, **kwargs):
    connector = MemoryConnector(split_size=split_size)
    connector.create_table(
        "db", "t", [("a", BIGINT), ("b", BIGINT)], [(i, i % 3) for i in range(rows)]
    )
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **kwargs)
    engine.register_connector("memory", connector)
    return engine


class TestQuerySchedulerStateMachine:
    def test_stepping_matches_blocking_run(self):
        stepped_engine = make_engine()
        blocking_engine = make_engine()
        handle = stepped_engine.submit(SQL)
        steps = []
        while not handle.done:
            steps.append(handle.step())
        oracle = blocking_engine.execute(SQL)
        result = handle.result()
        assert result.rows == oracle.rows
        assert result.stats.task_records == oracle.stats.task_records
        assert result.stats.simulated_ms == oracle.stats.simulated_ms
        # One step per task, ending with the query_done marker.
        assert len(steps) == result.stats.tasks_total
        assert steps[-1].query_done and steps[-1].stage_done
        assert all(not s.query_done for s in steps[:-1])

    def test_stepped_trace_is_byte_identical_to_blocking(self):
        handle = make_engine().submit(SQL)
        while not handle.done:
            handle.step()
        blocking = make_engine().execute(SQL)
        assert handle.result().trace.to_json() == blocking.trace.to_json()

    def test_peek_stage_tracks_frontier(self):
        handle = make_engine().submit(SQL)
        seen = []
        while not handle.done:
            peeked = handle.peek_stage()
            step = handle.step()
            assert step.stage == peeked
            seen.append(step.stage)
        assert handle.peek_stage() is None
        # Stages execute in topological order: grouped, never revisited.
        boundaries = [s for i, s in enumerate(seen) if i == 0 or seen[i - 1] != s]
        assert len(boundaries) == len(set(boundaries))

    def test_step_after_done_returns_none(self):
        handle = make_engine().submit(SQL)
        handle.run_to_completion()
        assert handle.step() is None
        assert handle.state == "finished"

    def test_result_before_done_raises(self):
        handle = make_engine().submit(SQL)
        with pytest.raises(ExecutionError, match="still running"):
            handle.result()

    def test_metadata_statement_completes_immediately(self):
        handle = make_engine().submit("SHOW TABLES FROM memory.db")
        assert handle.done
        assert handle.result().rows == [("t",)]

    def test_terminal_failure_is_recorded_and_raised(self):
        from repro.execution.faults import FaultInjector

        engine = make_engine(
            fault_injector=FaultInjector(seed=3, task_failure_rate=1.0),
            max_task_retries=1,
        )
        handle = engine.submit(SQL)
        with pytest.raises(InjectedFaultError):
            while not handle.done:
                handle.step()
        assert handle.state == "failed"
        with pytest.raises(InjectedFaultError):
            handle.result()
        # The trace is still well formed: every span closed.
        assert all(s.end_ms is not None for s in handle.trace.spans)


class TestResourceGroups:
    def test_nested_limits_aggregate_up(self):
        root = ResourceGroup("root", max_running=3)
        team = root.child("team", max_running=2)
        alice = team.child("alice", max_running=1)
        bob = team.child("bob")
        assert alice.path == "root.team.alice"
        assert alice.can_admit(0.0)
        alice.acquire(10.0)
        assert not alice.can_admit(0.0)  # own cap
        assert bob.can_admit(0.0)
        bob.acquire(10.0)
        assert not bob.can_admit(0.0)  # team cap of 2
        assert root.running == 2 and root.memory_used_mb == 20.0
        bob.release(10.0)
        assert bob.can_admit(0.0)

    def test_memory_limit_enforced_from_ancestors(self):
        root = ResourceGroup("root", memory_limit_mb=100.0)
        leaf = root.child("leaf")
        assert leaf.can_admit(100.0)
        assert not leaf.can_admit(100.1)
        leaf.acquire(60.0)
        assert not leaf.can_admit(50.0)
        assert leaf.can_admit(40.0)

    def test_cluster_resource_group_by_dotted_path(self):
        cluster = PrestoClusterSim(workers=1)
        group = cluster.resource_group("etl.nightly", max_running=2)
        assert group.path == "root.etl.nightly"
        assert cluster.resource_group("etl.nightly") is group
        assert group.parent is cluster.resource_group("etl")


class TestAdmissionControl:
    def make_cluster(self, **kwargs):
        metrics = MetricsRegistry()
        cluster = PrestoClusterSim(
            workers=4, slots_per_worker=2, metrics=metrics, **kwargs
        )
        return cluster, metrics

    def test_quota_queues_and_accounts_queue_time(self):
        cluster, metrics = self.make_cluster()
        cluster.resource_group("g", max_running=1)
        engine = make_engine()
        first, ex1 = cluster.submit_engine_handle(engine, SQL, resource_group="g")
        second, ex2 = cluster.submit_engine_handle(engine, SQL, resource_group="g")
        assert cluster.running_query_count() == 1
        assert cluster.queued_query_count() == 1
        cluster.run_until_idle()
        assert first.state == "finished" and second.state == "finished"
        assert ex1.queued_ms == 0.0
        assert ex2.queued_ms > 0.0
        assert ex2.running_ms > 0.0
        assert ex2.latency_ms == pytest.approx(ex2.queued_ms + ex2.running_ms)
        # queued_ms lands in the admission span and the histogram.
        admission = second.trace.find("cluster.admission")[0]
        assert admission.attributes["queued_ms"] == ex2.queued_ms
        assert metrics.total("cluster_queries_queued_total", cluster=cluster.name) == 1

    def test_load_shedding_rejects_with_retry_after(self):
        cluster, _ = self.make_cluster()
        cluster.resource_group("g", max_running=1, max_queued=1)
        engine = make_engine()
        cluster.submit_engine_handle(engine, SQL, resource_group="g")
        cluster.submit_engine_handle(engine, SQL, resource_group="g")
        with pytest.raises(AdmissionRejectedError) as rejection:
            cluster.submit_engine_handle(engine, SQL, resource_group="g")
        assert rejection.value.retry_after_ms > 0
        assert rejection.value.category is ErrorCategory.INSUFFICIENT_RESOURCES
        assert not rejection.value.retryable
        assert cluster.queries_shed == 1
        # The shed query holds nothing: the other two still complete.
        cluster.run_until_idle()
        assert cluster.running_query_count() == 0

    def test_queue_slo_shedding(self):
        cluster, _ = self.make_cluster()
        # SLO below one average wait: any queueing at all is over budget.
        cluster.resource_group("g", max_running=1, queue_slo_ms=1.0)
        engine = make_engine()
        cluster.submit_engine_handle(engine, SQL, resource_group="g")
        with pytest.raises(AdmissionRejectedError, match="over SLO"):
            cluster.submit_engine_handle(engine, SQL, resource_group="g")

    def test_fair_share_dequeue_prefers_starved_user(self):
        cluster, _ = self.make_cluster()
        cluster.resource_group("g", max_running=2)
        engine = make_engine()
        # alice fills the group, then queues a third; bob queues one last.
        cluster.submit_engine_handle(engine, SQL, user="alice", resource_group="g")
        cluster.submit_engine_handle(engine, SQL, user="alice", resource_group="g")
        a3, a3_ex = cluster.submit_engine_handle(
            engine, SQL, user="alice", resource_group="g"
        )
        b1, b1_ex = cluster.submit_engine_handle(
            engine, SQL, user="bob", resource_group="g"
        )
        assert [run.handle for run in cluster._queued_runs] == [a3, b1]
        cluster.run_until_idle()
        assert a3.state == b1.state == "finished"
        # Fair share: when the first slot freed, bob (0 running) beat
        # alice's third query (1 still running) despite arriving later.
        b1_run = cluster._runs[b1_ex.query_id]
        a3_run = cluster._runs[a3_ex.query_id]
        assert b1_run.admitted_at < a3_run.admitted_at

    def test_priority_beats_fair_share(self):
        cluster, _ = self.make_cluster()
        cluster.resource_group("g", max_running=1)
        engine = make_engine()
        cluster.submit_engine_handle(engine, SQL, user="alice", resource_group="g")
        low, low_ex = cluster.submit_engine_handle(
            engine, SQL, user="bob", resource_group="g", priority=0
        )
        high, high_ex = cluster.submit_engine_handle(
            engine, SQL, user="carol", resource_group="g", priority=5
        )
        cluster.run_until_idle()
        assert high.state == low.state == "finished"
        assert high_ex.finished_at < low_ex.finished_at

    def test_gauges_track_state_transitions(self):
        cluster, metrics = self.make_cluster()
        cluster.resource_group("g", max_running=1)
        engine = make_engine()
        cluster.submit_engine_handle(engine, SQL, resource_group="g")
        cluster.submit_engine_handle(engine, SQL, resource_group="g")
        name = cluster.name
        assert metrics.gauge("cluster_queries_running", cluster=name).value == 1
        assert metrics.gauge("cluster_queries_queued", cluster=name).value == 1
        assert (
            metrics.gauge(
                "resource_group_running", cluster=name, group="root.g"
            ).value
            == 1
        )
        assert (
            metrics.gauge("resource_group_queued", cluster=name, group="root.g").value
            == 1
        )
        cluster.run_until_idle()
        assert metrics.gauge("cluster_queries_running", cluster=name).value == 0
        assert metrics.gauge("cluster_queries_queued", cluster=name).value == 0
        assert (
            metrics.gauge(
                "resource_group_running", cluster=name, group="root.g"
            ).value
            == 0
        )

    def test_planning_cost_sees_real_concurrency(self):
        calls = []

        class SpyCoordinator:
            planning_base_ms = 50.0

            def planning_cost_ms(self, workers, concurrent_queries):
                calls.append(concurrent_queries)
                return 1.0

        cluster = PrestoClusterSim(workers=4, coordinator=SpyCoordinator())
        engine = make_engine()
        for _ in range(3):
            cluster.submit_engine_handle(engine, SQL)
        assert calls == [1, 2, 3]


class TestInterleavedExecution:
    def test_queries_overlap_on_the_simulated_clock(self):
        metrics = MetricsRegistry()
        cluster = PrestoClusterSim(workers=4, slots_per_worker=2, metrics=metrics)
        engine = make_engine()
        handles = [cluster.submit_engine_handle(engine, SQL)[0] for _ in range(3)]
        assert cluster.running_query_count() == 3
        cluster.run_until_idle()
        assert all(h.state == "finished" for h in handles)
        assert cluster.max_concurrent_running() > 1
        timeline = cluster.timeline_trace()
        spans = timeline.find("cluster.query")
        assert len(spans) == 3
        overlaps = [
            (a, b)
            for a in spans
            for b in spans
            if a is not b and a.start_ms < b.end_ms and b.start_ms < a.end_ms
        ]
        assert overlaps, "no overlapping query spans in the cluster timeline"

    def test_interleaved_results_equal_sequential_execution(self):
        concurrent_engine = make_engine()
        cluster = PrestoClusterSim(workers=2, slots_per_worker=1)
        sqls = [SQL, "SELECT count(*) FROM t WHERE a < 30", SQL]
        handles = [cluster.submit_engine_handle(concurrent_engine, s)[0] for s in sqls]
        cluster.run_until_idle()
        sequential_engine = make_engine()
        for handle, sql in zip(handles, sqls):
            assert handle.result().rows == sequential_engine.execute(sql).rows

    def test_concurrent_queries_reconcile_with_observability(self):
        metrics = MetricsRegistry()
        cluster = PrestoClusterSim(workers=4, metrics=metrics)
        engine = make_engine(metrics=metrics)
        handles = [cluster.submit_engine_handle(engine, SQL)[0] for _ in range(2)]
        cluster.run_until_idle()
        for handle in handles:
            assert_query_observable(handle.result(), metrics)

    def test_stage_barrier_no_downstream_task_before_upstream_drains(self):
        cluster = PrestoClusterSim(workers=1, slots_per_worker=1)
        engine = make_engine()
        handle, execution = cluster.submit_engine_handle(engine, SQL)
        cluster.run_until_idle()
        # Replay the split completion order recorded by the cluster: all
        # of stage N's splits must complete before stage N+1 dispatches.
        records = handle.result().stats.task_records
        stages = [r["stage"] for r in records]
        boundaries = [
            s for i, s in enumerate(stages) if i == 0 or stages[i - 1] != s
        ]
        assert len(boundaries) == len(set(boundaries))
        assert execution.splits_done == execution.splits_total == len(records)


class TestCrashRecoveryAcrossQueries:
    def test_crash_requeues_splits_of_all_inflight_queries(self):
        cluster = PrestoClusterSim(workers=2, slots_per_worker=2)
        engine = make_engine(rows=120, split_size=5)
        handles = [cluster.submit_engine_handle(engine, SQL)[0] for _ in range(3)]
        victim = next(iter(cluster.workers))
        # Admission planning costs ~50ms, so splits are in flight shortly
        # after; crash while all three queries have work on the workers.
        cluster.crash_worker_at(55.0, victim)
        cluster.run_until_idle()
        requeued = sum(q.splits_requeued for q in cluster.queries.values())
        assert requeued > 0
        # Splits from more than one query were in flight on the victim.
        assert all(h.state == "finished" for h in handles)
        oracle = make_engine(rows=120, split_size=5)
        expected = oracle.execute(SQL).rows
        for handle in handles:
            assert handle.result().rows == expected
        for execution in cluster.queries.values():
            assert execution.splits_done == execution.splits_total

    def test_crash_does_not_block_other_queries_progress(self):
        cluster = PrestoClusterSim(workers=3, slots_per_worker=1)
        engine = make_engine(rows=90, split_size=6)
        handles = [cluster.submit_engine_handle(engine, SQL)[0] for _ in range(2)]
        victim = list(cluster.workers)[0]
        cluster.crash_worker_at(55.0, victim)
        cluster.run_until_idle()
        assert all(h.state == "finished" for h in handles)
        assert cluster.workers[victim].state is WorkerState.CRASHED
        # Surviving workers absorbed everything.
        survivors_completed = sum(
            w.completed_splits
            for w in cluster.workers.values()
            if w.worker_id != victim
        )
        total_done = sum(q.splits_done for q in cluster.queries.values())
        assert survivors_completed + cluster.workers[victim].completed_splits
        assert total_done == sum(q.splits_total for q in cluster.queries.values())


class TestDrainEviction:
    def test_evict_queued_returns_unstarted_runs(self):
        cluster = PrestoClusterSim(workers=2)
        cluster.resource_group("g", max_running=1)
        engine = make_engine()
        running, _ = cluster.submit_engine_handle(engine, SQL, resource_group="g")
        queued, queued_ex = cluster.submit_engine_handle(
            engine, SQL, resource_group="g"
        )
        evicted = cluster.evict_queued()
        assert [run.handle for run in evicted] == [queued]
        assert evicted[0].state is QueryState.EVICTED
        assert queued_ex.finished_at is not None
        assert cluster.queued_query_count() == 0
        # The evicted handle never ran a task: zero splits dispatched.
        assert queued_ex.splits_total == 0
        cluster.run_until_idle()
        assert running.state == "finished"
