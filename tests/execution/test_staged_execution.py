"""Staged execution: stages, tasks, exchanges, EXPLAIN ANALYZE, and the
bridge into the cluster simulation (section III + section VIII)."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.hashing import stable_hash
from repro.common.ring import ConsistentHashRing
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, VARCHAR
from repro.execution.cluster import PrestoClusterSim, SplitWork
from repro.execution.engine import PrestoEngine
from repro.federation.gateway import PrestoGateway
from repro.planner.analyzer import Session


def make_engine(split_size=5, **kwargs):
    connector = MemoryConnector(split_size=split_size)
    rows = [(f"key-{i % 7}", i) for i in range(40)]
    connector.create_table("db", "events", [("k", VARCHAR), ("v", BIGINT)], rows)
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **kwargs)
    engine.register_connector("memory", connector)
    return engine


class TestStagedStats:
    def test_one_task_per_split_on_leaf_stage(self):
        engine = make_engine(split_size=5)  # 40 rows → 8 splits
        result = engine.execute("SELECT k, count(*) FROM events GROUP BY k")
        leaf = result.stats.stage_summaries[0]
        assert leaf["distribution"] == "source"
        assert leaf["tasks"] == 8
        assert result.stats.splits_scanned == 8

    def test_hash_stage_runs_one_task_per_partition(self):
        engine = make_engine(hash_partitions=3)
        result = engine.execute("SELECT k, sum(v) FROM events GROUP BY k")
        hash_stages = [
            s for s in result.stats.stage_summaries if s["distribution"] == "hash"
        ]
        assert hash_stages and hash_stages[0]["tasks"] == 3

    def test_rows_exchanged_counted(self):
        engine = make_engine()
        result = engine.execute("SELECT k, count(*) FROM events GROUP BY k")
        # 8 partial tasks × up to 7 groups flow through the repartition,
        # then 7 final rows gather to the output stage.
        assert result.stats.rows_exchanged > 7
        assert result.stats.tasks_total >= result.stats.stages_total

    def test_simulated_time_deterministic(self):
        first = make_engine().execute("SELECT k, sum(v) FROM events GROUP BY k").stats
        second = make_engine().execute("SELECT k, sum(v) FROM events GROUP BY k").stats
        assert first.simulated_ms == second.simulated_ms
        assert first.task_records == second.task_records

    def test_task_records_carry_split_data_keys(self):
        engine = make_engine()
        result = engine.execute("SELECT sum(v) FROM events")
        leaf_keys = [r["data_key"] for r in result.stats.task_records if r["splits"]]
        assert leaf_keys and all(key.startswith("memory:db.events:") for key in leaf_keys)

    def test_stats_appear_in_as_dict(self):
        engine = make_engine()
        stats = engine.execute("SELECT count(*) FROM events").stats.as_dict()
        assert stats["stages_total"] >= 2
        assert stats["tasks_total"] >= stats["stages_total"]
        assert isinstance(stats["stage_summaries"], list)


class TestExplainAnalyze:
    def test_reports_stages_tasks_and_rows(self):
        engine = make_engine()
        result = engine.execute("EXPLAIN ANALYZE SELECT k, count(*) FROM events GROUP BY k")
        text = "\n".join(row[0] for row in result.rows)
        assert "stages" in text and "tasks" in text
        assert "rows exchanged" in text
        assert "simulated ms" in text
        assert "Stage 0" in text

    def test_analyze_not_swallowed_by_plain_explain(self):
        engine = make_engine()
        analyzed = engine.execute("explain analyze SELECT count(*) FROM events")
        plain = engine.execute("EXPLAIN SELECT count(*) FROM events")
        assert any("simulated ms" in row[0] for row in analyzed.rows)
        assert not any("simulated ms" in row[0] for row in plain.rows)


class TestDirectOracle:
    def test_execute_direct_runs_single_pipeline(self):
        engine = make_engine()
        result = engine.execute_direct("SELECT k, count(*) FROM events GROUP BY k")
        assert result.stats.stages_total == 0
        assert result.stats.task_records == []

    def test_staged_flag_off_disables_staging(self):
        engine = make_engine(staged_execution=False)
        result = engine.execute("SELECT count(*) FROM events")
        assert result.stats.stages_total == 0
        assert result.rows == [(40,)]


class TestClusterBridge:
    def test_submit_tasks_generalizes_submit_query(self):
        cluster = PrestoClusterSim(workers=2, clock=SimulatedClock())
        execution = cluster.submit_tasks(
            [SplitWork("", 10.0, "a"), SplitWork("", 20.0, "b")]
        )
        cluster.run_until_idle()
        assert execution.finished_at is not None
        assert execution.splits_total == 2

    def test_submit_engine_query_schedules_real_tasks(self):
        engine = make_engine()
        cluster = PrestoClusterSim(workers=3, clock=SimulatedClock())
        result, execution = cluster.submit_engine_query(
            engine, "SELECT k, sum(v) FROM events GROUP BY k"
        )
        cluster.run_until_idle()
        assert execution.finished_at is not None
        # One cluster task per staged-execution task, not a synthetic count.
        assert execution.splits_total == result.stats.tasks_total

    def test_engine_queries_warm_affinity_caches(self):
        engine = make_engine()
        cluster = PrestoClusterSim(
            workers=4, clock=SimulatedClock(), affinity_scheduling=True
        )
        for _ in range(3):
            cluster.submit_engine_query(engine, "SELECT sum(v) FROM events")
            cluster.run_until_idle()
        # The split data keys repeat across queries, so repeat scans hit
        # the preferred workers' caches.
        assert sum(w.cache_hits for w in cluster.workers.values()) >= 8

    def test_graceful_shutdown_drains_engine_tasks(self):
        engine = make_engine()
        cluster = PrestoClusterSim(workers=2, clock=SimulatedClock())
        _, execution = cluster.submit_engine_query(
            engine, "SELECT k, count(*) FROM events GROUP BY k"
        )
        victim = next(iter(cluster.workers))
        cluster.request_graceful_shutdown(victim, grace_period_ms=1.0)
        cluster.run_until_idle()
        assert execution.finished_at is not None
        from repro.execution.cluster import WorkerState

        assert cluster.workers[victim].state is WorkerState.SHUT_DOWN

    def test_gateway_routes_sql_to_cluster(self):
        engine = make_engine()
        gateway = PrestoGateway()
        adhoc = PrestoClusterSim(workers=2, clock=SimulatedClock(), name="adhoc")
        gateway.register_cluster(adhoc)
        gateway.routing.set_default("adhoc")
        result, execution = gateway.submit_sql("alice", engine, "SELECT count(*) FROM events")
        adhoc.run_until_idle()
        assert result.rows == [(40,)]
        assert execution.finished_at is not None
        assert execution.query_id.startswith("adhoc-")


class TestStableAffinityHash:
    def test_preferred_worker_is_hashseed_independent(self):
        # crc32, not hash(): the preferred worker for a data key must not
        # change across interpreter runs (PYTHONHASHSEED).
        assert stable_hash("warehouse/part-0.parquet") == 953814315
        assert stable_hash(b"abc") == 891568578

    def test_affinity_placement_matches_consistent_hash_ring(self):
        cluster = PrestoClusterSim(
            workers=4, slots_per_worker=4, clock=SimulatedClock(), affinity_scheduling=True
        )
        key = "events-split-3"
        cluster.submit_query([5.0], split_keys=[key])
        cluster.run_until_idle()
        # Placement matches an independently built ring over the same
        # membership — pure CRC32, so stable across interpreter runs.
        expected = ConsistentHashRing(sorted(cluster.workers)).lookup(key)
        assert cluster.workers[expected].completed_splits == 1
