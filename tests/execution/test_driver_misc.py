"""Driver and block edge cases not covered elsewhere."""

import numpy as np
import pytest

from repro.common.errors import ExecutionError
from repro.core.blocks import DictionaryBlock, LazyBlock, PrimitiveBlock
from repro.core.page import Page, concat_pages
from repro.core.types import BIGINT, VARCHAR
from repro.execution.context import ExecutionContext
from repro.execution.driver import execute_plan
from repro.connectors.spi import Catalog


class TestDriverErrors:
    def test_unknown_plan_node_rejected(self):
        from repro.planner.plan import PlanNode

        class WeirdNode(PlanNode):
            id = "weird"

            @property
            def outputs(self):
                return ()

            def sources(self):
                return ()

        ctx = ExecutionContext(catalog=Catalog())
        with pytest.raises(ExecutionError, match="no operator"):
            list(execute_plan(WeirdNode(), ctx))


class TestDictionaryBlockEdges:
    def test_null_dictionary_entry(self):
        dictionary = PrimitiveBlock.from_values(VARCHAR, ["x", None])
        block = DictionaryBlock(dictionary, np.array([0, 1, 0]))
        assert block.to_list() == ["x", None, "x"]
        assert list(block.null_mask()) == [False, True, False]

    def test_decode_with_null_entry(self):
        dictionary = PrimitiveBlock.from_values(VARCHAR, ["x", None])
        block = DictionaryBlock(dictionary, np.array([1, 0, -1]))
        decoded = block.decode()
        assert decoded.to_list() == [None, "x", None]


class TestConcatWithLazy:
    def test_concat_forces_lazy_blocks(self):
        loads = []

        def loader():
            loads.append(1)
            return PrimitiveBlock.from_values(BIGINT, [1, 2])

        lazy_page = Page([LazyBlock(BIGINT, 2, loader)])
        eager_page = Page.from_rows([BIGINT], [(3,)])
        merged = concat_pages([BIGINT], [lazy_page, eager_page])
        assert merged.to_rows() == [(1,), (2,), (3,)]
        assert loads == [1]


class TestPageErrors:
    def test_from_columns_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Page.from_columns([BIGINT, BIGINT], [[1, 2], [1]])

    def test_empty_page_without_count_rejected(self):
        with pytest.raises(ValueError):
            Page([])

    def test_append_block_mismatch(self):
        page = Page.from_rows([BIGINT], [(1,)])
        with pytest.raises(ValueError):
            page.append_block(PrimitiveBlock.from_values(BIGINT, [1, 2]))
