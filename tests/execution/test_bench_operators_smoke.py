"""Smoke test for benchmarks/bench_operator_kernels.py.

Runs the operator-kernel benchmark in ``--smoke`` mode (tiny inputs, no
speedup gate) and validates the ``BENCH_operators.json`` schema so later
PRs can rely on its shape.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_operator_kernels.py"


def test_bench_operator_kernels_smoke(tmp_path):
    output = tmp_path / "BENCH_operators.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    result = subprocess.run(
        [sys.executable, str(BENCH), "--smoke", "--output", str(output)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr

    report = json.loads(output.read_text())
    assert report["benchmark"] == "operator_kernels"
    assert report["paper_section"].startswith("III")
    assert report["smoke"] is True

    entries = report["benchmarks"]
    assert {b["name"] for b in entries} == {"grouped_aggregation", "hash_join"}
    for entry in entries:
        assert entry["rows"] > 0
        assert entry["vectorized_ms"] > 0
        assert entry["reference_ms"] > 0
        assert entry["speedup"] > 0
        assert entry["rows_per_sec"] > 0
        # Smoke mode skips the 5x gate but never the correctness gate.
        assert entry["identical"] is True
