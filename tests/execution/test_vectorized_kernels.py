"""Differential tests: vectorized operator kernels vs the row-at-a-time
reference implementations they replaced.

Every test builds the same input pages, runs both the vectorized operator
and the retained reference (``execute_aggregation_rows``,
``_hash_join_rows``, ``_sorted_rows``), and asserts row-for-row identical
output — values *and* Python types — across NULL keys, NULL aggregate
inputs, DISTINCT, merge (FINAL) mode, empty input, and object-dtype
(varchar) keys.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocks import DictionaryBlock, PrimitiveBlock, block_from_values
from repro.core.expressions import CallExpression, variable
from repro.core.functions import default_registry
from repro.core.page import Page, concat_pages
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution import kernels
from repro.execution.context import ExecutionContext
from repro.execution.operators.aggregation import (
    execute_aggregation,
    execute_aggregation_rows,
)
from repro.execution.operators.joins import _hash_join_rows, execute_join
from repro.execution.operators.sorting import (
    _sorted_rows,
    execute_sort,
    execute_topn,
)
from repro.planner.plan import (
    Aggregation,
    AggregationNode,
    JoinNode,
    SortNode,
    TopNNode,
    ValuesNode,
)


def make_ctx() -> ExecutionContext:
    return ExecutionContext(catalog=None)


def source_node(names_and_types) -> ValuesNode:
    return ValuesNode(
        output_variables=tuple(variable(n, t) for n, t in names_and_types),
        rows=(),
    )


def agg_node(source, key_names, aggs, step="SINGLE") -> AggregationNode:
    """``aggs`` is a list of (function, [arg names], distinct, output name)."""
    registry = default_registry()
    by_name = {v.name: v for v in source.outputs}
    aggregations = []
    for func, arg_names, distinct, out_name in aggs:
        arg_vars = tuple(by_name[a] for a in arg_names)
        handle, _ = registry.resolve_aggregate(func, [a.type for a in arg_vars])
        aggregations.append(
            Aggregation(
                output=variable(out_name, handle.resolved_return_type()),
                function_handle=handle,
                arguments=arg_vars,
                distinct=distinct,
            )
        )
    return AggregationNode(
        source=source,
        group_keys=tuple(by_name[k] for k in key_names),
        aggregations=tuple(aggregations),
        step=step,
    )


def rows_of(pages) -> list[tuple]:
    out: list[tuple] = []
    for page in pages:
        out.extend(page.to_rows())
    return out


def assert_identical(actual: list[tuple], expected: list[tuple]) -> None:
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got == want
        for g, w in zip(got, want):
            assert type(g) is type(w), f"{g!r} ({type(g)}) vs {w!r} ({type(w)})"


def paged(types, rows, page_size=7) -> list[Page]:
    return [
        Page.from_rows(types, rows[i : i + page_size])
        for i in range(0, max(len(rows), 1), page_size)
    ]


def run_agg_both(node, pages) -> tuple[list[tuple], list[tuple]]:
    vec = rows_of(execute_aggregation(node, make_ctx(), iter(pages)))
    ref = rows_of(execute_aggregation_rows(node, make_ctx(), iter(pages)))
    return vec, ref


class TestAggregationDifferential:
    def _random_rows(self, seed, n, key_pool, value_kind="double"):
        rng = random.Random(seed)
        rows = []
        for _ in range(n):
            key = rng.choice(key_pool)
            if value_kind == "double":
                value = None if rng.random() < 0.15 else round(rng.uniform(-50, 50), 3)
            else:
                value = None if rng.random() < 0.15 else rng.randint(-100, 100)
            rows.append((key, value))
        return rows

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_grouped_numeric_with_null_keys(self, seed):
        rows = self._random_rows(seed, 200, [None, 1, 2, 3, 4, 5])
        pages = paged([BIGINT, DOUBLE], rows)
        node = agg_node(
            source_node([("k", BIGINT), ("v", DOUBLE)]),
            ["k"],
            [
                ("sum", ["v"], False, "s"),
                ("count", ["v"], False, "c"),
                ("avg", ["v"], False, "a"),
                ("min", ["v"], False, "lo"),
                ("max", ["v"], False, "hi"),
            ],
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)

    def test_count_star_and_bigint_sum(self):
        rows = self._random_rows(7, 150, [10, 20, None], value_kind="int")
        pages = paged([BIGINT, BIGINT], rows)
        node = agg_node(
            source_node([("k", BIGINT), ("v", BIGINT)]),
            ["k"],
            [("count", [], False, "c"), ("sum", ["v"], False, "s")],
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)

    def test_varchar_keys_object_dtype(self):
        rows = self._random_rows(3, 120, ["ny", "sf", "la", None])
        pages = paged([VARCHAR, DOUBLE], rows)
        node = agg_node(
            source_node([("city", VARCHAR), ("v", DOUBLE)]),
            ["city"],
            [("sum", ["v"], False, "s"), ("count", [], False, "c")],
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)

    def test_varchar_min_max_uses_generic_fallback(self):
        rows = [(i % 3, s) for i, s in enumerate(["b", "a", None, "z", "m", "a"])]
        pages = paged([BIGINT, VARCHAR], rows, page_size=2)
        node = agg_node(
            source_node([("k", BIGINT), ("s", VARCHAR)]),
            ["k"],
            [("min", ["s"], False, "lo"), ("max", ["s"], False, "hi")],
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)

    def test_multi_column_keys(self):
        rng = random.Random(11)
        rows = [
            (rng.choice([None, 1, 2]), rng.choice(["a", "b", None]), rng.randint(0, 9))
            for _ in range(180)
        ]
        pages = paged([BIGINT, VARCHAR, BIGINT], rows)
        node = agg_node(
            source_node([("a", BIGINT), ("b", VARCHAR), ("v", BIGINT)]),
            ["a", "b"],
            [("sum", ["v"], False, "s"), ("count", ["v"], False, "c")],
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)

    def test_distinct_aggregates(self):
        rows = self._random_rows(5, 160, [1, 2, None], value_kind="int")
        pages = paged([BIGINT, BIGINT], rows)
        node = agg_node(
            source_node([("k", BIGINT), ("v", BIGINT)]),
            ["k"],
            [
                ("sum", ["v"], True, "ds"),
                ("count", ["v"], True, "dc"),
                ("sum", ["v"], False, "s"),
            ],
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)

    def test_merge_mode_final_step(self):
        # Partial rows as a connector would return them after pushdown:
        # (key, partial_sum, partial_count, partial_min, partial_max).
        rng = random.Random(9)
        rows = [
            (
                rng.choice([1, 2, 3, None]),
                None if rng.random() < 0.1 else rng.randint(-40, 40),
                rng.randint(0, 10),
                None if rng.random() < 0.1 else rng.randint(-40, 40),
                None if rng.random() < 0.1 else rng.randint(-40, 40),
            )
            for _ in range(120)
        ]
        pages = paged([BIGINT, BIGINT, BIGINT, BIGINT, BIGINT], rows)
        node = agg_node(
            source_node(
                [
                    ("k", BIGINT),
                    ("ps", BIGINT),
                    ("pc", BIGINT),
                    ("plo", BIGINT),
                    ("phi", BIGINT),
                ]
            ),
            ["k"],
            [
                ("sum", ["ps"], False, "s"),
                ("count", ["pc"], False, "c"),
                ("min", ["plo"], False, "lo"),
                ("max", ["phi"], False, "hi"),
            ],
            step="FINAL",
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)

    def test_empty_input_grouped_and_global(self):
        types = [BIGINT, DOUBLE]
        empty = [Page.from_rows(types, [])]
        src = source_node([("k", BIGINT), ("v", DOUBLE)])
        grouped = agg_node(src, ["k"], [("sum", ["v"], False, "s")])
        vec, ref = run_agg_both(grouped, empty)
        assert_identical(vec, ref)
        assert vec == []
        global_node = agg_node(src, [], [("count", [], False, "c"), ("sum", ["v"], False, "s")])
        vec, ref = run_agg_both(global_node, empty)
        assert_identical(vec, ref)
        assert vec == [(0, None)]

    def test_dictionary_block_keys_group_on_ids(self):
        dictionary = PrimitiveBlock.from_values(VARCHAR, ["sf", "ny", "la"])
        ids = np.array([0, 1, 2, 0, 1, -1, 2, 0], dtype=np.int64)
        keys = DictionaryBlock(dictionary, ids)
        values = PrimitiveBlock.from_values(DOUBLE, [1.0, 2.0, 3.0, 4.0, None, 6.0, 7.0, 8.0])
        pages = [Page([keys, values])]
        node = agg_node(
            source_node([("city", VARCHAR), ("v", DOUBLE)]),
            ["city"],
            [("sum", ["v"], False, "s"), ("count", [], False, "c")],
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)

    def test_dictionary_with_duplicate_values_merges_groups(self):
        # A dictionary holding the same value twice must not split a group.
        dictionary = PrimitiveBlock.from_values(VARCHAR, ["sf", "ny", "sf"])
        ids = np.array([0, 1, 2, 0, 2], dtype=np.int64)
        keys = DictionaryBlock(dictionary, ids)
        values = PrimitiveBlock.from_values(BIGINT, [1, 2, 3, 4, 5])
        pages = [Page([keys, values])]
        node = agg_node(
            source_node([("city", VARCHAR), ("v", BIGINT)]),
            ["city"],
            [("sum", ["v"], False, "s")],
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)
        assert sorted(r[0] for r in vec) == ["ny", "sf"]

    def test_mixed_type_object_keys_fall_back(self):
        # ints and strings in one object column defeat np.unique; the
        # row-at-a-time key path must kick in transparently.
        keys = PrimitiveBlock.from_values(VARCHAR, [1, "a", 1, "a", "b", None])
        values = PrimitiveBlock.from_values(BIGINT, [1, 2, 3, 4, 5, 6])
        pages = [Page([keys, values])]
        node = agg_node(
            source_node([("k", VARCHAR), ("v", BIGINT)]),
            ["k"],
            [("sum", ["v"], False, "s")],
        )
        ctx = make_ctx()
        vec = rows_of(execute_aggregation(node, ctx, iter(pages)))
        ref = rows_of(execute_aggregation_rows(node, make_ctx(), iter(pages)))
        assert_identical(vec, ref)
        assert ctx.stats.rows_processed_fallback == 6

    def test_stats_count_vectorized_rows(self):
        rows = self._random_rows(2, 60, [1, 2, 3])
        pages = paged([BIGINT, DOUBLE], rows)
        node = agg_node(
            source_node([("k", BIGINT), ("v", DOUBLE)]),
            ["k"],
            [("sum", ["v"], False, "s")],
        )
        ctx = make_ctx()
        rows_of(execute_aggregation(node, ctx, iter(pages)))
        assert ctx.stats.rows_processed_vectorized == 60
        assert ctx.stats.rows_processed_fallback == 0

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(min_value=-3, max_value=3)),
                st.one_of(
                    st.none(),
                    st.integers(min_value=-1000, max_value=1000).map(lambda v: v / 8),
                ),
            ),
            max_size=60,
        ),
        distinct=st.booleans(),
    )
    def test_property_grouped_aggregation_matches_reference(self, data, distinct):
        pages = paged([BIGINT, DOUBLE], data, page_size=9)
        node = agg_node(
            source_node([("k", BIGINT), ("v", DOUBLE)]),
            ["k"],
            [
                ("sum", ["v"], distinct, "s"),
                ("count", ["v"], distinct, "c"),
                ("avg", ["v"], False, "a"),
                ("min", ["v"], False, "lo"),
                ("max", ["v"], False, "hi"),
            ],
        )
        vec, ref = run_agg_both(node, pages)
        assert_identical(vec, ref)


def join_node(join_type, left_spec, right_spec, criteria_names, join_filter=None):
    left = source_node(left_spec)
    right = source_node(right_spec)
    left_by_name = {v.name: v for v in left.outputs}
    right_by_name = {v.name: v for v in right.outputs}
    criteria = tuple(
        (left_by_name[l], right_by_name[r]) for l, r in criteria_names
    )
    return JoinNode(
        join_type=join_type,
        left=left,
        right=right,
        criteria=criteria,
        filter=join_filter,
    )


def reference_join(node, ctx, left_pages, right_pages):
    """execute_join's dispatch, with the row-at-a-time hash join inside."""
    if node.join_type == "right":
        swapped = JoinNode(
            join_type="left",
            left=node.right,
            right=node.left,
            criteria=tuple((r, l) for l, r in node.criteria),
            filter=node.filter,
            distribution=node.distribution,
        )
        left_width = len(node.left.outputs)
        right_width = len(node.right.outputs)
        reorder = list(range(right_width, right_width + left_width)) + list(
            range(right_width)
        )
        for page in _hash_join_rows(swapped, ctx, iter(right_pages), iter(left_pages)):
            yield page.select_channels(reorder)
        return
    yield from _hash_join_rows(node, ctx, iter(left_pages), iter(right_pages))


def run_join_both(node, left_pages, right_pages):
    vec = rows_of(
        execute_join(node, make_ctx(), iter(left_pages), iter(right_pages))
    )
    ref = rows_of(reference_join(node, make_ctx(), left_pages, right_pages))
    return vec, ref


def scalar_call(name, args):
    registry = default_registry()
    handle, _ = registry.resolve_scalar(name, [a.type for a in args])
    return CallExpression(name, handle, handle.resolved_return_type(), tuple(args))


class TestJoinDifferential:
    def _sides(self, seed, n_left=90, n_right=40, key_pool=None):
        rng = random.Random(seed)
        key_pool = key_pool or [None, 1, 2, 3, 4, 5, 6]
        left = [(rng.choice(key_pool), rng.randint(0, 99)) for _ in range(n_left)]
        right = [(rng.choice(key_pool), rng.uniform(0, 1)) for _ in range(n_right)]
        return (
            paged([BIGINT, BIGINT], left, page_size=13),
            paged([BIGINT, DOUBLE], right, page_size=11),
        )

    @pytest.mark.parametrize("join_type", ["inner", "left", "right"])
    @pytest.mark.parametrize("seed", [0, 4])
    def test_equi_join_with_null_keys_and_duplicates(self, join_type, seed):
        left_pages, right_pages = self._sides(seed)
        node = join_node(
            join_type,
            [("lk", BIGINT), ("lv", BIGINT)],
            [("rk", BIGINT), ("rv", DOUBLE)],
            [("lk", "rk")],
        )
        vec, ref = run_join_both(node, left_pages, right_pages)
        assert_identical(vec, ref)

    def test_varchar_keys(self):
        rng = random.Random(21)
        pool = ["a", "b", "c", None, "d"]
        left = [(rng.choice(pool), rng.randint(0, 9)) for _ in range(70)]
        right = [(rng.choice(pool), rng.randint(0, 9)) for _ in range(30)]
        left_pages = paged([VARCHAR, BIGINT], left, page_size=17)
        right_pages = paged([VARCHAR, BIGINT], right, page_size=9)
        node = join_node(
            "left",
            [("lk", VARCHAR), ("lv", BIGINT)],
            [("rk", VARCHAR), ("rv", BIGINT)],
            [("lk", "rk")],
        )
        vec, ref = run_join_both(node, left_pages, right_pages)
        assert_identical(vec, ref)

    def test_multi_key_join(self):
        rng = random.Random(31)
        left = [
            (rng.choice([1, 2, None]), rng.choice(["x", "y"]), rng.randint(0, 9))
            for _ in range(80)
        ]
        right = [
            (rng.choice([1, 2, None]), rng.choice(["x", "y", "z"]), rng.randint(0, 9))
            for _ in range(30)
        ]
        left_pages = paged([BIGINT, VARCHAR, BIGINT], left)
        right_pages = paged([BIGINT, VARCHAR, BIGINT], right)
        node = join_node(
            "inner",
            [("la", BIGINT), ("lb", VARCHAR), ("lv", BIGINT)],
            [("ra", BIGINT), ("rb", VARCHAR), ("rv", BIGINT)],
            [("la", "ra"), ("lb", "rb")],
        )
        vec, ref = run_join_both(node, left_pages, right_pages)
        assert_identical(vec, ref)

    @pytest.mark.parametrize("join_type", ["inner", "left"])
    def test_join_with_residual_filter(self, join_type):
        left_pages, right_pages = self._sides(8, key_pool=[1, 2, 3])
        node = join_node(
            join_type,
            [("lk", BIGINT), ("lv", BIGINT)],
            [("rk", BIGINT), ("rv", DOUBLE)],
            [("lk", "rk")],
        )
        predicate = scalar_call(
            "greater_than",
            [variable("lv", BIGINT), variable("lk", BIGINT)],
        )
        node = JoinNode(
            join_type=node.join_type,
            left=node.left,
            right=node.right,
            criteria=node.criteria,
            filter=predicate,
        )
        vec, ref = run_join_both(node, left_pages, right_pages)
        assert_identical(vec, ref)

    def test_empty_build_and_empty_probe(self):
        node = join_node(
            "left",
            [("lk", BIGINT), ("lv", BIGINT)],
            [("rk", BIGINT), ("rv", DOUBLE)],
            [("lk", "rk")],
        )
        left_pages = paged([BIGINT, BIGINT], [(1, 2), (None, 3), (4, 5)])
        empty_right = [Page.from_rows([BIGINT, DOUBLE], [])]
        vec, ref = run_join_both(node, left_pages, empty_right)
        assert_identical(vec, ref)
        empty_left = [Page.from_rows([BIGINT, BIGINT], [])]
        right_pages = paged([BIGINT, DOUBLE], [(1, 0.5)])
        vec, ref = run_join_both(node, empty_left, right_pages)
        assert_identical(vec, ref)

    def test_dictionary_build_keys(self):
        dictionary = PrimitiveBlock.from_values(BIGINT, [10, 20, 30])
        ids = np.array([0, 1, 2, 1, -1], dtype=np.int64)
        build_keys = DictionaryBlock(dictionary, ids)
        build_vals = PrimitiveBlock.from_values(DOUBLE, [0.1, 0.2, 0.3, 0.4, 0.5])
        right_pages = [Page([build_keys, build_vals])]
        left_pages = paged([BIGINT, BIGINT], [(10, 1), (20, 2), (99, 3), (None, 4)])
        node = join_node(
            "left",
            [("lk", BIGINT), ("lv", BIGINT)],
            [("rk", BIGINT), ("rv", DOUBLE)],
            [("lk", "rk")],
        )
        vec, ref = run_join_both(node, left_pages, right_pages)
        assert_identical(vec, ref)

    def test_stats_count_vectorized_probe_rows(self):
        left_pages, right_pages = self._sides(1, n_left=50)
        node = join_node(
            "inner",
            [("lk", BIGINT), ("lv", BIGINT)],
            [("rk", BIGINT), ("rv", DOUBLE)],
            [("lk", "rk")],
        )
        ctx = make_ctx()
        rows_of(execute_join(node, ctx, iter(left_pages), iter(right_pages)))
        assert ctx.stats.rows_processed_vectorized == 50
        assert ctx.stats.peak_build_rows == 40

    def test_mixed_type_probe_keys_fall_back_per_page(self):
        # Probe values that cannot be ordered against the build side's
        # (str vs int) make JoinKeyIndex raise FallbackNeeded; the page
        # must route through the row-at-a-time probe with identical output.
        left = [("a", 1), (7, 2), ("b", 3), (None, 4)]
        right = [("a", 10), ("b", 20), ("b", 30)]
        left_pages = paged([VARCHAR, BIGINT], left, page_size=2)
        right_pages = paged([VARCHAR, BIGINT], right)
        node = join_node(
            "left",
            [("lk", VARCHAR), ("lv", BIGINT)],
            [("rk", VARCHAR), ("rv", BIGINT)],
            [("lk", "rk")],
        )
        ctx = make_ctx()
        vec = rows_of(execute_join(node, ctx, iter(left_pages), iter(right_pages)))
        ref = rows_of(reference_join(node, make_ctx(), left_pages, right_pages))
        assert_identical(vec, ref)
        # The ("a", 7) page is incomparable; the ("b", None) page is fine.
        assert ctx.stats.rows_processed_fallback == 2
        assert ctx.stats.rows_processed_vectorized == 2

    @settings(max_examples=25, deadline=None)
    @given(
        left=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=40,
        ),
        right=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=25,
        ),
        join_type=st.sampled_from(["inner", "left"]),
    )
    def test_property_join_matches_reference(self, left, right, join_type):
        left_pages = paged([BIGINT, BIGINT], left, page_size=7)
        right_pages = paged([BIGINT, BIGINT], right, page_size=6)
        node = join_node(
            join_type,
            [("lk", BIGINT), ("lv", BIGINT)],
            [("rk", BIGINT), ("rv", BIGINT)],
            [("lk", "rk")],
        )
        vec, ref = run_join_both(node, left_pages, right_pages)
        assert_identical(vec, ref)


class TestSortAndTopNDifferential:
    def _pages(self, seed, n=120):
        rng = random.Random(seed)
        rows = [
            (
                rng.choice([None, 1, 2, 3]),
                rng.choice(["a", "b", None, "c"]),
                rng.uniform(-5, 5),
            )
            for _ in range(n)
        ]
        return paged([BIGINT, VARCHAR, DOUBLE], rows, page_size=19)

    @pytest.mark.parametrize(
        "directions", [[True, True], [False, True], [True, False], [False, False]]
    )
    def test_sort_matches_reference(self, directions):
        pages = self._pages(3)
        src = source_node([("a", BIGINT), ("b", VARCHAR), ("v", DOUBLE)])
        by_name = {v.name: v for v in src.outputs}
        node = SortNode(
            source=src,
            order_by=(
                (by_name["a"], directions[0]),
                (by_name["b"], directions[1]),
            ),
        )
        vec = rows_of(execute_sort(node, make_ctx(), iter(pages)))
        ref = _sorted_rows(node, iter(pages))
        assert_identical(vec, ref)

    def test_sort_is_stable(self):
        rows = [(1, "x", float(i)) for i in range(50)]
        pages = paged([BIGINT, VARCHAR, DOUBLE], rows, page_size=8)
        src = source_node([("a", BIGINT), ("b", VARCHAR), ("v", DOUBLE)])
        by_name = {v.name: v for v in src.outputs}
        node = SortNode(source=src, order_by=((by_name["a"], True),))
        vec = rows_of(execute_sort(node, make_ctx(), iter(pages)))
        assert vec == rows  # equal keys keep arrival order

    @pytest.mark.parametrize("count", [0, 1, 5, 17, 1000])
    def test_topn_matches_truncated_stable_sort(self, count):
        pages = self._pages(6)
        src = source_node([("a", BIGINT), ("b", VARCHAR), ("v", DOUBLE)])
        by_name = {v.name: v for v in src.outputs}
        node = TopNNode(
            source=src,
            count=count,
            order_by=((by_name["a"], True), (by_name["b"], False)),
        )
        got = rows_of(execute_topn(node, make_ctx(), iter(pages)))
        expected = _sorted_rows(node, iter(self._pages(6)))[:count]
        assert_identical(got, expected)


class TestKernels:
    def test_factorize_keys_null_and_values(self):
        block = PrimitiveBlock.from_values(BIGINT, [3, None, 3, 1, None])
        codes, uniques = kernels.factorize_keys([block])
        assert uniques[codes[0]] == (3,)
        assert uniques[codes[1]] == (None,)
        assert uniques[codes[3]] == (1,)
        assert codes[0] == codes[2] and codes[1] == codes[4]

    def test_factorize_keys_unsupported_returns_none(self):
        from repro.core.types import ArrayType
        block = block_from_values(ArrayType(BIGINT), [[1], [2]])
        assert kernels.factorize_keys([block]) is None

    def test_take_nullable_pads_nulls(self):
        block = PrimitiveBlock.from_values(BIGINT, [10, 20, 30])
        positions = np.array([2, -1, 0], dtype=np.int64)
        mask = positions < 0
        taken = kernels.take_nullable(block, positions, mask)
        assert taken.to_list() == [30, None, 10]

    def test_expand_matches_preserves_probe_order(self):
        codes = np.array([1, 0, 1, 2], dtype=np.int64)
        matches = [
            np.array([5], dtype=np.int64),
            np.array([7, 8], dtype=np.int64),
            np.array([], dtype=np.int64),
        ]
        probe, build = kernels.expand_matches(codes, matches)
        assert probe.tolist() == [0, 0, 1, 2, 2]
        assert build.tolist() == [7, 8, 5, 7, 8]

    def test_join_key_index_probe_and_expand(self):
        build = PrimitiveBlock.from_values(BIGINT, [10, 20, None, 10])
        index = kernels.build_join_index([build])
        probe = PrimitiveBlock.from_values(BIGINT, [20, 99, 10, None])
        codes = index.probe_codes([probe], 4)
        assert codes[1] == -1 and codes[3] == -1  # no match / null key
        probe_pos, build_pos = index.expand(codes)
        assert probe_pos.tolist() == [0, 2, 2]
        # Build positions come back in insertion order (rows 0 and 3).
        assert build_pos.tolist() == [1, 0, 3]

    def test_join_key_index_multi_column(self):
        a = PrimitiveBlock.from_values(BIGINT, [1, 1, 2])
        b = block_from_values(VARCHAR, ["x", "y", "x"])
        index = kernels.build_join_index([a, b])
        pa = PrimitiveBlock.from_values(BIGINT, [1, 2, 1])
        pb = block_from_values(VARCHAR, ["y", "y", None])
        codes = index.probe_codes([pa, pb], 3)
        probe_pos, build_pos = index.expand(codes)
        assert probe_pos.tolist() == [0]
        assert build_pos.tolist() == [1]

    def test_concat_pages_vectorized_matches_values(self):
        a = Page.from_rows([BIGINT, VARCHAR], [(1, "x"), (None, None)])
        b = Page.from_rows([BIGINT, VARCHAR], [(3, "y")])
        merged = concat_pages([BIGINT, VARCHAR], [a, b])
        assert merged.to_rows() == [(1, "x"), (None, None), (3, "y")]
        assert isinstance(merged.block(0), PrimitiveBlock)
        assert merged.block(0).values.dtype == np.int64
