"""UNION / UNION ALL end-to-end tests."""

import pytest

from repro.common.errors import SemanticError
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session


@pytest.fixture
def engine():
    connector = MemoryConnector()
    connector.create_table(
        "db", "a", [("k", BIGINT), ("name", VARCHAR)], [(1, "x"), (2, "y")]
    )
    connector.create_table(
        "db", "b", [("k", BIGINT), ("name", VARCHAR)], [(2, "y"), (3, "z")]
    )
    connector.create_table("db", "c", [("v", DOUBLE)], [(1.5,), (2.5,)])
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


class TestUnionAll:
    def test_concatenates(self, engine):
        result = engine.execute("SELECT k FROM a UNION ALL SELECT k FROM b")
        assert sorted(r[0] for r in result.rows) == [1, 2, 2, 3]

    def test_keeps_duplicates(self, engine):
        result = engine.execute(
            "SELECT name FROM a UNION ALL SELECT name FROM b"
        )
        assert sorted(r[0] for r in result.rows) == ["x", "y", "y", "z"]

    def test_three_way_chain(self, engine):
        result = engine.execute(
            "SELECT k FROM a UNION ALL SELECT k FROM b UNION ALL SELECT k FROM a"
        )
        assert len(result.rows) == 6

    def test_column_names_from_first_branch(self, engine):
        result = engine.execute(
            "SELECT k AS key_col FROM a UNION ALL SELECT k FROM b"
        )
        assert result.column_names == ["key_col"]

    def test_expressions_in_branches(self, engine):
        result = engine.execute(
            "SELECT k * 10 FROM a UNION ALL SELECT k + 100 FROM b"
        )
        assert sorted(r[0] for r in result.rows) == [10, 20, 102, 103]

    def test_numeric_widening_across_branches(self, engine):
        result = engine.execute("SELECT k FROM a UNION ALL SELECT v FROM c")
        assert sorted(r[0] for r in result.rows) == [1, 1.5, 2, 2.5]

    def test_union_feeds_aggregation_via_subquery(self, engine):
        result = engine.execute(
            "SELECT count(*) FROM "
            "(SELECT k FROM a UNION ALL SELECT k FROM b) u"
        )
        assert result.rows == [(4,)]


class TestUnionDistinct:
    def test_deduplicates(self, engine):
        result = engine.execute("SELECT k FROM a UNION SELECT k FROM b")
        assert sorted(r[0] for r in result.rows) == [1, 2, 3]

    def test_union_distinct_keyword(self, engine):
        result = engine.execute("SELECT name FROM a UNION DISTINCT SELECT name FROM b")
        assert sorted(r[0] for r in result.rows) == ["x", "y", "z"]

    def test_mixed_chain_dedups(self, engine):
        result = engine.execute(
            "SELECT k FROM a UNION ALL SELECT k FROM a UNION SELECT k FROM b"
        )
        assert sorted(r[0] for r in result.rows) == [1, 2, 3]


class TestUnionErrors:
    def test_column_count_mismatch(self, engine):
        with pytest.raises(SemanticError, match="columns"):
            engine.execute("SELECT k, name FROM a UNION ALL SELECT k FROM b")

    def test_incompatible_types(self, engine):
        with pytest.raises(SemanticError, match="incompatible"):
            engine.execute("SELECT k FROM a UNION ALL SELECT name FROM b")


class TestUnionUnderOptimizer:
    def test_optimizer_equivalence(self, engine):
        sql = (
            "SELECT name, count(*) FROM "
            "(SELECT name FROM a UNION ALL SELECT name FROM b) u "
            "GROUP BY name ORDER BY 1"
        )
        optimized = engine.execute(sql)
        unopt = PrestoEngine(
            catalog=engine.catalog, session=engine.session, enable_optimizer=False
        )
        assert optimized.rows == unopt.execute(sql).rows
