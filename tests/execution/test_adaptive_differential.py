"""Differential oracle for the adaptive execution stack.

Every query runs with the full adaptive stack on — ANALYZE statistics
feeding cost-based join ordering, runtime dynamic filters, and adaptive
exchange partitioning — and must return exactly what the direct
in-process pipeline (the repo's standing oracle) returns: with fault
injection at 10% rates, under the concurrent cluster event loop, and
bit-for-bit deterministically across identical runs.
"""

import pytest

from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, VARCHAR
from repro.execution.cluster import PrestoClusterSim
from repro.execution.engine import PrestoEngine
from repro.execution.faults import FaultInjector
from repro.planner.analyzer import Session
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem


def normalize(row):
    return tuple(
        float(f"{value:.10g}") if isinstance(value, float) else value for value in row
    )


def canonical(rows):
    return sorted(map(repr, map(normalize, rows)))


def make_adaptive_engine(analyzed=True, **engine_kwargs):
    connector = MemoryConnector(split_size=47)
    connector.create_table("db", "lineitem", LINEITEM_COLUMNS, generate_lineitem(300))
    connector.create_table(
        "db",
        "orders",
        [("orderkey", BIGINT), ("priority", VARCHAR)],
        [(i, f"p{i % 3}") for i in range(1, 80)],
    )
    connector.create_table(
        "db",
        "priorities",
        [("priority", VARCHAR), ("rank", BIGINT)],
        [("p0", 1), ("p1", 2), ("p2", 3)],
    )
    engine = PrestoEngine(
        session=Session(catalog="memory", schema="db"),
        adaptive_partitioning=True,
        target_partition_rows=500,
        **engine_kwargs,
    )
    engine.register_connector("memory", connector)
    if analyzed:
        for table in ("lineitem", "orders", "priorities"):
            engine.execute(f"ANALYZE TABLE {table}")
    return engine


QUERIES = [
    # Join with a selective build side: dynamic filter prunes the probe.
    "SELECT count(*), sum(l.quantity) FROM lineitem l "
    "JOIN orders o ON l.orderkey = o.orderkey WHERE o.priority = 'p1'",
    # Three-way chain: CBO reorders, dynamic filters stack per join.
    "SELECT p.rank, count(*) FROM lineitem l "
    "JOIN orders o ON l.orderkey = o.orderkey "
    "JOIN priorities p ON o.priority = p.priority "
    "GROUP BY p.rank",
    # Empty build side: every probe split skips.
    "SELECT count(*) FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey "
    "WHERE o.priority = 'no-such'",
    # Grouped aggregation exercising adaptive repartitioning.
    "SELECT returnflag, linestatus, sum(extendedprice), count(*) "
    "FROM lineitem GROUP BY returnflag, linestatus",
    # Left join must bypass dynamic filtering yet still agree.
    "SELECT count(o.priority) FROM lineitem l "
    "LEFT JOIN orders o ON l.orderkey = o.orderkey",
]

STATS_FIELDS = [
    "tasks_total",
    "tasks_retried",
    "stages_total",
    "rows_scanned",
    "rows_output",
    "rows_exchanged",
    "dynamic_filters_built",
    "dynamic_filter_rows_pruned",
    "dynamic_filter_splits_skipped",
    "simulated_ms",
]


class TestAdaptiveDifferential:
    def test_staged_agrees_with_direct_oracle(self):
        engine = make_adaptive_engine()
        for sql in QUERIES:
            staged = engine.execute(sql)
            direct = engine.execute_direct(sql)
            assert canonical(staged.rows) == canonical(direct.rows), sql

    def test_adaptive_stack_actually_engaged(self):
        engine = make_adaptive_engine()
        result = engine.execute(QUERIES[0])
        assert result.stats.dynamic_filters_built >= 1
        assert result.stats.dynamic_filter_rows_pruned > 0

    def test_unanalyzed_engine_still_agrees(self):
        engine = make_adaptive_engine(analyzed=False)
        for sql in QUERIES:
            staged = engine.execute(sql)
            direct = engine.execute_direct(sql)
            assert canonical(staged.rows) == canonical(direct.rows), sql


class TestAdaptiveUnderFaults:
    @pytest.mark.parametrize("seed", [1, 7, 13])
    def test_task_faults_converge_to_oracle(self, seed):
        clean = [make_adaptive_engine().execute(sql).rows for sql in QUERIES]
        engine = make_adaptive_engine(
            fault_injector=FaultInjector(seed=seed, task_failure_rate=0.1)
        )
        retried = 0
        for sql, expected in zip(QUERIES, clean):
            result = engine.execute(sql)
            retried += result.stats.tasks_retried
            assert canonical(result.rows) == canonical(expected), sql
        assert retried > 0, "10% task fault rate never fired across the suite"

    def test_split_faults_converge_to_oracle(self):
        clean = [make_adaptive_engine().execute(sql).rows for sql in QUERIES]
        engine = make_adaptive_engine(
            fault_injector=FaultInjector(seed=5, split_failure_rate=0.1)
        )
        for sql, expected in zip(QUERIES, clean):
            assert canonical(engine.execute(sql).rows) == canonical(expected), sql


class TestAdaptiveConcurrent:
    def run_concurrent(self, fault_injector=None):
        engine = make_adaptive_engine(fault_injector=fault_injector)
        cluster = PrestoClusterSim(workers=4, slots_per_worker=2)
        handles = [
            cluster.submit_engine_handle(engine, sql)[0] for sql in QUERIES
        ]
        cluster.run_until_idle()
        assert cluster.max_concurrent_running() > 1, "nothing actually overlapped"
        return handles

    def test_concurrent_matches_sequential(self):
        sequential_engine = make_adaptive_engine()
        sequential = [sequential_engine.execute(sql) for sql in QUERIES]
        handles = self.run_concurrent()
        for sql, handle, expected in zip(QUERIES, handles, sequential):
            assert handle.error is None, f"{sql}: {handle.error}"
            result = handle.result()
            assert canonical(result.rows) == canonical(expected.rows), sql
            for field in STATS_FIELDS:
                assert getattr(result.stats, field) == getattr(
                    expected.stats, field
                ), f"{field} diverged for {sql}"

    def test_concurrent_with_faults_matches_sequential(self):
        injector = FaultInjector(seed=11, task_failure_rate=0.1)
        sequential_engine = make_adaptive_engine(fault_injector=injector)
        sequential = [sequential_engine.execute(sql) for sql in QUERIES]
        handles = self.run_concurrent(
            fault_injector=FaultInjector(seed=11, task_failure_rate=0.1)
        )
        for sql, handle, expected in zip(QUERIES, handles, sequential):
            result = handle.result()
            assert canonical(result.rows) == canonical(expected.rows), sql
            assert result.stats.tasks_retried == expected.stats.tasks_retried, sql


class TestDeterminism:
    def run_suite(self):
        engine = make_adaptive_engine(
            fault_injector=FaultInjector(seed=42, task_failure_rate=0.1)
        )
        outputs = []
        for sql in QUERIES:
            result = engine.execute(sql)
            stats = result.stats.as_dict()
            stats.pop("query_id", None)
            outputs.append((result.rows, stats))
        return outputs

    def test_identical_runs_are_byte_identical(self):
        # Same seed, same submission order: rows, retry decisions, and
        # every stats counter (including simulated time) must reproduce.
        first, second = self.run_suite(), self.run_suite()
        assert repr(first) == repr(second)
