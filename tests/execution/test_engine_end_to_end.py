"""End-to-end tests: SQL in, rows out, through the full engine pipeline."""

import pytest

from repro.common.errors import InsufficientResourcesError, SemanticError
from repro.connectors.memory import MemoryConnector
from repro.connectors.spi import Catalog
from repro.core.types import BIGINT, BOOLEAN, DOUBLE, RowType, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session

from tests.obs.helpers import assert_query_observable


@pytest.fixture
def engine():
    connector = MemoryConnector(split_size=3)  # force multiple splits
    connector.create_table(
        "sales",
        "orders",
        [("order_id", BIGINT), ("city", VARCHAR), ("amount", DOUBLE), ("open", BOOLEAN)],
        [
            (1, "sf", 10.0, True),
            (2, "sf", 20.0, False),
            (3, "nyc", 5.0, True),
            (4, "nyc", 15.0, True),
            (5, "chi", 7.5, False),
            (6, "sf", 2.5, True),
            (7, "chi", 30.0, True),
        ],
    )
    connector.create_table(
        "sales",
        "cities",
        [("city", VARCHAR), ("state", VARCHAR)],
        [("sf", "CA"), ("nyc", "NY"), ("chi", "IL")],
    )
    engine = PrestoEngine(session=Session(catalog="memory", schema="sales"))
    engine.register_connector("memory", connector)
    return engine


class TestBasicQueries:
    def test_select_all(self, engine):
        result = engine.execute("SELECT * FROM orders")
        assert len(result) == 7
        assert result.column_names == ["order_id", "city", "amount", "open"]

    def test_projection(self, engine):
        result = engine.execute("SELECT city, amount FROM orders")
        assert result.column_names == ["city", "amount"]
        assert (result.rows[0]) == ("sf", 10.0)

    def test_filter(self, engine):
        result = engine.execute("SELECT order_id FROM orders WHERE amount > 10")
        assert sorted(r[0] for r in result.rows) == [2, 4, 7]

    def test_arithmetic_projection(self, engine):
        result = engine.execute("SELECT order_id, amount * 2 AS double_amount FROM orders WHERE order_id = 1")
        assert result.rows == [(1, 20.0)]

    def test_in_predicate(self, engine):
        result = engine.execute("SELECT order_id FROM orders WHERE city IN ('sf', 'chi')")
        assert sorted(r[0] for r in result.rows) == [1, 2, 5, 6, 7]

    def test_between(self, engine):
        result = engine.execute("SELECT order_id FROM orders WHERE amount BETWEEN 7 AND 16")
        assert sorted(r[0] for r in result.rows) == [1, 4, 5]

    def test_like(self, engine):
        result = engine.execute("SELECT order_id FROM orders WHERE city LIKE 's%'")
        assert sorted(r[0] for r in result.rows) == [1, 2, 6]

    def test_boolean_column_filter(self, engine):
        result = engine.execute("SELECT count(*) FROM orders WHERE open")
        assert result.rows == [(5,)]

    def test_limit(self, engine):
        result = engine.execute("SELECT order_id FROM orders LIMIT 3")
        assert len(result) == 3

    def test_select_without_from(self, engine):
        result = engine.execute("SELECT 1 + 1 AS two, 'x' AS s")
        assert result.rows == [(2, "x")]

    def test_case_expression(self, engine):
        result = engine.execute(
            "SELECT order_id, CASE WHEN amount > 10 THEN 'big' ELSE 'small' END AS size "
            "FROM orders WHERE order_id <= 2 ORDER BY order_id"
        )
        assert result.rows == [(1, "small"), (2, "big")]

    def test_cast(self, engine):
        result = engine.execute("SELECT cast(amount AS bigint) FROM orders WHERE order_id = 2")
        assert result.rows == [(20,)]


class TestAggregation:
    def test_global_count(self, engine):
        assert engine.execute("SELECT count(*) FROM orders").rows == [(7,)]

    def test_group_by(self, engine):
        result = engine.execute(
            "SELECT city, count(*), sum(amount) FROM orders GROUP BY city ORDER BY city"
        )
        assert result.rows == [
            ("chi", 2, 37.5),
            ("nyc", 2, 20.0),
            ("sf", 3, 32.5),
        ]

    def test_group_by_ordinal(self, engine):
        result = engine.execute("SELECT city, max(amount) FROM orders GROUP BY 1 ORDER BY 1")
        assert result.rows[0] == ("chi", 30.0)

    def test_having(self, engine):
        result = engine.execute(
            "SELECT city, count(*) AS c FROM orders GROUP BY city HAVING count(*) > 2"
        )
        assert result.rows == [("sf", 3)]

    def test_avg_and_min(self, engine):
        result = engine.execute("SELECT avg(amount), min(amount) FROM orders")
        assert result.rows[0][0] == pytest.approx(90.0 / 7)
        assert result.rows[0][1] == 2.5

    def test_count_distinct(self, engine):
        result = engine.execute("SELECT count(DISTINCT city) FROM orders")
        assert result.rows == [(3,)]

    def test_approx_distinct(self, engine):
        result = engine.execute("SELECT approx_distinct(city) FROM orders")
        assert result.rows == [(3,)]

    def test_group_key_expression(self, engine):
        result = engine.execute(
            "SELECT amount > 10, count(*) FROM orders GROUP BY amount > 10 ORDER BY 2"
        )
        assert result.rows == [(True, 3), (False, 4)]

    def test_empty_group_produces_single_row(self, engine):
        result = engine.execute("SELECT count(*) FROM orders WHERE amount > 1000")
        assert result.rows == [(0,)]

    def test_bare_column_outside_group_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("SELECT city, amount FROM orders GROUP BY city")


class TestOrderingAndDistinct:
    def test_order_by(self, engine):
        result = engine.execute("SELECT order_id FROM orders ORDER BY amount DESC")
        assert result.rows[0] == (7,)
        assert result.rows[-1] == (6,)

    def test_order_by_alias(self, engine):
        result = engine.execute("SELECT amount AS a FROM orders ORDER BY a LIMIT 2")
        assert [r[0] for r in result.rows] == [2.5, 5.0]

    def test_order_by_hidden_column(self, engine):
        # ORDER BY a column not in the SELECT list.
        result = engine.execute("SELECT order_id FROM orders ORDER BY amount LIMIT 1")
        assert result.rows == [(6,)]
        assert result.column_names == ["order_id"]

    def test_distinct(self, engine):
        result = engine.execute("SELECT DISTINCT city FROM orders")
        assert sorted(r[0] for r in result.rows) == ["chi", "nyc", "sf"]

    def test_topn_via_order_limit(self, engine):
        result = engine.execute("SELECT city, amount FROM orders ORDER BY amount DESC LIMIT 2")
        assert result.rows == [("chi", 30.0), ("sf", 20.0)]


class TestJoins:
    def test_inner_join(self, engine):
        result = engine.execute(
            "SELECT o.order_id, c.state FROM orders o JOIN cities c ON o.city = c.city "
            "WHERE o.amount > 10 ORDER BY o.order_id"
        )
        assert result.rows == [(2, "CA"), (4, "NY"), (7, "IL")]

    def test_join_group_by(self, engine):
        result = engine.execute(
            "SELECT c.state, sum(o.amount) FROM orders o JOIN cities c ON o.city = c.city "
            "GROUP BY c.state ORDER BY 1"
        )
        assert result.rows == [("CA", 32.5), ("IL", 37.5), ("NY", 20.0)]

    def test_left_join(self, engine):
        connector = engine.catalog.connector("memory")
        connector.create_table(
            "sales", "extra", [("city", VARCHAR), ("note", VARCHAR)], [("sf", "hq")]
        )
        result = engine.execute(
            "SELECT o.city, e.note FROM orders o LEFT JOIN extra e ON o.city = e.city "
            "WHERE o.order_id IN (1, 3) ORDER BY o.order_id"
        )
        assert result.rows == [("sf", "hq"), ("nyc", None)]

    def test_cross_join(self, engine):
        result = engine.execute(
            "SELECT count(*) FROM orders CROSS JOIN cities"
        )
        assert result.rows == [(21,)]

    def test_join_with_non_equi_filter(self, engine):
        result = engine.execute(
            "SELECT count(*) FROM orders o JOIN cities c ON o.city = c.city AND o.amount > 10"
        )
        assert result.rows == [(3,)]

    def test_big_join_raises_insufficient_resources(self, engine):
        # Section XII.C: "Presto has limitations for big joins ... will
        # return an error, with message 'Insufficient Resource'".
        engine.max_build_rows = 2
        with pytest.raises(InsufficientResourcesError):
            engine.execute("SELECT count(*) FROM orders o JOIN cities c ON o.city = c.city")


class TestSubqueries:
    def test_subquery_in_from(self, engine):
        result = engine.execute(
            "SELECT sub.c FROM (SELECT city AS c, count(*) AS n FROM orders GROUP BY city) sub "
            "WHERE sub.n > 2"
        )
        assert result.rows == [("sf",)]


class TestNestedData:
    def test_struct_dereference(self):
        base_type = RowType.of(("city_id", BIGINT), ("driver_uuid", VARCHAR))
        connector = MemoryConnector()
        connector.create_table(
            "rawdata",
            "trips",
            [("base", base_type), ("datestr", VARCHAR)],
            [
                ({"city_id": 12, "driver_uuid": "d1"}, "2017-03-02"),
                ({"city_id": 7, "driver_uuid": "d2"}, "2017-03-02"),
                ({"city_id": 12, "driver_uuid": "d3"}, "2017-03-03"),
            ],
        )
        engine = PrestoEngine(session=Session(catalog="memory", schema="rawdata"))
        engine.register_connector("memory", connector)
        # The paper's section V.C example query shape.
        result = engine.execute(
            "SELECT base.driver_uuid FROM trips "
            "WHERE datestr = '2017-03-02' AND base.city_id IN (12)"
        )
        assert result.rows == [("d1",)]

    def test_group_by_nested_field(self):
        base_type = RowType.of(("city_id", BIGINT),)
        connector = MemoryConnector()
        connector.create_table(
            "rawdata",
            "trips",
            [("base", base_type)],
            [({"city_id": 1},), ({"city_id": 1},), ({"city_id": 2},)],
        )
        engine = PrestoEngine(session=Session(catalog="memory", schema="rawdata"))
        engine.register_connector("memory", connector)
        result = engine.execute(
            "SELECT base.city_id, count(*) FROM trips GROUP BY base.city_id ORDER BY 1"
        )
        assert result.rows == [(1, 2), (2, 1)]


class TestErrors:
    def test_unknown_table(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("SELECT * FROM nope")

    def test_unknown_column(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("SELECT missing FROM orders")

    def test_type_mismatch(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("SELECT city + 1 FROM orders")

    def test_ambiguous_column(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("SELECT city FROM orders o JOIN cities c ON o.city = c.city")


class TestExplain:
    def test_explain_renders_plan(self, engine):
        text = engine.explain("SELECT city FROM orders WHERE amount > 10")
        assert "TableScan" in text
        assert "Output" in text

    def test_stats_populated(self, engine):
        result = engine.execute("SELECT count(*) FROM orders")
        assert result.stats.splits_scanned >= 3  # split_size=3 over 7 rows
        assert result.stats.rows_scanned == 7


class TestObservability:
    # Every shape this suite exercises — scans, joins, aggregations,
    # limits — must also pass the trace/metrics invariants.
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM orders",
            "SELECT order_id FROM orders WHERE amount > 10",
            "SELECT city, sum(amount) FROM orders GROUP BY city",
            "SELECT o.order_id, c.state FROM orders o JOIN cities c ON o.city = c.city",
            "SELECT order_id FROM orders ORDER BY amount DESC LIMIT 3",
        ],
    )
    def test_queries_are_observable(self, engine, sql):
        result = engine.execute(sql)
        assert_query_observable(result, engine.metrics)
