"""Adaptive exchange partitioning tests.

The exchange buffer partitions lazily — producer pages accumulate in
arrival order and are routed only at the first partitioned read — which
opens the window where the scheduler right-sizes the downstream stage's
partition count from the observed build volume.  These tests cover the
buffer's laziness contract and the end-to-end effect: small intermediate
volumes run fewer hash tasks, with byte-identical results.
"""

import pytest

from repro.common.errors import ExecutionError
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.execution.exchange import ExchangeBuffer
from repro.execution.scheduler import DEFAULT_TARGET_PARTITION_ROWS
from repro.planner.analyzer import Session
from repro.planner.fragmenter import Exchange, ExchangeKind
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem

from repro.connectors.memory import MemoryConnector


def page_of(keys):
    return Page.from_rows([BIGINT], [(k,) for k in keys])


def partitioned_buffer(count=4):
    exchange = Exchange(
        kind=ExchangeKind.REPARTITION,
        source_fragment=1,
        partition_keys=("k",),
        partitioned=True,
    )
    return ExchangeBuffer(exchange, partition_count=count, key_channels=[0])


class TestLazyExchangeBuffer:
    def test_rows_added_counts_before_any_read(self):
        buffer = partitioned_buffer()
        buffer.add(page_of(range(10)))
        buffer.add(page_of(range(7)))
        assert buffer.rows_added == 17

    def test_set_partition_count_before_read_routes_accordingly(self):
        buffer = partitioned_buffer(count=4)
        buffer.add(page_of(range(100)))
        buffer.set_partition_count(2)
        rows = [
            page.position_count
            for p in range(2)
            for page in buffer.pages_for_partition(p)
        ]
        assert sum(rows) == 100
        with pytest.raises(IndexError):
            buffer.pages_for_partition(2)

    def test_all_partitions_cover_all_rows(self):
        buffer = partitioned_buffer(count=3)
        buffer.add(page_of(range(50)))
        seen = sorted(
            row[0]
            for p in range(3)
            for page in buffer.pages_for_partition(p)
            for row in page.to_rows()
        )
        assert seen == list(range(50))

    def test_partition_placement_is_deterministic(self):
        a = partitioned_buffer(count=4)
        b = partitioned_buffer(count=4)
        for buf in (a, b):
            buf.add(page_of(range(64)))
        for p in range(4):
            rows_a = [r for page in a.pages_for_partition(p) for r in page.to_rows()]
            rows_b = [r for page in b.pages_for_partition(p) for r in page.to_rows()]
            assert rows_a == rows_b

    def test_all_pages_sees_late_adds(self):
        buffer = partitioned_buffer(count=2)
        buffer.add(page_of(range(10)))
        assert sum(p.position_count for p in buffer.all_pages()) == 10
        buffer.add(page_of(range(5)))
        assert sum(p.position_count for p in buffer.all_pages()) == 15

    def test_non_partitioned_buffer_ignores_count(self):
        buffer = ExchangeBuffer(
            Exchange(kind=ExchangeKind.GATHER, source_fragment=1)
        )
        buffer.add(page_of(range(9)))
        buffer.set_partition_count(5)  # no-op for GATHER
        assert buffer.partition_count == 1
        assert sum(p.position_count for p in buffer.pages_for_partition(0)) == 9

    def test_invalid_partition_count_rejected(self):
        with pytest.raises(ExecutionError):
            partitioned_buffer().set_partition_count(0)


def make_engine(rows=200, **engine_kwargs):
    connector = MemoryConnector(split_size=47)
    connector.create_table("db", "lineitem", LINEITEM_COLUMNS, generate_lineitem(rows))
    connector.create_table(
        "db",
        "dim",
        [("orderkey", BIGINT), ("label", VARCHAR)],
        [(i, f"order-{i}") for i in range(1, 60)],
    )
    engine = PrestoEngine(
        session=Session(catalog="memory", schema="db"), hash_partitions=8, **engine_kwargs
    )
    engine.register_connector("memory", connector)
    return engine


GROUP_BY_SQL = (
    "SELECT d.label, sum(l.quantity) FROM lineitem l "
    "JOIN dim d ON l.orderkey = d.orderkey GROUP BY d.label"
)


class TestAdaptivePartitioning:
    def test_small_volume_runs_fewer_tasks(self):
        baseline = make_engine().execute(GROUP_BY_SQL)
        adaptive = make_engine(
            adaptive_partitioning=True, target_partition_rows=1_000
        ).execute(GROUP_BY_SQL)
        assert adaptive.stats.tasks_total < baseline.stats.tasks_total
        assert sorted(adaptive.rows) == sorted(baseline.rows)

    def test_large_target_collapses_to_single_partition(self):
        adaptive = make_engine(
            adaptive_partitioning=True, target_partition_rows=10_000_000
        ).execute(GROUP_BY_SQL)
        baseline = make_engine().execute(GROUP_BY_SQL)
        assert adaptive.stats.tasks_total < baseline.stats.tasks_total
        assert sorted(adaptive.rows) == sorted(baseline.rows)

    def test_tiny_target_keeps_configured_partitions(self):
        # Target of 1 row/partition wants more partitions than configured;
        # the count is capped at hash_partitions, so plans are unchanged.
        adaptive = make_engine(
            adaptive_partitioning=True, target_partition_rows=1
        ).execute(GROUP_BY_SQL)
        baseline = make_engine().execute(GROUP_BY_SQL)
        assert adaptive.stats.tasks_total == baseline.stats.tasks_total
        assert sorted(adaptive.rows) == sorted(baseline.rows)

    def test_default_is_off(self):
        engine = make_engine()
        assert engine.adaptive_partitioning is False
        assert DEFAULT_TARGET_PARTITION_ROWS == 65_536

    def test_agrees_with_direct_oracle(self):
        engine = make_engine(adaptive_partitioning=True, target_partition_rows=500)
        staged = engine.execute(GROUP_BY_SQL)
        direct = engine.execute_direct(GROUP_BY_SQL)
        assert sorted(staged.rows) == sorted(direct.rows)

    def test_invalid_target_rejected(self):
        engine = make_engine(adaptive_partitioning=True, target_partition_rows=0)
        with pytest.raises(ExecutionError):
            engine.execute(GROUP_BY_SQL)

    def test_deterministic_across_runs(self):
        runs = [
            make_engine(adaptive_partitioning=True, target_partition_rows=1_000)
            .execute(GROUP_BY_SQL)
            for _ in range(2)
        ]
        assert runs[0].rows == runs[1].rows
        a, b = (r.stats.as_dict() for r in runs)
        a.pop("query_id"), b.pop("query_id")
        assert a == b
