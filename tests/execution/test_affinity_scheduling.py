"""Affinity scheduling and the worker data cache (section VII, RaptorX)."""

from repro.common.clock import SimulatedClock
from repro.execution.cluster import PrestoClusterSim


def run_repeated_workload(affinity: bool, rounds: int = 6, noisy: bool = False):
    cluster = PrestoClusterSim(
        workers=4,
        slots_per_worker=2,
        clock=SimulatedClock(),
        affinity_scheduling=affinity,
    )
    keys = [f"/warehouse/t/part-{i}.parquet" for i in range(8)]
    latencies = []
    for round_index in range(rounds):
        if noisy:
            # Background load shifts least-loaded placement between
            # rounds; affinity placement stays pinned to the key hash.
            cluster.submit_query([30.0 + 17.0 * (round_index % 3)] * (round_index % 5 + 1))
        execution = cluster.submit_query([100.0] * len(keys), split_keys=keys)
        cluster.run_until_idle()
        latencies.append(execution.latency_ms)
    hits = sum(w.cache_hits for w in cluster.workers.values())
    return cluster, latencies, hits


class TestAffinityScheduling:
    def test_affinity_routes_same_key_to_same_worker(self):
        cluster, _, hits = run_repeated_workload(affinity=True)
        # After the first round every split is a cache hit.
        assert hits >= 8 * 5

    def test_no_affinity_scatters_keys_under_noise(self):
        _, _, affinity_hits = run_repeated_workload(affinity=True, noisy=True)
        _, _, random_hits = run_repeated_workload(affinity=False, noisy=True)
        # Least-loaded placement still gets incidental hits, but fewer.
        assert affinity_hits > random_hits

    def test_cache_hits_cut_latency(self):
        _, latencies, _ = run_repeated_workload(affinity=True)
        assert latencies[-1] < latencies[0]

    def test_split_keys_length_validated(self):
        import pytest

        from repro.common.errors import ExecutionError

        cluster = PrestoClusterSim(workers=1)
        with pytest.raises(ExecutionError):
            cluster.submit_query([1.0, 2.0], split_keys=["only-one"])

    def test_affinity_falls_back_when_preferred_busy(self):
        cluster = PrestoClusterSim(
            workers=2, slots_per_worker=1, clock=SimulatedClock(), affinity_scheduling=True
        )
        # All splits share one key: the preferred worker has one slot, so
        # the scheduler must still use the other worker to make progress.
        execution = cluster.submit_query([50.0] * 6, split_keys=["k"] * 6)
        cluster.run_until_idle()
        assert execution.finished_at is not None
        busy_counts = [w.completed_splits for w in cluster.workers.values()]
        assert all(c > 0 for c in busy_counts)
