"""End-to-end tests for lambda (higher-order) functions in SQL.

Table I lists LambdaDefinitionExpression as a first-class RowExpression;
these tests exercise it through real queries: transform / filter /
any_match over array columns, including outer-column capture.
"""

import pytest

from repro.common.errors import SemanticError
from repro.connectors.memory import MemoryConnector
from repro.core.types import ArrayType, BIGINT, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session


@pytest.fixture
def engine():
    connector = MemoryConnector()
    connector.create_table(
        "db",
        "t",
        [("id", BIGINT), ("nums", ArrayType(BIGINT)), ("bonus", BIGINT)],
        [
            (1, [1, 2, 3], 10),
            (2, [], 20),
            (3, None, 30),
            (4, [7], 40),
        ],
    )
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


class TestTransform:
    def test_basic(self, engine):
        result = engine.execute("SELECT id, transform(nums, x -> x * 2) FROM t ORDER BY id")
        assert result.rows == [
            (1, [2, 4, 6]),
            (2, []),
            (3, None),
            (4, [14]),
        ]

    def test_captures_outer_column(self, engine):
        result = engine.execute(
            "SELECT id, transform(nums, x -> x + bonus) FROM t ORDER BY id"
        )
        assert result.rows[0] == (1, [11, 12, 13])
        assert result.rows[3] == (4, [47])

    def test_type_change(self, engine):
        result = engine.execute(
            "SELECT transform(nums, x -> cast(x AS varchar)) FROM t WHERE id = 1"
        )
        assert result.rows == [(["1", "2", "3"],)]


class TestFilter:
    def test_basic(self, engine):
        result = engine.execute(
            "SELECT id, filter(nums, x -> x >= 2) FROM t ORDER BY id"
        )
        assert result.rows == [(1, [2, 3]), (2, []), (3, None), (4, [7])]

    def test_non_boolean_lambda_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("SELECT filter(nums, x -> x + 1) FROM t")


class TestAnyMatch:
    def test_in_where_clause(self, engine):
        result = engine.execute(
            "SELECT id FROM t WHERE any_match(nums, x -> x > 5) ORDER BY id"
        )
        assert result.rows == [(4,)]

    def test_null_and_empty_arrays(self, engine):
        result = engine.execute(
            "SELECT id, any_match(nums, x -> x > 0) FROM t ORDER BY id"
        )
        assert result.rows == [(1, True), (2, False), (3, None), (4, True)]


class TestErrors:
    def test_lambda_outside_higher_order_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("SELECT lower(nums, x -> x) FROM t")

    def test_non_array_argument_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("SELECT transform(id, x -> x) FROM t")

    def test_multi_parameter_lambda_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("SELECT transform(nums, (x, y) -> x + y) FROM t")
