"""Smoke test for benchmarks/bench_lakehouse_freshness.py.

Runs the compaction-cadence sweep in ``--smoke`` mode (tiny stream, no
monotonicity gates) and validates the ``BENCH_lakehouse_freshness.json``
schema.  The correctness gates — every cadence matches the batch oracle
over the replayed log, equal rows across cadences, deterministic rerun —
hold even in smoke mode; only the freshness/churn targets are skipped.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_lakehouse_freshness.py"


def test_bench_lakehouse_freshness_smoke(tmp_path):
    output = tmp_path / "BENCH_lakehouse_freshness.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    result = subprocess.run(
        [sys.executable, str(BENCH), "--smoke", "--output", str(output)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr

    report = json.loads(output.read_text())
    assert report["smoke"] is True
    assert report["determinism"] == "rerun reproduced rows and stats exactly"

    entries = report["benchmarks"]
    assert len(entries) >= 2
    assert [e["name"] for e in entries] == sorted(
        (e["name"] for e in entries),
        key=lambda n: int(n.removeprefix("compact_").removesuffix("ms")),
    )
    for entry in entries:
        assert entry["rows_committed"] > 0
        assert entry["rows_sealed"] + entry["tail_rows"] == entry["rows_committed"]
        assert entry["snapshots_committed"] >= 1
        assert entry["sealed_freshness_lag_ms"] >= 0
        assert entry["query_set_sim_ms"] > 0
        assert entry["query_sets_per_sim_sec"] > 0
