"""Smoke test for benchmarks/bench_scan_baseline.py.

Runs the single-core scan baseline in ``--smoke`` mode (tiny inputs, no
speedup gates) and validates the ``BENCH_scan_baseline.json`` schema.
The correctness gate — both lanes return identical results — holds even
in smoke mode; only the rows/sec targets are skipped.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_scan_baseline.py"


def test_bench_scan_baseline_smoke(tmp_path):
    output = tmp_path / "BENCH_scan_baseline.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    result = subprocess.run(
        [sys.executable, str(BENCH), "--smoke", "--output", str(output)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr

    report = json.loads(output.read_text())
    assert report["benchmark"] == "scan_baseline"
    assert report["smoke"] is True
    assert report["rows"] > 0

    entries = report["benchmarks"]
    assert {b["name"] for b in entries} == {
        "page_shredding",
        "numeric_q6",
        "varchar_q1_groupby",
        "varchar_filter",
        "varchar_substr_length",
    }
    kinds = {b["name"]: b["kind"] for b in entries}
    assert kinds["page_shredding"] == "shredding"
    assert kinds["numeric_q6"] == "numeric"
    assert all(
        k == "varchar"
        for n, k in kinds.items()
        if n not in ("numeric_q6", "page_shredding")
    )
    for entry in entries:
        assert entry["rows"] == report["rows"]
        assert entry["native_ms"] > 0
        assert entry["object_ms"] > 0
        assert entry["native_rows_per_sec_per_core"] > 0
        assert entry["object_rows_per_sec_per_core"] > 0
        assert entry["speedup"] > 0
        # Smoke mode skips the speedup gates but never the correctness gate.
        assert entry["identical"] is True
