"""Runtime dynamic filter tests: build-side summaries pruning probe scans.

Covers the filter data structures (normalization, bloom determinism,
expression forms), end-to-end pruning through the memory connector
(row-level masks, empty-build split skips, the off switch, join types
that must NOT filter), the hive tiers (partition pruning at split
enumeration, row-group skips in the parquet reader), and retry safety
under fault injection — a retried probe task must see the identical
filter and produce identical rows.
"""

import math

import pytest

from repro.connectors.hive import HiveConnector, write_hive_partition
from repro.connectors.memory import MemoryConnector
from repro.core.functions import default_registry
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.dynamic_filters import (
    BloomFilter,
    DynamicFilter,
    build_dynamic_filter,
    _normalize,
)
from repro.execution.engine import PrestoEngine
from repro.execution.faults import FaultInjector
from repro.metastore.metastore import HiveMetastore
from repro.planner.analyzer import Session
from repro.storage.hdfs import HdfsFileSystem


def normalize(row):
    return tuple(
        float(f"{value:.10g}") if isinstance(value, float) else value for value in row
    )


def canonical(rows):
    return sorted(map(repr, map(normalize, rows)))


def assert_same(engine, sql, **expectations):
    staged = engine.execute(sql)
    direct = engine.execute_direct(sql)
    assert canonical(staged.rows) == canonical(direct.rows), sql
    for field, predicate in expectations.items():
        value = getattr(staged.stats, field)
        assert predicate(value), f"{field}={value} for {sql}"
    return staged


# -- unit: value normalization ----------------------------------------------


class TestNormalize:
    def test_integral_float_folds_to_int(self):
        assert _normalize(1.0) == 1 and isinstance(_normalize(1.0), int)

    def test_negative_zero_folds_to_zero(self):
        assert _normalize(-0.0) == 0 and isinstance(_normalize(-0.0), int)

    def test_fractional_float_kept(self):
        assert _normalize(1.5) == 1.5

    def test_nan_kept(self):
        result = _normalize(float("nan"))
        assert isinstance(result, float) and math.isnan(result)

    def test_non_numeric_passthrough(self):
        assert _normalize("abc") == "abc"


# -- unit: bloom filter ------------------------------------------------------


class TestBloomFilter:
    def test_no_false_negatives(self):
        values = [f"key-{i}" for i in range(500)]
        bloom = BloomFilter.build(values, len(values))
        assert all(bloom.contains(v) for v in values)

    def test_false_positive_rate_is_low(self):
        bloom = BloomFilter.build(range(1000), 1000)
        absent = [f"absent-{i}" for i in range(1000)]
        false_positives = sum(bloom.contains(v) for v in absent)
        # 10 bits/value + 4 hashes gives ~1% theoretical; allow headroom.
        assert false_positives < 50

    def test_deterministic_across_builds(self):
        a = BloomFilter.build(range(100), 100)
        b = BloomFilter.build(range(100), 100)
        assert (a.bits == b.bits).all()

    def test_equal_representations_collide(self):
        # 1 and 1.0 are SQL-equal; the bloom must not distinguish them.
        bloom = BloomFilter.build([1.0, 2.0], 2)
        assert bloom.contains(1) and bloom.contains(2)


# -- unit: build_dynamic_filter ---------------------------------------------


class TestBuildDynamicFilter:
    def test_small_build_keeps_exact_set(self):
        f = build_dynamic_filter([3, 1, 2, 2, None])
        assert f.values == frozenset({1, 2, 3})
        assert f.bloom is None
        assert (f.min_value, f.max_value) == (1, 3)
        assert f.build_distinct == 3 and f.build_rows == 5

    def test_large_build_degrades_to_bloom(self):
        f = build_dynamic_filter(range(50), exact_limit=10)
        assert f.values is None and f.bloom is not None
        assert (f.min_value, f.max_value) == (0, 49)
        assert all(f.matches(v) for v in range(50))
        assert not f.matches(1000)  # outside min/max: definite miss

    def test_all_null_build_is_empty(self):
        f = build_dynamic_filter([None, None])
        assert f.is_empty and f.build_rows == 2
        assert not f.matches(1)

    def test_null_probe_value_never_matches(self):
        f = build_dynamic_filter([1, 2, 3])
        assert not f.matches(None)

    def test_mixed_type_build_keeps_membership(self):
        f = build_dynamic_filter([1, "a"])  # unorderable: no min/max
        assert f.min_value is None and f.matches(1) and f.matches("a")
        assert not f.matches(2)


# -- unit: expression forms --------------------------------------------------


class TestToExpression:
    registry = default_registry()

    def test_single_value_is_equality(self):
        f = build_dynamic_filter([7])
        expr = f.to_expression("k", BIGINT, self.registry)
        assert "equal" in str(expr).lower()

    def test_small_set_is_in_list(self):
        f = build_dynamic_filter([1, 2, 3])
        expr = f.to_expression("k", BIGINT, self.registry)
        assert "in" in str(expr).lower()

    def test_large_set_is_range(self):
        f = build_dynamic_filter(range(500))
        expr = f.to_expression("k", BIGINT, self.registry)
        text = str(expr).lower()
        assert "in" not in text.split("(")[0]
        assert "greater_than_or_equal" in text and "less_than_or_equal" in text

    def test_expression_is_deterministic(self):
        a = build_dynamic_filter([5, 3, 9]).to_expression("k", BIGINT, self.registry)
        b = build_dynamic_filter([9, 5, 3]).to_expression("k", BIGINT, self.registry)
        assert str(a) == str(b)

    def test_empty_filter_has_no_expression(self):
        f = build_dynamic_filter([None])
        assert f.to_expression("k", BIGINT, self.registry) is None


# -- end-to-end: memory connector -------------------------------------------


def make_memory_engine(**engine_kwargs):
    connector = MemoryConnector(split_size=100)
    connector.create_table(
        "db",
        "fact",
        [("fk", BIGINT), ("v", DOUBLE)],
        [(i % 50, float(i)) for i in range(500)],
    )
    connector.create_table(
        "db",
        "dim",
        [("k", BIGINT), ("name", VARCHAR)],
        [(i, f"n{i % 5}") for i in range(50)],
    )
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **engine_kwargs)
    engine.register_connector("memory", connector)
    return engine


JOIN_SQL = (
    "SELECT count(*) FROM fact JOIN dim ON fact.fk = dim.k WHERE dim.name = 'n1'"
)


class TestMemoryEndToEnd:
    def test_inner_join_builds_filter_and_prunes_rows(self):
        engine = make_memory_engine()
        result = assert_same(
            engine,
            JOIN_SQL,
            dynamic_filters_built=lambda n: n == 1,
            dynamic_filter_rows_pruned=lambda n: n > 0,
        )
        # 10 of 50 dim keys survive the filter; each matches 10 fact rows.
        assert result.rows == [(100,)]
        pruned = result.stats.dynamic_filter_rows_pruned
        assert pruned == 500 - 100

    def test_empty_build_side_skips_all_splits(self):
        engine = make_memory_engine()
        result = assert_same(
            engine,
            "SELECT count(*) FROM fact JOIN dim ON fact.fk = dim.k "
            "WHERE dim.name = 'no-such-name'",
            dynamic_filter_splits_skipped=lambda n: n > 0,
        )
        assert result.rows == [(0,)]
        assert result.stats.rows_scanned < 500 + 50  # probe never scanned

    def test_off_switch_builds_nothing(self):
        engine = make_memory_engine(enable_dynamic_filtering=False)
        result = assert_same(
            engine,
            JOIN_SQL,
            dynamic_filters_built=lambda n: n == 0,
            dynamic_filter_rows_pruned=lambda n: n == 0,
        )
        assert result.rows == [(100,)]

    def test_left_join_is_never_filtered(self):
        # LEFT JOIN preserves unmatched probe rows; filtering the probe
        # side would silently drop them.
        engine = make_memory_engine()
        result = assert_same(
            engine,
            "SELECT count(*) FROM fact LEFT JOIN dim "
            "ON fact.fk = dim.k AND dim.name = 'n1'",
            dynamic_filters_built=lambda n: n == 0,
        )
        assert result.rows == [(500,)]

    def test_filtered_and_unfiltered_rows_agree(self):
        on = make_memory_engine().execute(JOIN_SQL)
        off = make_memory_engine(enable_dynamic_filtering=False).execute(JOIN_SQL)
        assert on.rows == off.rows

    def test_projection_over_join_still_traces_to_scan(self):
        engine = make_memory_engine()
        assert_same(
            engine,
            "SELECT sum(v) FROM fact JOIN dim ON fact.fk = dim.k "
            "WHERE dim.name = 'n2'",
            dynamic_filters_built=lambda n: n == 1,
            dynamic_filter_rows_pruned=lambda n: n > 0,
        )


class TestRetrySafety:
    def test_task_retries_see_identical_filter(self):
        # The filter is built once per query from the completed build
        # exchange; a retried probe task must re-apply the identical
        # filter and converge on the same rows.
        clean = make_memory_engine().execute(JOIN_SQL)
        faulty_engine = make_memory_engine(
            fault_injector=FaultInjector(seed=7, task_failure_rate=0.1)
        )
        faulty = faulty_engine.execute(JOIN_SQL)
        assert faulty.stats.tasks_retried > 0, "fault rate never fired"
        assert faulty.rows == clean.rows
        assert (
            faulty.stats.dynamic_filters_built == clean.stats.dynamic_filters_built
        )

    def test_split_level_faults_do_not_change_results(self):
        clean = make_memory_engine().execute(JOIN_SQL)
        faulty = make_memory_engine(
            fault_injector=FaultInjector(seed=3, split_failure_rate=0.1)
        ).execute(JOIN_SQL)
        assert faulty.rows == clean.rows


# -- end-to-end: hive tiers --------------------------------------------------


def make_hive_engine(**engine_kwargs):
    """Hive fact table (sorted keys, small row groups, two partitions)
    joined against a memory dimension table."""
    metastore = HiveMetastore()
    fs = HdfsFileSystem()
    metastore.create_table(
        "wh",
        "fact",
        [("sk", BIGINT), ("v", DOUBLE)],
        partition_keys=[("region", VARCHAR)],
    )
    for region, start in [("east", 0), ("west", 400)]:
        rows = [(start + i, float(start + i)) for i in range(400)]
        write_hive_partition(
            metastore,
            fs,
            "wh",
            "fact",
            [region],
            [Page.from_rows([BIGINT, DOUBLE], rows)],
            files=2,
            row_group_size=25,
        )
    hive = HiveConnector(metastore, fs, reader="new")
    memory = MemoryConnector()
    memory.create_table(
        "db", "dim", [("k", BIGINT), ("label", VARCHAR)], [(30 + i, "x") for i in range(10)]
    )
    memory.create_table(
        "db", "regions", [("r", VARCHAR)], [("east",)]
    )
    engine = PrestoEngine(session=Session(catalog="hive", schema="wh"), **engine_kwargs)
    engine.register_connector("hive", hive)
    engine.register_connector("memory", memory)
    return engine


class TestHiveTiers:
    def test_row_group_skips_from_sorted_key(self):
        # dim holds keys 30..39; the fact table is sorted by sk with
        # 25-row groups, so at most two groups per matching file overlap
        # the filter's [30, 39] range — everything else skips on footer
        # stats without decoding a page.
        engine = make_hive_engine()
        result = assert_same(
            engine,
            "SELECT count(*) FROM fact JOIN memory.db.dim d ON fact.sk = d.k",
            dynamic_filters_built=lambda n: n == 1,
            row_groups_skipped_by_dynamic_filter=lambda n: n >= 16,
        )
        assert result.rows == [(10,)]
        stats = result.stats
        assert stats.row_groups_skipped_by_dynamic_filter >= (
            stats.row_groups_total // 2
        ), "acceptance: at least half the probe row groups must skip"

    def test_partition_key_filter_prunes_splits(self):
        # Joining on the partition key prunes whole partitions at split
        # enumeration — the west partition's files are never listed.
        engine = make_hive_engine()
        full = engine.execute("SELECT count(*) FROM fact")
        result = assert_same(
            engine,
            "SELECT count(*) FROM fact JOIN memory.db.regions r ON fact.region = r.r",
            dynamic_filters_built=lambda n: n == 1,
        )
        assert result.rows == [(400,)]
        assert result.stats.splits_scanned < full.stats.splits_scanned

    def test_partition_key_filter_does_not_mask_rows(self):
        # Regression: a partition key is not a file column; evaluating the
        # partition conjunct against file pages would null-decode it and
        # drop every row.  The count proves rows survive.
        engine = make_hive_engine()
        result = engine.execute(
            "SELECT sum(v) FROM fact JOIN memory.db.regions r ON fact.region = r.r"
        )
        assert result.rows[0][0] == sum(float(i) for i in range(400))

    def test_explain_analyze_reports_dynamic_filtering(self):
        engine = make_hive_engine()
        text = engine.explain_analyze(
            "SELECT count(*) FROM fact JOIN memory.db.dim d ON fact.sk = d.k"
        )
        assert "Dynamic filters:" in text
