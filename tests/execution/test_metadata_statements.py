"""EXPLAIN / SHOW / DESCRIBE statement tests."""

import pytest

from repro.common.errors import SemanticError
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, RowType, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session


@pytest.fixture
def engine():
    connector = MemoryConnector()
    connector.create_table(
        "db",
        "trips",
        [("base", RowType.of(("city_id", BIGINT))), ("datestr", VARCHAR)],
        [({"city_id": 1}, "2020-01-01")],
    )
    connector.create_table("db", "cities", [("city_id", BIGINT)], [(1,)])
    connector.create_table("other", "misc", [("x", BIGINT)], [])
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


class TestExplain:
    def test_explain_returns_plan_rows(self, engine):
        result = engine.execute("EXPLAIN SELECT count(*) FROM trips")
        assert result.column_names == ["Query Plan"]
        text = "\n".join(r[0] for r in result.rows)
        assert "TableScan" in text and "Aggregation" in text

    def test_explain_distributed(self, engine):
        result = engine.execute(
            "EXPLAIN (TYPE DISTRIBUTED) SELECT datestr, count(*) FROM trips GROUP BY datestr"
        )
        text = "\n".join(r[0] for r in result.rows)
        assert "Fragment 0" in text
        assert "REPARTITION" in text

    def test_explain_multiline_query(self, engine):
        result = engine.execute("EXPLAIN\nSELECT *\nFROM trips")
        assert result.rows


class TestShow:
    def test_show_catalogs(self, engine):
        assert engine.execute("SHOW CATALOGS").rows == [("memory",)]

    def test_show_schemas(self, engine):
        result = engine.execute("SHOW SCHEMAS")
        assert sorted(r[0] for r in result.rows) == ["db", "other"]

    def test_show_schemas_from(self, engine):
        result = engine.execute("SHOW SCHEMAS FROM memory")
        assert ("db",) in result.rows

    def test_show_tables_default_schema(self, engine):
        result = engine.execute("SHOW TABLES")
        assert sorted(r[0] for r in result.rows) == ["cities", "trips"]

    def test_show_tables_qualified(self, engine):
        result = engine.execute("SHOW TABLES FROM memory.other")
        assert result.rows == [("misc",)]

    def test_show_tables_without_session_defaults(self):
        engine = PrestoEngine()
        with pytest.raises(SemanticError):
            engine.execute("SHOW TABLES")

    def test_show_preserves_identifier_case(self):
        # Regression: SHOW matched on the lowercased SQL, so a catalog or
        # schema registered with uppercase letters could never be listed.
        connector = MemoryConnector()
        connector.create_table("Sales", "Orders", [("x", BIGINT)], [])
        engine = PrestoEngine()
        engine.register_connector("MyCatalog", connector)
        schemas = engine.execute("SHOW SCHEMAS FROM MyCatalog")
        assert schemas.rows == [("Sales",)]
        tables = engine.execute("show tables from MyCatalog.Sales")
        assert tables.rows == [("Orders",)]


class TestDescribe:
    def test_describe_table(self, engine):
        result = engine.execute("DESCRIBE trips")
        assert result.column_names == ["Column", "Type"]
        assert ("base", "row(city_id bigint)") in result.rows
        assert ("datestr", "varchar") in result.rows

    def test_desc_shorthand_and_qualified_name(self, engine):
        result = engine.execute("DESC memory.other.misc")
        assert result.rows == [("x", "bigint")]

    def test_describe_missing_table(self, engine):
        with pytest.raises(SemanticError):
            engine.execute("DESCRIBE nope")

    def test_trailing_semicolon_tolerated(self, engine):
        assert engine.execute("SHOW CATALOGS;").rows == [("memory",)]

    def test_describe_uses_public_qualify(self, engine):
        # DESCRIBE resolves names through Analyzer.qualify(), the public
        # spelling of the SELECT name-resolution rules.
        from repro.planner.analyzer import Analyzer

        analyzer = Analyzer(engine.catalog, engine.session, engine.registry)
        assert analyzer.qualify(("trips",)) == ("memory", "db", "trips")
        assert analyzer.qualify(("other", "misc")) == ("memory", "other", "misc")
        with pytest.raises(SemanticError):
            analyzer.qualify(())
