"""Differential oracle for concurrent serving.

Queries executed concurrently through the cluster event loop must return
exactly what single-query execution returns — same rows (vs the direct
in-process pipeline, the repo's standing oracle) and same
:class:`QueryStats` (vs sequential staged execution), with and without
fault injection.  The fault injector's coin hashes
``(seed, query_id, stage, task, attempt)`` and ignores wall interleaving,
so as long as query ids are assigned in the same submission order the
concurrent run must retry and fail the exact same attempts the
sequential run does.
"""

import pytest

from repro.execution.cluster import PrestoClusterSim
from repro.execution.faults import FaultInjector
from repro.workloads.traffic_storm import QUERY_TEMPLATES, make_storm_engine

QUERIES = [sql for _, sql in QUERY_TEMPLATES]


def normalize(row):
    # Partial sums merge in a different order than the direct pipeline's
    # sequential fold, so floats may differ in the last ulp (the staged
    # differential suite's standing convention): compare at 10 digits.
    return tuple(
        float(f"{value:.10g}") if isinstance(value, float) else value for value in row
    )

STATS_FIELDS = [
    "tasks_total",
    "tasks_retried",
    "tasks_failed",
    "stages_total",
    "rows_scanned",
    "rows_output",
    "rows_exchanged",
    "simulated_ms",
    "task_records",
]


def run_concurrent(fault_injector=None, max_running=None):
    """All four templates in flight at once; returns handles in order."""
    engine = make_storm_engine(rows=250, fault_injector=fault_injector)
    cluster = PrestoClusterSim(workers=4, slots_per_worker=2)
    if max_running is not None:
        cluster.resource_group("g", max_running=max_running)
    handles = [
        cluster.submit_engine_handle(
            engine, sql, resource_group="g" if max_running is not None else None
        )[0]
        for sql in QUERIES
    ]
    cluster.run_until_idle()
    assert cluster.max_concurrent_running() > 1, "nothing actually overlapped"
    return handles


class TestConcurrentVsDirectOracle:
    def test_rows_equal_direct_pipeline(self):
        handles = run_concurrent()
        oracle = make_storm_engine(rows=250)
        for handle, sql in zip(handles, QUERIES):
            assert list(map(normalize, handle.result().rows)) == list(
                map(normalize, oracle.execute_direct(sql).rows)
            )

    def test_rows_equal_direct_pipeline_under_faults(self):
        # 10% of task attempts fail and retry; the retried run must still
        # converge to the fault-free direct answer.
        handles = run_concurrent(
            fault_injector=FaultInjector(seed=7, task_failure_rate=0.1)
        )
        oracle = make_storm_engine(rows=250)
        retried = 0
        for handle, sql in zip(handles, QUERIES):
            result = handle.result()
            retried += result.stats.tasks_retried
            assert list(map(normalize, result.rows)) == list(
                map(normalize, oracle.execute_direct(sql).rows)
            )
        assert retried > 0, "fault rate injected no retries; test is vacuous"


class TestConcurrentVsSequentialStaged:
    def assert_stats_equal(self, concurrent_handles, sequential_results):
        for handle, result in zip(concurrent_handles, sequential_results):
            concurrent_stats = handle.result().stats
            sequential_stats = result.stats
            for field in STATS_FIELDS:
                assert getattr(concurrent_stats, field) == getattr(
                    sequential_stats, field
                ), field
            assert handle.result().rows == result.rows

    def test_stats_identical_without_faults(self):
        handles = run_concurrent()
        sequential = make_storm_engine(rows=250)
        self.assert_stats_equal(handles, [sequential.execute(sql) for sql in QUERIES])

    def test_stats_identical_under_faults(self):
        seed = 7
        handles = run_concurrent(
            fault_injector=FaultInjector(seed=seed, task_failure_rate=0.1)
        )
        sequential = make_storm_engine(
            rows=250, fault_injector=FaultInjector(seed=seed, task_failure_rate=0.1)
        )
        self.assert_stats_equal(handles, [sequential.execute(sql) for sql in QUERIES])

    def test_stats_identical_with_admission_queueing(self):
        # A concurrency cap forces some queries through the queued path;
        # queueing must not change what the engine computes.
        handles = run_concurrent(max_running=2)
        sequential = make_storm_engine(rows=250)
        self.assert_stats_equal(handles, [sequential.execute(sql) for sql in QUERIES])
