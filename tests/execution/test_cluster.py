"""Tests for the cluster control-plane simulation (sections III, VIII, IX)."""

import pytest

from repro.common.clock import SimulatedClock
from repro.execution.cluster import (
    CoordinatorModel,
    PrestoClusterSim,
    WorkerState,
)


def run_query(cluster, splits):
    execution = cluster.submit_query(splits)
    cluster.run_until_idle()
    return execution


class TestScheduling:
    def test_single_query_completes(self):
        cluster = PrestoClusterSim(workers=2, slots_per_worker=2)
        execution = run_query(cluster, [100.0] * 4)
        assert execution.finished_at is not None
        assert execution.splits_done == 4

    def test_parallelism_bounds_latency(self):
        # 8 splits of 100ms on 8 slots ≈ one wave; on 2 slots ≈ four waves.
        wide = PrestoClusterSim(workers=4, slots_per_worker=2)
        narrow = PrestoClusterSim(workers=1, slots_per_worker=2)
        wide_exec = run_query(wide, [100.0] * 8)
        narrow_exec = run_query(narrow, [100.0] * 8)
        assert wide_exec.latency_ms < narrow_exec.latency_ms

    def test_splits_balance_across_workers(self):
        cluster = PrestoClusterSim(workers=4, slots_per_worker=1)
        run_query(cluster, [50.0] * 8)
        counts = [w.completed_splits for w in cluster.workers.values()]
        assert all(c == 2 for c in counts)

    def test_concurrent_queries(self):
        cluster = PrestoClusterSim(workers=2, slots_per_worker=2)
        first = cluster.submit_query([100.0] * 2)
        second = cluster.submit_query([100.0] * 2)
        cluster.run_until_idle()
        assert first.finished_at is not None
        assert second.finished_at is not None

    def test_empty_query_rejected(self):
        from repro.common.errors import ExecutionError

        with pytest.raises(ExecutionError):
            PrestoClusterSim().submit_query([])


class TestCoordinatorBottleneck:
    def test_planning_cost_grows_with_workers(self):
        model = CoordinatorModel()
        small = model.planning_cost_ms(workers=100, concurrent_queries=10)
        big = model.planning_cost_ms(workers=2000, concurrent_queries=10)
        assert big > 2 * small

    def test_planning_cost_grows_with_concurrency(self):
        # Section VIII: degradation with "more than 500 complex queries
        # running concurrently".
        model = CoordinatorModel()
        idle = model.planning_cost_ms(workers=100, concurrent_queries=10)
        busy = model.planning_cost_ms(workers=100, concurrent_queries=1000)
        assert busy > 5 * idle

    def test_latency_degrades_on_oversized_cluster(self):
        small = PrestoClusterSim(workers=100, slots_per_worker=1)
        large = PrestoClusterSim(workers=2500, slots_per_worker=1)
        small_latency = run_query(small, [100.0] * 10).latency_ms
        large_latency = run_query(large, [100.0] * 10).latency_ms
        assert large_latency > small_latency


class TestGracefulShutdown:
    def test_shutdown_drains_before_stopping(self):
        cluster = PrestoClusterSim(workers=2, slots_per_worker=1)
        execution = cluster.submit_query([1000.0, 1000.0])
        worker_id = next(iter(cluster.workers))
        cluster.request_graceful_shutdown(worker_id, grace_period_ms=100.0)
        cluster.run_until_idle()
        # Query finished despite the shrink; worker ended SHUT_DOWN.
        assert execution.finished_at is not None
        assert cluster.workers[worker_id].state is WorkerState.SHUT_DOWN

    def test_shutdown_waits_two_grace_periods(self):
        clock = SimulatedClock()
        cluster = PrestoClusterSim(workers=1, slots_per_worker=1, clock=clock)
        worker_id = next(iter(cluster.workers))
        cluster.request_graceful_shutdown(worker_id, grace_period_ms=1000.0)
        cluster.run_until_idle()
        worker = cluster.workers[worker_id]
        # Idle worker: grace + grace = 2000ms minimum before SHUT_DOWN.
        assert worker.shut_down_at >= 2000.0

    def test_no_new_tasks_after_coordinator_aware(self):
        cluster = PrestoClusterSim(workers=2, slots_per_worker=4)
        worker_id = next(iter(cluster.workers))
        cluster.request_graceful_shutdown(worker_id, grace_period_ms=10.0)
        cluster.run_until_idle()  # grace elapses; coordinator is aware
        execution = cluster.submit_query([50.0] * 8)
        cluster.run_until_idle()
        assert execution.finished_at is not None
        assert cluster.workers[worker_id].completed_splits == 0

    def test_expansion_adds_capacity(self):
        cluster = PrestoClusterSim(workers=1, slots_per_worker=1)
        before = run_query(cluster, [100.0] * 8).latency_ms
        for _ in range(7):
            cluster.add_worker()
        after = run_query(cluster, [100.0] * 8).latency_ms
        assert after < before

    def test_double_shutdown_request_is_idempotent(self):
        cluster = PrestoClusterSim(workers=1)
        worker_id = next(iter(cluster.workers))
        cluster.request_graceful_shutdown(worker_id, 10.0)
        cluster.request_graceful_shutdown(worker_id, 10.0)
        cluster.run_until_idle()
        assert cluster.workers[worker_id].state is WorkerState.SHUT_DOWN
