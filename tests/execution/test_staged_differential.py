"""Differential suite: staged execution agrees with the direct pipeline.

Every query runs twice — through the default staged path (fragments →
stages → tasks → exchanges, section III) and through the retained
single-pipeline oracle (``execute_direct``) — and must return the same
rows.  Staged group-by output arrives partition-major, so comparisons are
order-insensitive unless the query's ORDER BY fully determines the order.
"""

import pytest

from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, BOOLEAN, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem
from repro.workloads.trips import TRIPS_BASE_TYPE, generate_trips_rows

from tests.obs.helpers import assert_query_observable


def normalize(row):
    # Partial sums merge in a different order than a sequential fold, so
    # float results may differ in the last ulp (true of any distributed
    # engine); compare at 10 significant digits.
    return tuple(
        float(f"{value:.10g}") if isinstance(value, float) else value for value in row
    )


def canonical(rows):
    return sorted(map(repr, map(normalize, rows)))


def assert_same(engine, sql, ordered=False):
    staged = engine.execute(sql)
    direct = engine.execute_direct(sql)
    assert staged.column_names == direct.column_names
    if ordered:
        assert list(map(normalize, staged.rows)) == list(map(normalize, direct.rows)), sql
    else:
        assert canonical(staged.rows) == canonical(direct.rows), sql
    # The staged run really was staged: at least scan + output stages.
    assert staged.stats.stages_total >= 2, sql
    # Every differential query also checks the observability invariants:
    # well-formed span tree, critical path == simulated ms, span rows ==
    # QueryStats counters == metrics registry series.
    assert_query_observable(staged, engine.metrics)
    return staged


@pytest.fixture(scope="module")
def engine():
    connector = MemoryConnector(split_size=47)
    connector.create_table("db", "lineitem", LINEITEM_COLUMNS, generate_lineitem(300))
    connector.create_table(
        "db",
        "trips",
        [("base", TRIPS_BASE_TYPE), ("fare_usd", DOUBLE), ("completed", BOOLEAN)],
        generate_trips_rows(150, num_cities=12),
    )
    connector.create_table(
        "db",
        "nullable",
        [("k", VARCHAR), ("v", BIGINT)],
        [("a", 1), (None, 2), ("b", None), (None, None), ("a", 5), ("b", 6)] * 20,
    )
    connector.create_table(
        "db",
        "dim",
        [("orderkey", BIGINT), ("label", VARCHAR)],
        [(i, f"order-{i}") for i in range(1, 60)],
    )
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


TPCH_QUERIES = [
    # Q1-style pricing summary: grouped partial/final aggregation.
    (
        "SELECT returnflag, linestatus, sum(quantity), sum(extendedprice), "
        "avg(quantity), avg(extendedprice), avg(discount), count(*) "
        "FROM lineitem WHERE shipdate <= '1998-09-02' "
        "GROUP BY returnflag, linestatus ORDER BY returnflag, linestatus",
        True,
    ),
    # Q6-style revenue: global aggregation over a filter.
    (
        "SELECT sum(extendedprice * discount) FROM lineitem "
        "WHERE discount >= 0.03 AND quantity < 24",
        True,
    ),
    ("SELECT count(*), count(DISTINCT orderkey) FROM lineitem", True),
    (
        "SELECT shipmode, min(shipdate), max(receiptdate), count(*) "
        "FROM lineitem GROUP BY shipmode",
        False,
    ),
    ("SELECT orderkey, quantity FROM lineitem ORDER BY quantity DESC, orderkey LIMIT 10", True),
    ("SELECT DISTINCT returnflag FROM lineitem", False),
]


TRIPS_QUERIES = [
    ("SELECT count(*), sum(fare_usd) FROM trips WHERE completed", True),
    (
        "SELECT base.city_id, count(*), avg(fare_usd) FROM trips "
        "GROUP BY base.city_id ORDER BY 1",
        True,
    ),
    (
        "SELECT base.status, count(DISTINCT base.payment_method) FROM trips "
        "GROUP BY base.status",
        False,
    ),
    ("SELECT base.fare.breakdown.tip FROM trips WHERE fare_usd > 30", False),
]


class TestTpchDifferential:
    @pytest.mark.parametrize("sql,ordered", TPCH_QUERIES)
    def test_query(self, engine, sql, ordered):
        assert_same(engine, sql, ordered)


class TestTripsDifferential:
    @pytest.mark.parametrize("sql,ordered", TRIPS_QUERIES)
    def test_query(self, engine, sql, ordered):
        assert_same(engine, sql, ordered)


class TestShapeDifferential:
    def test_partitioned_join(self, engine):
        assert_same(
            engine,
            "SELECT d.label, count(*) FROM lineitem l JOIN dim d "
            "ON l.orderkey = d.orderkey GROUP BY d.label",
        )

    def test_broadcast_join(self, engine):
        engine.session.properties["join_distribution_type"] = "broadcast"
        try:
            assert_same(
                engine,
                "SELECT count(*) FROM lineitem l JOIN dim d ON l.orderkey = d.orderkey",
                ordered=True,
            )
        finally:
            engine.session.properties.clear()

    def test_union_all(self, engine):
        assert_same(
            engine,
            "SELECT orderkey FROM lineitem WHERE quantity < 10 "
            "UNION ALL SELECT orderkey FROM dim",
        )

    def test_union_of_aggregations(self, engine):
        assert_same(
            engine,
            "SELECT count(*) FROM lineitem UNION ALL SELECT count(*) FROM trips",
        )

    def test_null_group_keys(self, engine):
        assert_same(
            engine,
            "SELECT k, count(*), sum(v), count(v) FROM nullable GROUP BY k",
        )

    def test_null_join_keys_do_not_match(self, engine):
        assert_same(
            engine,
            "SELECT a.v, b.v FROM nullable a JOIN nullable b ON a.k = b.k",
        )

    def test_limit_over_many_splits(self, engine):
        # Each task caps at the partial limit; the final limit applies
        # after the gather, so exactly 7 rows come back.
        staged = engine.execute("SELECT orderkey FROM lineitem LIMIT 7")
        assert len(staged.rows) == 7

    def test_empty_result(self, engine):
        assert_same(
            engine, "SELECT orderkey FROM lineitem WHERE quantity < 0", ordered=True
        )

    def test_global_aggregation_over_empty_input(self, engine):
        assert_same(
            engine,
            "SELECT count(*), sum(quantity) FROM lineitem WHERE quantity < 0",
            ordered=True,
        )
