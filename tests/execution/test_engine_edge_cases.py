"""Engine edge cases: empty inputs, nulls everywhere, odd-but-legal SQL."""

import pytest

from repro.common.errors import SemanticError
from repro.connectors.memory import MemoryConnector
from repro.core.types import ArrayType, BIGINT, BOOLEAN, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session


def make_engine(rows, columns=None):
    connector = MemoryConnector(split_size=4)
    connector.create_table(
        "db",
        "t",
        columns or [("k", BIGINT), ("v", DOUBLE), ("s", VARCHAR)],
        rows,
    )
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


class TestEmptyTable:
    def setup_method(self):
        self.engine = make_engine([])

    def test_scan(self):
        assert self.engine.execute("SELECT * FROM t").rows == []

    def test_global_aggregates(self):
        result = self.engine.execute("SELECT count(*), sum(v), min(s) FROM t")
        assert result.rows == [(0, None, None)]

    def test_group_by_empty(self):
        assert self.engine.execute("SELECT k, count(*) FROM t GROUP BY k").rows == []

    def test_join_against_empty(self):
        assert (
            self.engine.execute(
                "SELECT count(*) FROM t a JOIN t b ON a.k = b.k"
            ).rows
            == [(0,)]
        )

    def test_order_limit_empty(self):
        assert self.engine.execute("SELECT v FROM t ORDER BY v LIMIT 5").rows == []


class TestNullHeavyData:
    def setup_method(self):
        self.engine = make_engine(
            [
                (None, None, None),
                (1, None, "a"),
                (None, 2.0, None),
                (1, 3.0, "a"),
            ]
        )

    def test_group_by_null_key_forms_a_group(self):
        result = self.engine.execute(
            "SELECT k, count(*) FROM t GROUP BY k ORDER BY 2 DESC"
        )
        assert sorted(result.rows, key=repr) == sorted([(1, 2), (None, 2)], key=repr)

    def test_null_join_keys_never_match(self):
        result = self.engine.execute(
            "SELECT count(*) FROM t a JOIN t b ON a.k = b.k"
        )
        assert result.rows == [(4,)]  # only the two k=1 rows join (2x2)

    def test_aggregates_skip_nulls(self):
        result = self.engine.execute("SELECT count(v), sum(v), avg(v) FROM t")
        assert result.rows == [(2, 5.0, 2.5)]

    def test_where_null_comparison_filters_out(self):
        assert self.engine.execute("SELECT count(*) FROM t WHERE v > 0").rows == [(2,)]

    def test_is_null_predicates(self):
        assert self.engine.execute("SELECT count(*) FROM t WHERE k IS NULL").rows == [(2,)]
        assert self.engine.execute("SELECT count(*) FROM t WHERE k IS NOT NULL").rows == [(2,)]

    def test_order_by_places_nulls_last_ascending(self):
        result = self.engine.execute("SELECT v FROM t ORDER BY v")
        assert result.rows == [(2.0,), (3.0,), (None,), (None,)]

    def test_distinct_includes_null(self):
        result = self.engine.execute("SELECT DISTINCT k FROM t")
        assert sorted(map(repr, result.rows)) == sorted(map(repr, [(1,), (None,)]))


class TestOddButLegal:
    def setup_method(self):
        self.engine = make_engine([(i, float(i), str(i)) for i in range(10)])

    def test_limit_zero(self):
        assert self.engine.execute("SELECT k FROM t LIMIT 0").rows == []

    def test_limit_larger_than_table(self):
        assert len(self.engine.execute("SELECT k FROM t LIMIT 1000").rows) == 10

    def test_constant_only_group(self):
        result = self.engine.execute("SELECT count(*) FROM t GROUP BY k > 100")
        assert result.rows == [(10,)]

    def test_select_same_column_twice(self):
        result = self.engine.execute("SELECT k, k FROM t WHERE k = 3")
        assert result.rows == [(3, 3)]
        assert result.column_names == ["k", "k"]

    def test_expression_only_select(self):
        assert self.engine.execute("SELECT 2 + 2").rows == [(4,)]

    def test_where_false_literal(self):
        assert self.engine.execute("SELECT k FROM t WHERE false").rows == []

    def test_where_true_literal(self):
        assert len(self.engine.execute("SELECT k FROM t WHERE true").rows) == 10

    def test_nested_subqueries(self):
        result = self.engine.execute(
            "SELECT max(x) FROM (SELECT k AS x FROM (SELECT k FROM t WHERE k < 8) inner_q) outer_q"
        )
        assert result.rows == [(7,)]

    def test_self_join_three_way(self):
        result = self.engine.execute(
            "SELECT count(*) FROM t a JOIN t b ON a.k = b.k JOIN t c ON b.k = c.k"
        )
        assert result.rows == [(10,)]

    def test_having_without_matching_groups(self):
        result = self.engine.execute(
            "SELECT k, count(*) FROM t GROUP BY k HAVING count(*) > 99"
        )
        assert result.rows == []

    def test_order_by_multiple_directions(self):
        engine = make_engine(
            [(1, 2.0, "b"), (1, 1.0, "a"), (2, 9.0, "c")],
        )
        result = engine.execute("SELECT k, v FROM t ORDER BY k DESC, v ASC")
        assert result.rows == [(2, 9.0), (1, 1.0), (1, 2.0)]


class TestSessionProperties:
    def test_broadcast_join_property_reaches_plan(self):
        engine = make_engine([(1, 1.0, "a")])
        engine.session.properties["join_distribution_type"] = "broadcast"
        plan = engine.plan("SELECT count(*) FROM t a JOIN t b ON a.k = b.k")
        from repro.planner.plan import JoinNode

        joins = [n for n in plan.walk() if isinstance(n, JoinNode)]
        assert joins[0].distribution == "broadcast"

    def test_default_is_partitioned(self):
        # Section XII.A: "we configure distributed hash join as default to
        # support larger joins."
        engine = make_engine([(1, 1.0, "a")])
        plan = engine.plan("SELECT count(*) FROM t a JOIN t b ON a.k = b.k")
        from repro.planner.plan import JoinNode

        joins = [n for n in plan.walk() if isinstance(n, JoinNode)]
        assert joins[0].distribution == "partitioned"
