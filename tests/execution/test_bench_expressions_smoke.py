"""Smoke test for benchmarks/bench_expressions.py + TPC-H lane assertion.

Runs the expression benchmark in ``--smoke`` mode (tiny inputs, no speedup
gates) and validates the ``BENCH_expressions.json`` schema; then runs the
TPC-H-style workload end to end and asserts its filters and projections
take the compiled vectorized lane — the interpreter-fallback counter must
stay at zero for the whitelisted function set.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.connectors.memory import MemoryConnector
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_expressions.py"


def test_bench_expressions_smoke(tmp_path):
    output = tmp_path / "BENCH_expressions.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    result = subprocess.run(
        [sys.executable, str(BENCH), "--smoke", "--output", str(output)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr

    report = json.loads(output.read_text())
    assert report["benchmark"] == "expressions"
    assert report["smoke"] is True

    entries = report["benchmarks"]
    assert {b["name"] for b in entries} == {"null_filter", "string_filter", "dictionary"}
    for entry in entries:
        assert entry["rows"] > 0
        assert entry["compiled_ms"] > 0
        assert entry["interpreted_ms"] > 0
        assert entry["speedup"] > 0
        assert entry["rows_per_sec"] > 0
        # Smoke mode skips the speedup gates but never the correctness gate.
        assert entry["identical"] is True


@pytest.fixture(scope="module")
def engine():
    connector = MemoryConnector(split_size=47)
    connector.create_table("db", "lineitem", LINEITEM_COLUMNS, generate_lineitem(300))
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


# TPC-H-style queries restricted to the whitelisted vectorized function
# set: comparisons (incl. varchar dates), arithmetic, BETWEEN, IN, LIKE,
# and the string kernels.
TPCH_VECTORIZED_QUERIES = [
    "SELECT returnflag, sum(quantity) FROM lineitem "
    "WHERE shipdate <= '1998-09-02' GROUP BY returnflag",
    "SELECT sum(extendedprice * discount) FROM lineitem "
    "WHERE discount >= 0.03 AND quantity < 24",
    "SELECT count(*) FROM lineitem "
    "WHERE quantity BETWEEN 5 AND 30 AND shipmode IN ('AIR', 'MAIL')",
    "SELECT orderkey, extendedprice * (1 - discount) FROM lineitem "
    "WHERE shipmode LIKE 'A%' LIMIT 50",
    "SELECT upper(shipmode), count(*) FROM lineitem GROUP BY upper(shipmode)",
]


@pytest.mark.parametrize("sql", TPCH_VECTORIZED_QUERIES)
def test_tpch_workload_takes_vectorized_lane(engine, sql):
    result = engine.execute(sql)
    stats = result.stats
    assert stats.expr_positions_vectorized > 0, sql
    assert stats.expr_positions_fallback == 0, (
        f"{sql}: {stats.expr_positions_fallback} positions fell back to the interpreter"
    )
