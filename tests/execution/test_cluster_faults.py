"""Cluster failure handling: worker crashes, FIFO scheduling, the
affinity-ring fix, and the graceful-shutdown drain path under load.

These pin the scheduling bugs the fault-tolerance work exposed: dead
workers polluting the affinity ring (keys could never re-home), LIFO
split scheduling (completion order reversed relative to submission), and
the crash/drain interactions.
"""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.hashing import stable_hash
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, VARCHAR
from repro.execution.cluster import PrestoClusterSim, WorkerState
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session


class TestWorkerCrash:
    def test_crash_requeues_in_flight_splits(self):
        cluster = PrestoClusterSim(workers=2, slots_per_worker=2, clock=SimulatedClock())
        execution = cluster.submit_query([100.0] * 8)
        victim = next(iter(cluster.workers))
        # Let work start, then kill the worker mid-flight.
        cluster.crash_worker_at(120.0, victim)
        cluster.run_until_idle()
        assert execution.finished_at is not None
        assert execution.splits_done == 8
        assert execution.splits_requeued > 0
        assert cluster.workers[victim].state is WorkerState.CRASHED

    def test_crashed_worker_never_scheduled_again(self):
        cluster = PrestoClusterSim(workers=2, slots_per_worker=2, clock=SimulatedClock())
        victim = next(iter(cluster.workers))
        cluster.crash_worker(victim)
        execution = cluster.submit_query([50.0] * 6)
        cluster.run_until_idle()
        assert execution.finished_at is not None
        assert cluster.workers[victim].completed_splits == 0
        assert victim in cluster.blacklisted_workers

    def test_crash_loses_worker_cache(self):
        cluster = PrestoClusterSim(
            workers=2, slots_per_worker=2, clock=SimulatedClock(), affinity_scheduling=True
        )
        cluster.submit_query([10.0] * 4, split_keys=["a", "b", "c", "d"])
        cluster.run_until_idle()
        crashed = [w for w in cluster.workers.values() if w.cached_keys]
        assert crashed
        cluster.crash_worker(crashed[0].worker_id)
        assert crashed[0].cached_keys == set()

    def test_stale_completion_event_ignored_after_crash(self):
        # The split's completion event fires after the crash requeued it;
        # it must not double-count the split.
        cluster = PrestoClusterSim(workers=2, slots_per_worker=1, clock=SimulatedClock())
        execution = cluster.submit_query([100.0, 100.0])
        victim = next(iter(cluster.workers))
        cluster.crash_worker_at(60.0, victim)
        cluster.run_until_idle()
        assert execution.splits_done == execution.splits_total == 2
        assert execution.finished_at is not None

    def test_crash_all_workers_then_expand_recovers(self):
        cluster = PrestoClusterSim(workers=1, slots_per_worker=1, clock=SimulatedClock())
        execution = cluster.submit_query([100.0] * 3)
        only = next(iter(cluster.workers))
        cluster.crash_worker_at(150.0, only)
        # New worker registers and picks up the orphaned work.
        cluster._at(200.0, cluster.add_worker)
        cluster.run_until_idle()
        assert execution.finished_at is not None
        assert execution.splits_done == 3

    def test_crash_is_idempotent(self):
        cluster = PrestoClusterSim(workers=2)
        victim = next(iter(cluster.workers))
        cluster.crash_worker(victim)
        assert cluster.crash_worker(victim) == []

    def test_engine_query_survives_crash(self):
        connector = MemoryConnector(split_size=5)
        connector.create_table(
            "db", "events", [("k", VARCHAR), ("v", BIGINT)],
            [(f"key-{i % 7}", i) for i in range(40)],
        )
        engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
        engine.register_connector("memory", connector)
        cluster = PrestoClusterSim(workers=2, slots_per_worker=1, clock=SimulatedClock())
        result, execution = cluster.submit_engine_query(
            engine, "SELECT k, count(*) FROM events GROUP BY k"
        )
        victim = next(iter(cluster.workers))
        cluster.crash_worker_at(60.0, victim)
        cluster.run_until_idle()
        assert result.rows  # engine result intact
        assert execution.finished_at is not None
        assert execution.splits_done == execution.splits_total


class TestFifoScheduling:
    def test_splits_run_in_submission_order(self):
        # One slot: splits must complete 0, 1, 2, ... not reversed.
        cluster = PrestoClusterSim(workers=1, slots_per_worker=1, clock=SimulatedClock())
        keys = [f"split-{i}" for i in range(6)]
        cluster.submit_query([10.0] * 6, split_keys=keys)
        order = []
        original = cluster._on_split_done

        def spy(assignment_id):
            assignment = cluster._assignments.get(assignment_id)
            if assignment is not None:
                order.append(assignment[2].data_key)
            original(assignment_id)

        cluster._on_split_done = spy
        cluster.run_until_idle()
        assert order == keys

    def test_cache_warms_in_submission_order(self):
        # The first-submitted split's key is cached first: with one slot
        # the first key seen again is a hit before later keys.
        cluster = PrestoClusterSim(workers=1, slots_per_worker=1, clock=SimulatedClock())
        cluster.submit_query([10.0, 10.0], split_keys=["first", "second"])
        cluster.run_until_idle()
        worker = next(iter(cluster.workers.values()))
        assert worker.cached_keys == {"first", "second"}


class TestAffinityRingRehoming:
    def test_ring_excludes_non_active_workers(self):
        # Regression: the ring was built from sorted(self.workers)
        # including SHUTTING_DOWN/SHUT_DOWN workers, so keys hashing to a
        # dead worker permanently lost affinity and never re-warmed.
        cluster = PrestoClusterSim(
            workers=3, slots_per_worker=4, clock=SimulatedClock(), affinity_scheduling=True
        )
        all_ids = sorted(cluster.workers)
        # A key that prefers the worker we are about to shut down.
        key = next(
            f"part-{i}"
            for i in range(1000)
            if all_ids[stable_hash(f"part-{i}") % len(all_ids)] == all_ids[0]
        )
        cluster.request_graceful_shutdown(all_ids[0], grace_period_ms=1.0)
        cluster.run_until_idle()  # coordinator now aware; worker drained
        survivors = sorted(
            w_id for w_id, w in cluster.workers.items()
            if w.state is WorkerState.ACTIVE
        )
        expected_home = survivors[stable_hash(key) % len(survivors)]
        # Repeat rounds of the key: all land on the new home, and from the
        # second round on they hit its cache.
        for _ in range(3):
            cluster.submit_query([10.0], split_keys=[key])
            cluster.run_until_idle()
        new_home = cluster.workers[expected_home]
        assert new_home.completed_splits == 3
        assert new_home.cache_hits == 2

    def test_rehoming_after_crash(self):
        cluster = PrestoClusterSim(
            workers=3, slots_per_worker=4, clock=SimulatedClock(), affinity_scheduling=True
        )
        all_ids = sorted(cluster.workers)
        key = next(
            f"part-{i}"
            for i in range(1000)
            if all_ids[stable_hash(f"part-{i}") % len(all_ids)] == all_ids[1]
        )
        cluster.submit_query([10.0], split_keys=[key])
        cluster.run_until_idle()
        assert cluster.workers[all_ids[1]].completed_splits == 1
        cluster.crash_worker(all_ids[1])
        survivors = sorted(
            w_id for w_id, w in cluster.workers.items()
            if w.state is WorkerState.ACTIVE
        )
        expected_home = survivors[stable_hash(key) % len(survivors)]
        for _ in range(2):
            cluster.submit_query([10.0], split_keys=[key])
            cluster.run_until_idle()
        assert cluster.workers[expected_home].completed_splits == 2
        assert cluster.workers[expected_home].cache_hits == 1


class TestGracefulShutdownUnderLoad:
    def test_drain_shuts_down_one_grace_period_after_last_split(self):
        # Worker has in-flight work when the shutdown becomes visible: it
        # drains, _on_split_done re-checks, and SHUT_DOWN lands exactly
        # one grace period after the last split completes.
        clock = SimulatedClock()
        cluster = PrestoClusterSim(workers=1, slots_per_worker=2, clock=clock)
        worker_id = next(iter(cluster.workers))
        execution = cluster.submit_query([500.0, 500.0])
        grace = 100.0
        cluster.request_graceful_shutdown(worker_id, grace_period_ms=grace)
        cluster.run_until_idle()
        worker = cluster.workers[worker_id]
        assert execution.finished_at is not None
        assert worker.state is WorkerState.SHUT_DOWN
        # Visibility landed mid-flight (grace < total work), so the drain
        # path went through _on_split_done's re-check.
        assert worker.shut_down_at == pytest.approx(execution.finished_at + grace)

    def test_drained_worker_takes_no_tasks_after_visibility(self):
        clock = SimulatedClock()
        cluster = PrestoClusterSim(workers=2, slots_per_worker=2, clock=clock)
        worker_id = next(iter(cluster.workers))
        cluster.submit_query([300.0] * 4)
        cluster.request_graceful_shutdown(worker_id, grace_period_ms=50.0)
        cluster.run_until_idle()
        completed_at_drain = cluster.workers[worker_id].completed_splits
        late = cluster.submit_query([50.0] * 4)
        cluster.run_until_idle()
        assert late.finished_at is not None
        assert cluster.workers[worker_id].completed_splits == completed_at_drain

    def test_crash_during_shutting_down_preempts_drain(self):
        clock = SimulatedClock()
        cluster = PrestoClusterSim(workers=2, slots_per_worker=1, clock=clock)
        execution = cluster.submit_query([1000.0] * 4)
        victim = next(iter(cluster.workers))
        cluster.request_graceful_shutdown(victim, grace_period_ms=100.0)
        # Crash while still draining its in-flight split.
        cluster.crash_worker_at(500.0, victim)
        cluster.run_until_idle()
        worker = cluster.workers[victim]
        assert worker.state is WorkerState.CRASHED  # not SHUT_DOWN
        assert execution.finished_at is not None
        assert execution.splits_done == 4
        assert execution.splits_requeued > 0


class TestQueryIdThreading:
    def test_engine_query_id_reaches_cluster_records(self):
        connector = MemoryConnector(split_size=10)
        connector.create_table(
            "db", "t", [("v", BIGINT)], [(i,) for i in range(30)]
        )
        engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
        engine.register_connector("memory", connector)
        cluster = PrestoClusterSim(workers=2, clock=SimulatedClock(), name="adhoc")
        result, execution = cluster.submit_engine_query(engine, "SELECT sum(v) FROM t")
        cluster.run_until_idle()
        engine_id = result.stats.query_id
        assert engine_id
        assert execution.query_id == f"adhoc-{engine_id}"
        assert execution.query_id in cluster.queries

    def test_resubmitting_same_engine_query_gets_unique_cluster_id(self):
        cluster = PrestoClusterSim(workers=1, clock=SimulatedClock())
        from repro.execution.cluster import SplitWork

        first = cluster.submit_tasks([SplitWork("", 1.0)], query_id="dup")
        second = cluster.submit_tasks([SplitWork("", 1.0)], query_id="dup")
        assert first.query_id == "dup"
        assert second.query_id != "dup"
        assert len(cluster.queries) == 2
