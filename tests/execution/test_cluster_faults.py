"""Cluster failure handling: worker crashes, FIFO scheduling, the
affinity-ring fix, and the graceful-shutdown drain path under load.

These pin the scheduling bugs the fault-tolerance work exposed: dead
workers polluting the affinity ring (keys could never re-home), LIFO
split scheduling (completion order reversed relative to submission), and
the crash/drain interactions.
"""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.ring import ConsistentHashRing
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, VARCHAR
from repro.execution.cluster import PrestoClusterSim, WorkerState
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session


class TestWorkerCrash:
    def test_crash_requeues_in_flight_splits(self):
        cluster = PrestoClusterSim(workers=2, slots_per_worker=2, clock=SimulatedClock())
        execution = cluster.submit_query([100.0] * 8)
        victim = next(iter(cluster.workers))
        # Let work start, then kill the worker mid-flight.
        cluster.crash_worker_at(120.0, victim)
        cluster.run_until_idle()
        assert execution.finished_at is not None
        assert execution.splits_done == 8
        assert execution.splits_requeued > 0
        assert cluster.workers[victim].state is WorkerState.CRASHED

    def test_crashed_worker_never_scheduled_again(self):
        cluster = PrestoClusterSim(workers=2, slots_per_worker=2, clock=SimulatedClock())
        victim = next(iter(cluster.workers))
        cluster.crash_worker(victim)
        execution = cluster.submit_query([50.0] * 6)
        cluster.run_until_idle()
        assert execution.finished_at is not None
        assert cluster.workers[victim].completed_splits == 0
        assert victim in cluster.blacklisted_workers

    def test_crash_loses_worker_cache(self):
        cluster = PrestoClusterSim(
            workers=2, slots_per_worker=2, clock=SimulatedClock(), affinity_scheduling=True
        )
        cluster.submit_query([10.0] * 4, split_keys=["a", "b", "c", "d"])
        cluster.run_until_idle()
        crashed = [w for w in cluster.workers.values() if len(w.data_cache) > 0]
        assert crashed
        cluster.crash_worker(crashed[0].worker_id)
        # Both tiers are gone: a restarted worker starts cold.
        assert len(crashed[0].data_cache) == 0
        assert crashed[0].data_cache.keys() == set()

    def test_stale_completion_event_ignored_after_crash(self):
        # The split's completion event fires after the crash requeued it;
        # it must not double-count the split.
        cluster = PrestoClusterSim(workers=2, slots_per_worker=1, clock=SimulatedClock())
        execution = cluster.submit_query([100.0, 100.0])
        victim = next(iter(cluster.workers))
        cluster.crash_worker_at(60.0, victim)
        cluster.run_until_idle()
        assert execution.splits_done == execution.splits_total == 2
        assert execution.finished_at is not None

    def test_crash_all_workers_then_expand_recovers(self):
        cluster = PrestoClusterSim(workers=1, slots_per_worker=1, clock=SimulatedClock())
        execution = cluster.submit_query([100.0] * 3)
        only = next(iter(cluster.workers))
        cluster.crash_worker_at(150.0, only)
        # New worker registers and picks up the orphaned work.
        cluster._at(200.0, cluster.add_worker)
        cluster.run_until_idle()
        assert execution.finished_at is not None
        assert execution.splits_done == 3

    def test_crash_is_idempotent(self):
        cluster = PrestoClusterSim(workers=2)
        victim = next(iter(cluster.workers))
        cluster.crash_worker(victim)
        assert cluster.crash_worker(victim) == []

    def test_engine_query_survives_crash(self):
        connector = MemoryConnector(split_size=5)
        connector.create_table(
            "db", "events", [("k", VARCHAR), ("v", BIGINT)],
            [(f"key-{i % 7}", i) for i in range(40)],
        )
        engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
        engine.register_connector("memory", connector)
        cluster = PrestoClusterSim(workers=2, slots_per_worker=1, clock=SimulatedClock())
        result, execution = cluster.submit_engine_query(
            engine, "SELECT k, count(*) FROM events GROUP BY k"
        )
        victim = next(iter(cluster.workers))
        cluster.crash_worker_at(60.0, victim)
        cluster.run_until_idle()
        assert result.rows  # engine result intact
        assert execution.finished_at is not None
        assert execution.splits_done == execution.splits_total


class TestFifoScheduling:
    def test_splits_run_in_submission_order(self):
        # One slot: splits must complete 0, 1, 2, ... not reversed.
        cluster = PrestoClusterSim(workers=1, slots_per_worker=1, clock=SimulatedClock())
        keys = [f"split-{i}" for i in range(6)]
        cluster.submit_query([10.0] * 6, split_keys=keys)
        order = []
        original = cluster._on_split_done

        def spy(assignment_id):
            assignment = cluster._assignments.get(assignment_id)
            if assignment is not None:
                order.append(assignment[2].data_key)
            original(assignment_id)

        cluster._on_split_done = spy
        cluster.run_until_idle()
        assert order == keys

    def test_cache_warms_in_submission_order(self):
        # The first-submitted split's key is cached first: with one slot
        # the first key seen again is a hit before later keys.
        cluster = PrestoClusterSim(workers=1, slots_per_worker=1, clock=SimulatedClock())
        cluster.submit_query([10.0, 10.0], split_keys=["first", "second"])
        cluster.run_until_idle()
        worker = next(iter(cluster.workers.values()))
        assert worker.data_cache.keys() == {"first", "second"}
        assert worker.data_cache.tier_of("first") == "hot"


class TestAffinityRingRehoming:
    def test_ring_excludes_non_active_workers(self):
        # Regression: the ring was built from sorted(self.workers)
        # including SHUTTING_DOWN/SHUT_DOWN workers, so keys hashing to a
        # dead worker permanently lost affinity and never re-warmed.
        cluster = PrestoClusterSim(
            workers=3, slots_per_worker=4, clock=SimulatedClock(), affinity_scheduling=True
        )
        all_ids = sorted(cluster.workers)
        # A key that prefers the worker we are about to shut down.
        key = next(
            f"part-{i}"
            for i in range(1000)
            if cluster.affinity_ring.lookup(f"part-{i}") == all_ids[0]
        )
        cluster.request_graceful_shutdown(all_ids[0], grace_period_ms=1.0)
        cluster.run_until_idle()  # coordinator now aware; worker drained
        survivors = [
            w_id for w_id, w in cluster.workers.items()
            if w.state is WorkerState.ACTIVE
        ]
        # Placement after the drain matches a ring built from survivors
        # alone — the drained worker's points are gone, nothing else moved.
        expected_home = ConsistentHashRing(sorted(survivors)).lookup(key)
        # Repeat rounds of the key: all land on the new home, and from the
        # second round on they hit its cache.
        for _ in range(3):
            cluster.submit_query([10.0], split_keys=[key])
            cluster.run_until_idle()
        new_home = cluster.workers[expected_home]
        assert new_home.completed_splits == 3
        assert new_home.cache_hits == 2

    def test_rehoming_after_crash(self):
        cluster = PrestoClusterSim(
            workers=3, slots_per_worker=4, clock=SimulatedClock(), affinity_scheduling=True
        )
        all_ids = sorted(cluster.workers)
        key = next(
            f"part-{i}"
            for i in range(1000)
            if cluster.affinity_ring.lookup(f"part-{i}") == all_ids[1]
        )
        cluster.submit_query([10.0], split_keys=[key])
        cluster.run_until_idle()
        assert cluster.workers[all_ids[1]].completed_splits == 1
        cluster.crash_worker(all_ids[1])
        survivors = [
            w_id for w_id, w in cluster.workers.items()
            if w.state is WorkerState.ACTIVE
        ]
        expected_home = ConsistentHashRing(sorted(survivors)).lookup(key)
        for _ in range(2):
            cluster.submit_query([10.0], split_keys=[key])
            cluster.run_until_idle()
        assert cluster.workers[expected_home].completed_splits == 2
        assert cluster.workers[expected_home].cache_hits == 1

    def test_single_crash_remaps_few_keys(self):
        # The headline fix: with modulo placement a single crash remapped
        # nearly every key; on the ring only the crashed worker's ~1/N
        # share moves.  Bound the remap fraction at 2/N.
        cluster = PrestoClusterSim(
            workers=8, slots_per_worker=4, clock=SimulatedClock(), affinity_scheduling=True
        )
        keys = [f"part-{i}" for i in range(2000)]
        before = {key: cluster.affinity_ring.lookup(key) for key in keys}
        victim = sorted(cluster.workers)[3]
        cluster.crash_worker(victim)
        moved = 0
        for key in keys:
            after = cluster.affinity_ring.lookup(key)
            if after != before[key]:
                # Only keys homed on the victim may move, and they must
                # land on a survivor.
                assert before[key] == victim
                assert after != victim
                moved += 1
        assert moved == sum(1 for home in before.values() if home == victim)
        assert moved / len(keys) <= 2 / len(cluster.workers)


class TestGracefulShutdownUnderLoad:
    def test_drain_shuts_down_one_grace_period_after_last_split(self):
        # Worker has in-flight work when the shutdown becomes visible: it
        # drains, _on_split_done re-checks, and SHUT_DOWN lands exactly
        # one grace period after the last split completes.
        clock = SimulatedClock()
        cluster = PrestoClusterSim(workers=1, slots_per_worker=2, clock=clock)
        worker_id = next(iter(cluster.workers))
        execution = cluster.submit_query([500.0, 500.0])
        grace = 100.0
        cluster.request_graceful_shutdown(worker_id, grace_period_ms=grace)
        cluster.run_until_idle()
        worker = cluster.workers[worker_id]
        assert execution.finished_at is not None
        assert worker.state is WorkerState.SHUT_DOWN
        # Visibility landed mid-flight (grace < total work), so the drain
        # path went through _on_split_done's re-check.
        assert worker.shut_down_at == pytest.approx(execution.finished_at + grace)

    def test_drained_worker_takes_no_tasks_after_visibility(self):
        clock = SimulatedClock()
        cluster = PrestoClusterSim(workers=2, slots_per_worker=2, clock=clock)
        worker_id = next(iter(cluster.workers))
        cluster.submit_query([300.0] * 4)
        cluster.request_graceful_shutdown(worker_id, grace_period_ms=50.0)
        cluster.run_until_idle()
        completed_at_drain = cluster.workers[worker_id].completed_splits
        late = cluster.submit_query([50.0] * 4)
        cluster.run_until_idle()
        assert late.finished_at is not None
        assert cluster.workers[worker_id].completed_splits == completed_at_drain

    def test_crash_during_shutting_down_preempts_drain(self):
        clock = SimulatedClock()
        cluster = PrestoClusterSim(workers=2, slots_per_worker=1, clock=clock)
        execution = cluster.submit_query([1000.0] * 4)
        victim = next(iter(cluster.workers))
        cluster.request_graceful_shutdown(victim, grace_period_ms=100.0)
        # Crash while still draining its in-flight split.
        cluster.crash_worker_at(500.0, victim)
        cluster.run_until_idle()
        worker = cluster.workers[victim]
        assert worker.state is WorkerState.CRASHED  # not SHUT_DOWN
        assert execution.finished_at is not None
        assert execution.splits_done == 4
        assert execution.splits_requeued > 0


class TestCrashCacheConsistency:
    def run_once(self):
        """Affinity workload with a mid-flight crash; serialized artifacts."""
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        cluster = PrestoClusterSim(
            workers=3,
            slots_per_worker=2,
            clock=SimulatedClock(),
            affinity_scheduling=True,
            metrics=metrics,
            name="faulty",
        )
        keys = [f"part-{i % 5}" for i in range(20)]
        cluster.submit_query([25.0] * len(keys), split_keys=keys)
        victim = sorted(cluster.workers)[1]
        cluster.crash_worker_at(80.0, victim)
        cluster.run_until_idle()
        cluster.submit_query([25.0] * len(keys), split_keys=keys)
        cluster.run_until_idle()
        return cluster, victim, {
            "timeline": cluster.timeline_trace().to_json(),
            "metrics": metrics.to_json(),
        }

    def test_crashed_tiers_empty_and_replay_deterministic(self):
        first_cluster, victim, first = self.run_once()
        # The crashed worker's cache is empty — both tiers dropped.
        assert len(first_cluster.workers[victim].data_cache) == 0
        # Survivors re-warmed: the second round hit their caches.
        assert any(
            w.cache_hits > 0
            for w_id, w in first_cluster.workers.items()
            if w_id != victim
        )
        # Same seedless-deterministic workload, byte-identical artifacts:
        # the cache charges only simulated time and hashes with crc32.
        _, _, second = self.run_once()
        assert first["timeline"] == second["timeline"]
        assert first["metrics"] == second["metrics"]


class TestQueryIdThreading:
    def test_engine_query_id_reaches_cluster_records(self):
        connector = MemoryConnector(split_size=10)
        connector.create_table(
            "db", "t", [("v", BIGINT)], [(i,) for i in range(30)]
        )
        engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
        engine.register_connector("memory", connector)
        cluster = PrestoClusterSim(workers=2, clock=SimulatedClock(), name="adhoc")
        result, execution = cluster.submit_engine_query(engine, "SELECT sum(v) FROM t")
        cluster.run_until_idle()
        engine_id = result.stats.query_id
        assert engine_id
        assert execution.query_id == f"adhoc-{engine_id}"
        assert execution.query_id in cluster.queries

    def test_resubmitting_same_engine_query_gets_unique_cluster_id(self):
        cluster = PrestoClusterSim(workers=1, clock=SimulatedClock())
        from repro.execution.cluster import SplitWork

        first = cluster.submit_tasks([SplitWork("", 1.0)], query_id="dup")
        second = cluster.submit_tasks([SplitWork("", 1.0)], query_id="dup")
        assert first.query_id == "dup"
        assert second.query_id != "dup"
        assert len(cluster.queries) == 2
