"""Smoke test for benchmarks/bench_fault_tolerance.py.

Runs the fault-tolerance sweep in ``--smoke`` mode and validates the
``BENCH_fault_tolerance.json`` schema plus the qualitative shape: task
retries dominate the no-retry configuration at every failure rate.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_fault_tolerance.py"


def test_bench_fault_tolerance_smoke(tmp_path):
    output = tmp_path / "BENCH_fault_tolerance.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    result = subprocess.run(
        [sys.executable, str(BENCH), "--smoke", "--output", str(output)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr

    report = json.loads(output.read_text())
    assert report["benchmark"] == "fault_tolerance"
    assert report["paper_section"].startswith("VIII/IX")
    assert report["smoke"] is True

    points = report["benchmarks"]
    by_key = {(p["task_failure_rate"], p["max_task_retries"]): p for p in points}
    rates = sorted({p["task_failure_rate"] for p in points})
    assert 0.0 in rates and len(rates) >= 2
    for point in points:
        assert 0.0 <= point["success_rate"] <= 1.0
        assert point["queries"] > 0
    # Zero faults: everything succeeds, nothing retried.
    assert by_key[(0.0, 0)]["success_rate"] == 1.0
    assert by_key[(0.0, 3)]["mean_tasks_retried"] == 0.0
    # Retries never hurt, and recover real failures at nonzero rates.
    for rate in rates:
        assert (
            by_key[(rate, 3)]["success_rate"] >= by_key[(rate, 0)]["success_rate"]
        )
    assert any(
        by_key[(rate, 3)]["success_rate"] > by_key[(rate, 0)]["success_rate"]
        for rate in rates
        if rate > 0
    )
