"""Tests for simulated S3 and PrestoS3FileSystem (section IX)."""

import itertools

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import StorageError
from repro.storage.s3 import S3Client, S3ServerError
from repro.storage.s3_filesystem import PrestoS3FileSystem


def make_fs(**kwargs):
    client = S3Client(clock=SimulatedClock())
    return PrestoS3FileSystem(client, "warehouse", **kwargs), client


class TestS3Client:
    def test_put_get_round_trip(self):
        client = S3Client()
        client.put_object("b", "k", b"data")
        assert client.get_object("b", "k") == b"data"

    def test_range_get(self):
        client = S3Client()
        client.put_object("b", "k", b"0123456789")
        assert client.get_object("b", "k", (2, 5)) == b"234"

    def test_missing_object(self):
        with pytest.raises(StorageError):
            S3Client().get_object("b", "nope")

    def test_list_objects_prefix(self):
        client = S3Client()
        client.put_object("b", "a/1", b"x")
        client.put_object("b", "a/2", b"y")
        client.put_object("b", "c/3", b"z")
        assert [o.key for o in client.list_objects("b", "a/")] == ["a/1", "a/2"]

    def test_request_stats(self):
        client = S3Client()
        client.put_object("b", "k", b"x")
        client.get_object("b", "k")
        client.head_object("b", "k")
        assert client.stats.put_requests == 1
        assert client.stats.get_requests == 1
        assert client.stats.head_requests == 1

    def test_latency_charged(self):
        clock = SimulatedClock()
        client = S3Client(clock=clock)
        client.put_object("b", "k", b"x" * 1_000_000)
        assert clock.now_ms() >= client.request_latency_ms + client.transfer_ms_per_mb


class TestS3Select:
    def test_projection_and_filter(self):
        client = S3Client()
        client.put_object("b", "t.csv", b"1,sf,10\n2,nyc,20\n3,sf,30\n")
        rows = client.select_object_content(
            "b", "t.csv", projection=[0, 2], predicate=lambda f: f[1] == "sf"
        )
        assert rows == [["1", "10"], ["3", "30"]]

    def test_select_downloads_fewer_bytes_than_get(self):
        client = S3Client()
        payload = b"\n".join(b"%d,city%d,%d" % (i, i, i * 10) for i in range(1000))
        client.put_object("b", "t.csv", payload)
        client.stats.reset()
        client.select_object_content("b", "t.csv", [0], lambda f: f[0] == "7")
        select_bytes = client.stats.bytes_downloaded
        client.stats.reset()
        client.get_object("b", "t.csv")
        full_bytes = client.stats.bytes_downloaded
        assert select_bytes < full_bytes / 100


class TestMultipartUpload:
    def test_parts_reassemble(self):
        client = S3Client()
        upload = client.create_multipart_upload("b", "big")
        client.upload_part(upload, 2, b"world")
        client.upload_part(upload, 1, b"hello ")
        client.complete_multipart_upload(upload)
        assert client.get_object("b", "big") == b"hello world"

    def test_unknown_upload_rejected(self):
        with pytest.raises(StorageError):
            S3Client().upload_part("nope", 1, b"x")


class TestLazySeek:
    def test_lazy_seek_defers_get(self):
        fs, client = make_fs()
        client.put_object("warehouse", "f", b"x" * 1000)
        stream = fs.open("/f")
        gets_before = client.stats.get_requests
        stream.seek(10)
        stream.seek(500)
        stream.seek(100)
        assert client.stats.get_requests == gets_before  # no GETs yet
        assert stream.read(5) == b"xxxxx"
        assert client.stats.get_requests == gets_before + 1

    def test_eager_seek_fetches_every_time(self):
        fs, client = make_fs(lazy_seek=False)
        client.put_object("warehouse", "f", b"x" * 1000)
        stream = fs.open("/f")
        gets_before = client.stats.get_requests
        stream.seek(10)
        stream.seek(500)
        stream.seek(100)
        assert client.stats.get_requests == gets_before + 3

    def test_read_within_buffer_is_free(self):
        fs, client = make_fs()
        client.put_object("warehouse", "f", b"0123456789" * 100)
        stream = fs.open("/f")
        stream.read(10)
        gets = client.stats.get_requests
        stream.read(10)  # still inside the 1MB buffer
        assert client.stats.get_requests == gets

    def test_read_across_windows(self):
        fs, client = make_fs(read_buffer_size=8)
        client.put_object("warehouse", "f", b"0123456789abcdef")
        stream = fs.open("/f")
        assert stream.read(12) == b"0123456789ab"


class TestExponentialBackoff:
    def test_retries_until_success(self):
        failures = itertools.chain([True, True, True], itertools.repeat(False))
        clock = SimulatedClock()
        client = S3Client(clock=clock, failure_injector=lambda op: next(failures))
        fs = PrestoS3FileSystem(client, "warehouse", backoff_base_ms=100)
        fs.create("/k", b"x")
        assert fs.stats.retries == 3
        # Delays: 100 + 200 + 400
        assert fs.stats.backoff_ms_total == 700

    def test_gives_up_after_max_retries(self):
        client = S3Client(failure_injector=lambda op: True)
        fs = PrestoS3FileSystem(client, "warehouse", max_retries=2)
        with pytest.raises(S3ServerError):
            fs.create("/k", b"x")
        assert fs.stats.retries == 2

    def test_backoff_is_exponential(self):
        failures = itertools.chain([True] * 5, itertools.repeat(False))
        client = S3Client(failure_injector=lambda op: next(failures))
        fs = PrestoS3FileSystem(client, "warehouse", backoff_base_ms=10)
        fs.create("/k", b"x")
        assert fs.stats.backoff_ms_total == 10 + 20 + 40 + 80 + 160


class TestMultipartFileSystem:
    def test_large_files_use_multipart(self):
        fs, client = make_fs(multipart_threshold=100, multipart_part_size=64)
        fs.create("/big", b"z" * 300)
        assert fs.stats.multipart_uploads == 1
        assert client.stats.multipart_part_uploads == 5  # ceil(300/64)
        assert client.get_object("warehouse", "big") == b"z" * 300

    def test_small_files_use_single_put(self):
        fs, client = make_fs(multipart_threshold=100)
        fs.create("/small", b"z" * 50)
        assert fs.stats.single_part_uploads == 1
        assert client.stats.multipart_part_uploads == 0

    def test_multipart_faster_than_sequential(self):
        # Parallel parts: wall clock ≈ one part, not the sum of parts.
        payload = b"z" * 10_000_000
        fs_multi, client_multi = make_fs(
            multipart_threshold=1, multipart_part_size=1_000_000
        )
        with_clock = client_multi.clock
        start = with_clock.now_ms()
        fs_multi.create("/big", payload)
        multipart_time = with_clock.now_ms() - start

        fs_single, client_single = make_fs(multipart_threshold=10**9)
        start = client_single.clock.now_ms()
        fs_single.create("/big", payload)
        single_time = client_single.clock.now_ms() - start
        assert multipart_time < single_time


class TestFileSystemApi:
    def test_list_files(self):
        fs, client = make_fs()
        client.put_object("warehouse", "dir/a", b"1")
        client.put_object("warehouse", "dir/b", b"22")
        files = fs.list_files("/dir")
        assert [f.path for f in files] == ["/dir/a", "/dir/b"]
        assert [f.size for f in files] == [1, 2]

    def test_exists(self):
        fs, client = make_fs()
        client.put_object("warehouse", "x", b"1")
        assert fs.exists("/x")
        assert not fs.exists("/y")

    def test_select_passthrough(self):
        fs, client = make_fs()
        client.put_object("warehouse", "t.csv", b"1,a\n2,b\n")
        assert fs.select("/t.csv", [1]) == [["a"], ["b"]]
