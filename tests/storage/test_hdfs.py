"""Tests for the simulated HDFS NameNode and filesystem."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import StorageError
from repro.storage.hdfs import HdfsFileSystem, NameNode


@pytest.fixture
def fs():
    clock = SimulatedClock()
    namenode = NameNode(clock=clock)
    fs = HdfsFileSystem(namenode)
    fs.create("/warehouse/trips/datestr=2017-03-02/part-0.parquet", b"aaa")
    fs.create("/warehouse/trips/datestr=2017-03-02/part-1.parquet", b"bbbb")
    fs.create("/warehouse/trips/datestr=2017-03-03/part-0.parquet", b"cc")
    return fs


class TestListFiles:
    def test_lists_only_direct_children(self, fs):
        files = fs.list_files("/warehouse/trips/datestr=2017-03-02")
        assert [f.path for f in files] == [
            "/warehouse/trips/datestr=2017-03-02/part-0.parquet",
            "/warehouse/trips/datestr=2017-03-02/part-1.parquet",
        ]

    def test_sizes(self, fs):
        files = fs.list_files("/warehouse/trips/datestr=2017-03-02")
        assert [f.size for f in files] == [3, 4]

    def test_counts_calls(self, fs):
        before = fs.namenode.stats.list_files_calls
        fs.list_files("/warehouse/trips/datestr=2017-03-02")
        fs.list_files("/warehouse/trips/datestr=2017-03-03")
        assert fs.namenode.stats.list_files_calls == before + 2

    def test_charges_latency(self, fs):
        start = fs.clock.now_ms()
        fs.list_files("/warehouse/trips/datestr=2017-03-02")
        assert fs.clock.now_ms() > start

    def test_empty_directory(self, fs):
        assert fs.list_files("/nowhere") == []


class TestGetFileInfo:
    def test_returns_status(self, fs):
        status = fs.get_file_info("/warehouse/trips/datestr=2017-03-02/part-1.parquet")
        assert status.size == 4

    def test_missing_file_raises(self, fs):
        with pytest.raises(StorageError):
            fs.get_file_info("/missing")

    def test_counts_calls(self, fs):
        before = fs.namenode.stats.get_file_info_calls
        fs.get_file_info("/warehouse/trips/datestr=2017-03-02/part-0.parquet")
        assert fs.namenode.stats.get_file_info_calls == before + 1


class TestOverloadDegradation:
    def test_metadata_storm_multiplies_latency(self):
        # Section XII.D: "performance degradation is due to the single
        # HDFS NameNode listFiles stuck".  With a low QPS ceiling, a
        # metadata storm crosses the knee and calls get 10x slower.
        namenode = NameNode(degradation_threshold_calls_per_sec=10)
        fs = HdfsFileSystem(namenode)
        fs.create("/d/f", b"x")

        start = namenode.clock.now_ms()
        for _ in range(10):
            namenode.get_file_info("/d/f")
        healthy_ms = namenode.clock.now_ms() - start

        start = namenode.clock.now_ms()
        for _ in range(10):
            namenode.get_file_info("/d/f")
        degraded_ms = namenode.clock.now_ms() - start
        assert degraded_ms > healthy_ms * 5

    def test_default_threshold_unreachable_sequentially(self):
        namenode = NameNode()
        fs = HdfsFileSystem(namenode)
        fs.create("/d/f", b"x")
        per_call = []
        for _ in range(20):
            start = namenode.clock.now_ms()
            namenode.get_file_info("/d/f")
            per_call.append(namenode.clock.now_ms() - start)
        assert max(per_call) == min(per_call)  # no degradation kicks in

    def test_recovery_after_quiet_period(self):
        namenode = NameNode(degradation_threshold_calls_per_sec=5)
        fs = HdfsFileSystem(namenode)
        fs.create("/d/f", b"x")
        for _ in range(12):
            namenode.get_file_info("/d/f")
        namenode.clock.advance(5_000)  # storm passes
        start = namenode.clock.now_ms()
        namenode.get_file_info("/d/f")
        assert namenode.clock.now_ms() - start == namenode.get_file_info_latency_ms


class TestReadWrite:
    def test_round_trip(self, fs):
        fs.create("/tmp/x", b"hello world")
        with fs.open("/tmp/x") as stream:
            assert stream.read(5) == b"hello"
            stream.seek(6)
            assert stream.read(100) == b"world"

    def test_read_fully(self, fs):
        fs.create("/tmp/y", b"0123456789")
        with fs.open("/tmp/y") as stream:
            assert stream.read_fully(3, 4) == b"3456"

    def test_delete(self, fs):
        fs.create("/tmp/z", b"x")
        assert fs.exists("/tmp/z")
        fs.delete("/tmp/z")
        assert not fs.exists("/tmp/z")

    def test_exists_for_directory_prefix(self, fs):
        assert fs.exists("/warehouse/trips")

    def test_hdfs_url_normalization(self, fs):
        fs.create("hdfs://namenode:8020/tmp/url", b"data")
        assert fs.exists("/tmp/url")
