"""Consistent-hash ring invariants: determinism, balance, minimal remap."""

import pytest

from repro.common.ring import ConsistentHashRing


NODES = [f"worker-{i}" for i in range(8)]
KEYS = [f"part-{i}" for i in range(4000)]


class TestMembership:
    def test_empty_ring_maps_nothing(self):
        ring = ConsistentHashRing()
        assert ring.lookup("anything") is None
        assert len(ring) == 0

    def test_add_remove_roundtrip(self):
        ring = ConsistentHashRing()
        ring.add("a")
        ring.add("b")
        assert ring.nodes() == {"a", "b"}
        assert "a" in ring
        ring.remove("a")
        assert ring.nodes() == {"b"}
        assert "a" not in ring
        assert all(ring.lookup(key) == "b" for key in KEYS[:50])

    def test_add_is_idempotent(self):
        ring = ConsistentHashRing()
        ring.add("a")
        ring.add("a")
        assert len(ring) == 1
        ring.remove("a")
        assert len(ring) == 0
        assert ring.lookup("x") is None

    def test_remove_unknown_node_is_noop(self):
        ring = ConsistentHashRing(["a"])
        ring.remove("never-added")
        assert ring.nodes() == {"a"}

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(vnodes=0)


class TestDeterminism:
    def test_lookup_is_stable_across_instances(self):
        first = ConsistentHashRing(NODES)
        second = ConsistentHashRing(NODES)
        assert [first.lookup(k) for k in KEYS] == [second.lookup(k) for k in KEYS]

    def test_lookup_is_insertion_order_independent(self):
        forward = ConsistentHashRing(NODES)
        backward = ConsistentHashRing(reversed(NODES))
        rebuilt = ConsistentHashRing(NODES + ["extra"])
        rebuilt.remove("extra")
        for key in KEYS:
            assert forward.lookup(key) == backward.lookup(key) == rebuilt.lookup(key)


class TestBalance:
    def test_vnodes_spread_load(self):
        ring = ConsistentHashRing(NODES)
        counts = {node: 0 for node in NODES}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        # With 64 vnodes each node should hold a sane share of the
        # keyspace: no node starved, no node above ~3x fair share.
        fair = len(KEYS) / len(NODES)
        assert min(counts.values()) > 0
        assert max(counts.values()) < 3 * fair


class TestMinimalRemap:
    def test_single_removal_remaps_only_victims_keys(self):
        ring = ConsistentHashRing(NODES)
        before = {key: ring.lookup(key) for key in KEYS}
        victim = NODES[3]
        ring.remove(victim)
        moved = 0
        for key in KEYS:
            after = ring.lookup(key)
            if after != before[key]:
                assert before[key] == victim  # only the victim's keys move
                moved += 1
        # Every victim key moved (it has no points left) and nothing else:
        # the remap fraction is ~1/N, bounded here at 2/N.
        assert moved == sum(1 for home in before.values() if home == victim)
        assert moved / len(KEYS) <= 2 / len(NODES)

    def test_addition_only_steals_keys_for_new_node(self):
        ring = ConsistentHashRing(NODES)
        before = {key: ring.lookup(key) for key in KEYS}
        ring.add("worker-new")
        for key in KEYS:
            after = ring.lookup(key)
            if after != before[key]:
                assert after == "worker-new"

    def test_remove_then_readd_restores_placement(self):
        ring = ConsistentHashRing(NODES)
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove(NODES[0])
        ring.add(NODES[0])
        assert {key: ring.lookup(key) for key in KEYS} == before
