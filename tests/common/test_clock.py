"""Tests for the simulated clock."""

import pytest

from repro.common.clock import SimulatedClock, SystemClock


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now_ms() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(100)
        clock.advance(50)
        assert clock.now_ms() == 150

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_parallel_advance_takes_max(self):
        clock = SimulatedClock()
        clock.parallel_advance([10, 30, 20])
        assert clock.now_ms() == 30

    def test_parallel_advance_empty_is_noop(self):
        clock = SimulatedClock()
        clock.parallel_advance([])
        assert clock.now_ms() == 0

    def test_reset(self):
        clock = SimulatedClock(start_ms=5)
        clock.advance(10)
        clock.reset()
        assert clock.now_ms() == 0

    def test_span_measures_elapsed(self):
        clock = SimulatedClock()
        with clock.span() as span:
            clock.advance(42)
        assert span.elapsed_ms == 42

    def test_determinism(self):
        a, b = SimulatedClock(), SimulatedClock()
        for delta in (1, 2.5, 100):
            a.advance(delta)
            b.advance(delta)
        assert a.now_ms() == b.now_ms()


class TestSystemClock:
    def test_monotonic(self):
        clock = SystemClock()
        first = clock.now_ms()
        second = clock.now_ms()
        assert second >= first

    def test_advance_is_noop_interface(self):
        clock = SystemClock()
        clock.advance(1_000_000)  # must not block or jump
        assert clock.now_ms() < 10**12 or True
