"""Tests for the federation gateway and routing table (section VIII)."""

import pytest

from repro.common.errors import GatewayError
from repro.execution.cluster import PrestoClusterSim
from repro.federation.gateway import PrestoGateway
from repro.federation.routing import RoutingTable


def make_gateway():
    gateway = PrestoGateway()
    for name in ("dedicated-a", "dedicated-b", "shared"):
        gateway.register_cluster(PrestoClusterSim(workers=2, name=name))
    gateway.routing.assign_user("alice", "dedicated-a")
    gateway.routing.assign_group("analytics", "dedicated-b")
    gateway.routing.set_default("shared")
    return gateway


class TestRoutingTable:
    def test_user_mapping_wins(self):
        routing = RoutingTable()
        routing.assign_user("alice", "a")
        routing.assign_group("team", "b")
        routing.set_default("c")
        assert routing.resolve("alice", ("team",)) == "a"

    def test_group_mapping(self):
        routing = RoutingTable()
        routing.assign_group("team", "b")
        routing.set_default("c")
        assert routing.resolve("bob", ("team",)) == "b"

    def test_default(self):
        routing = RoutingTable()
        routing.set_default("c")
        assert routing.resolve("carol") == "c"

    def test_no_route(self):
        with pytest.raises(GatewayError):
            RoutingTable().resolve("nobody")

    def test_reassignment_is_dynamic(self):
        # "Presto administrators could play with MySQL to dynamically
        # redirect any traffic to any cluster."
        routing = RoutingTable()
        routing.assign_user("alice", "a")
        assert routing.resolve("alice") == "a"
        routing.assign_user("alice", "b")
        assert routing.resolve("alice") == "b"

    def test_mapping_stored_in_mysql(self):
        routing = RoutingTable()
        routing.assign_user("alice", "a")
        rows = routing.mysql.execute(
            "presto_gateway", "routing", ["principal", "cluster"]
        )
        assert ("alice", "a") in rows

    def test_remove(self):
        routing = RoutingTable()
        routing.assign_user("alice", "a")
        routing.set_default("shared")
        routing.remove("alice")
        assert routing.resolve("alice") == "shared"


class TestGateway:
    def test_redirect_not_proxy(self):
        gateway = make_gateway()
        redirect = gateway.redirect("alice")
        assert redirect.cluster_name == "dedicated-a"
        assert redirect.status_code == 307

    def test_submit_follows_redirect(self):
        gateway = make_gateway()
        execution = gateway.submit("alice", [10.0])
        gateway.clusters["dedicated-a"].run_until_idle()
        assert execution.finished_at is not None
        assert execution.query_id.startswith("dedicated-a")

    def test_group_routing(self):
        gateway = make_gateway()
        assert gateway.redirect("bob", ("analytics",)).cluster_name == "dedicated-b"

    def test_default_routing(self):
        gateway = make_gateway()
        assert gateway.redirect("random-user").cluster_name == "shared"

    def test_drain_for_maintenance(self):
        # "When we are doing cluster maintenance or software upgrade, we
        # will redirect traffic ... to guarantee no downtime."
        gateway = make_gateway()
        gateway.drain_cluster("dedicated-a", fallback="shared")
        assert gateway.redirect("alice").cluster_name == "shared"
        gateway.undrain_cluster("dedicated-a")
        assert gateway.redirect("alice").cluster_name == "dedicated-a"

    def test_unknown_cluster_route_rejected(self):
        gateway = make_gateway()
        gateway.routing.assign_user("dave", "no-such-cluster")
        with pytest.raises(GatewayError):
            gateway.redirect("dave")

    def test_gateway_is_stateless_per_query(self):
        gateway = make_gateway()
        for _ in range(10):
            gateway.submit("random", [5.0])
        assert gateway.redirects_served == 10
