"""Tests for the federation gateway and routing table (section VIII)."""

import pytest

from repro.common.errors import (
    ExecutionError,
    GatewayError,
    InsufficientResourcesError,
    SemanticError,
)
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT
from repro.execution.cluster import PrestoClusterSim
from repro.execution.engine import PrestoEngine
from repro.execution.faults import FaultInjector
from repro.federation.gateway import PrestoGateway
from repro.federation.routing import RoutingTable
from repro.planner.analyzer import Session


def make_gateway():
    gateway = PrestoGateway()
    for name in ("dedicated-a", "dedicated-b", "shared"):
        gateway.register_cluster(PrestoClusterSim(workers=2, name=name))
    gateway.routing.assign_user("alice", "dedicated-a")
    gateway.routing.assign_group("analytics", "dedicated-b")
    gateway.routing.set_default("shared")
    return gateway


def make_engine(**kwargs):
    connector = MemoryConnector(split_size=10)
    connector.create_table("db", "t", [("v", BIGINT)], [(i,) for i in range(30)])
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **kwargs)
    engine.register_connector("memory", connector)
    return engine


class FlakyEngine:
    """Engine stub: raises a configured error for the first N executions,
    then delegates to a real engine."""

    def __init__(self, failures, error_factory):
        self.calls = 0
        self.failures = failures
        self.error_factory = error_factory
        self.real = make_engine()

    def execute(self, sql):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error_factory()
        return self.real.execute(sql)


class TestRoutingTable:
    def test_user_mapping_wins(self):
        routing = RoutingTable()
        routing.assign_user("alice", "a")
        routing.assign_group("team", "b")
        routing.set_default("c")
        assert routing.resolve("alice", ("team",)) == "a"

    def test_group_mapping(self):
        routing = RoutingTable()
        routing.assign_group("team", "b")
        routing.set_default("c")
        assert routing.resolve("bob", ("team",)) == "b"

    def test_default(self):
        routing = RoutingTable()
        routing.set_default("c")
        assert routing.resolve("carol") == "c"

    def test_no_route(self):
        with pytest.raises(GatewayError):
            RoutingTable().resolve("nobody")

    def test_reassignment_is_dynamic(self):
        # "Presto administrators could play with MySQL to dynamically
        # redirect any traffic to any cluster."
        routing = RoutingTable()
        routing.assign_user("alice", "a")
        assert routing.resolve("alice") == "a"
        routing.assign_user("alice", "b")
        assert routing.resolve("alice") == "b"

    def test_mapping_stored_in_mysql(self):
        routing = RoutingTable()
        routing.assign_user("alice", "a")
        rows = routing.mysql.execute(
            "presto_gateway", "routing", ["principal", "cluster"]
        )
        assert ("alice", "a") in rows

    def test_remove(self):
        routing = RoutingTable()
        routing.assign_user("alice", "a")
        routing.set_default("shared")
        routing.remove("alice")
        assert routing.resolve("alice") == "shared"


class TestGateway:
    def test_redirect_not_proxy(self):
        gateway = make_gateway()
        redirect = gateway.redirect("alice")
        assert redirect.cluster_name == "dedicated-a"
        assert redirect.status_code == 307

    def test_submit_follows_redirect(self):
        gateway = make_gateway()
        execution = gateway.submit("alice", [10.0])
        gateway.clusters["dedicated-a"].run_until_idle()
        assert execution.finished_at is not None
        assert execution.query_id.startswith("dedicated-a")

    def test_group_routing(self):
        gateway = make_gateway()
        assert gateway.redirect("bob", ("analytics",)).cluster_name == "dedicated-b"

    def test_default_routing(self):
        gateway = make_gateway()
        assert gateway.redirect("random-user").cluster_name == "shared"

    def test_drain_for_maintenance(self):
        # "When we are doing cluster maintenance or software upgrade, we
        # will redirect traffic ... to guarantee no downtime."
        gateway = make_gateway()
        gateway.drain_cluster("dedicated-a", fallback="shared")
        assert gateway.redirect("alice").cluster_name == "shared"
        gateway.undrain_cluster("dedicated-a")
        assert gateway.redirect("alice").cluster_name == "dedicated-a"

    def test_unknown_cluster_route_rejected(self):
        gateway = make_gateway()
        gateway.routing.assign_user("dave", "no-such-cluster")
        with pytest.raises(GatewayError):
            gateway.redirect("dave")

    def test_gateway_is_stateless_per_query(self):
        gateway = make_gateway()
        for _ in range(10):
            gateway.submit("random", [5.0])
        assert gateway.redirects_served == 10


class TestGatewayFailover:
    def test_retryable_failure_fails_over_to_next_cluster(self):
        gateway = make_gateway()
        engine = FlakyEngine(1, lambda: ExecutionError("worker pool collapsed"))
        result, execution = gateway.submit_sql("alice", engine, "SELECT sum(v) FROM t")
        assert engine.calls == 2
        assert gateway.failovers == 1
        # Routed to dedicated-a first; the rerun landed on the next
        # registered, undrained cluster.
        assert execution.query_id.startswith("dedicated-b")
        assert result.rows == [(sum(range(30)),)]

    def test_user_error_fails_fast_without_failover(self):
        gateway = make_gateway()
        engine = FlakyEngine(99, lambda: SemanticError("no such column"))
        with pytest.raises(SemanticError):
            gateway.submit_sql("alice", engine, "SELECT nope FROM t")
        assert engine.calls == 1
        assert gateway.failovers == 0

    def test_insufficient_resources_fails_fast(self):
        # Re-routing does not shrink an over-large join (section XII.C).
        gateway = make_gateway()
        engine = FlakyEngine(99, lambda: InsufficientResourcesError("query too big"))
        with pytest.raises(InsufficientResourcesError):
            gateway.submit_sql("alice", engine, "SELECT v FROM t")
        assert engine.calls == 1
        assert gateway.failovers == 0

    def test_exhausting_all_clusters_surfaces_the_error(self):
        gateway = make_gateway()
        engine = FlakyEngine(99, lambda: ExecutionError("still down"))
        with pytest.raises(ExecutionError):
            gateway.submit_sql("alice", engine, "SELECT v FROM t")
        assert engine.calls == 3  # every registered cluster tried once
        assert gateway.failovers == 2

    def test_max_failovers_zero_disables_rerouting(self):
        gateway = make_gateway()
        engine = FlakyEngine(99, lambda: ExecutionError("down"))
        with pytest.raises(ExecutionError):
            gateway.submit_sql("alice", engine, "SELECT v FROM t", max_failovers=0)
        assert engine.calls == 1

    def test_drained_cluster_excluded_from_failover(self):
        gateway = make_gateway()
        gateway.drain_cluster("dedicated-b", fallback="shared")
        engine = FlakyEngine(1, lambda: ExecutionError("down"))
        _, execution = gateway.submit_sql("alice", engine, "SELECT v FROM t")
        assert execution.query_id.startswith("shared")
        assert gateway.failovers == 1

    def test_injected_faults_drive_real_failover(self):
        # End-to-end: retries disabled, so the injected INTERNAL_ERROR on
        # the first engine run escapes to the gateway, which reruns the
        # query on another cluster — where it deterministically succeeds
        # (seed 18 fails query-0, passes query-1).
        gateway = make_gateway()
        engine = make_engine(
            fault_injector=FaultInjector(seed=18, task_failure_rate=0.05),
            max_task_retries=0,
        )
        result, execution = gateway.submit_sql("alice", engine, "SELECT sum(v) FROM t")
        assert gateway.failovers == 1
        assert execution.query_id.startswith("dedicated-b")
        assert result.rows == [(sum(range(30)),)]
