"""Non-blocking gateway submission, admission spill, and drain/failover
with multiple queries in flight.

The drain contract under concurrency: queries already *running* on the
drained cluster finish in place, queries still sitting in its admission
queue are evicted and re-routed to the fallback, and no handle is ever
driven by two clusters (no double-publish — result rows stay equal to
the single-query oracle).
"""

import pytest

from repro.common.errors import AdmissionRejectedError
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT
from repro.execution.cluster import PrestoClusterSim, QueryState
from repro.execution.engine import PrestoEngine
from repro.federation.gateway import PrestoGateway
from repro.obs.metrics import MetricsRegistry
from repro.planner.analyzer import Session

SQL = "SELECT v, count(*) FROM t GROUP BY v ORDER BY v"


def make_engine(**kwargs):
    connector = MemoryConnector(split_size=10)
    connector.create_table("db", "t", [("v", BIGINT)], [(i % 6,) for i in range(30)])
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **kwargs)
    engine.register_connector("memory", connector)
    return engine


def make_gateway(metrics=None, workers=2):
    gateway = PrestoGateway(metrics=metrics)
    for name in ("dedicated-a", "dedicated-b", "shared"):
        gateway.register_cluster(
            PrestoClusterSim(workers=workers, name=name, metrics=metrics)
        )
    gateway.routing.assign_user("alice", "dedicated-a")
    gateway.routing.assign_group("analytics", "dedicated-b")
    gateway.routing.set_default("shared")
    return gateway


def drive(gateway):
    for cluster in gateway.clusters.values():
        cluster.run_until_idle()


class TestSubmitAsync:
    def test_routes_admits_and_completes(self):
        gateway = make_gateway()
        engine = make_engine()
        submission = gateway.submit_sql_async("alice", engine, SQL)
        assert submission.cluster_name == "dedicated-a"
        assert submission.attempts == 1
        assert submission.handle.state == "running"
        drive(gateway)
        result = submission.handle.result()
        assert result.rows == make_engine().execute(SQL).rows
        # The trace shows the whole serving path, all spans closed.
        trace = submission.handle.trace
        assert [s.name for s in trace.spans[:3]] == [
            "gateway.submit",
            "gateway.route",
            "cluster.admission",
        ]
        assert trace.find("gateway.route")[0].attributes["cluster"] == "dedicated-a"
        assert all(s.end_ms is not None for s in trace.spans)

    def test_spills_to_shallowest_queue_on_shed(self):
        metrics = MetricsRegistry()
        gateway = make_gateway(metrics=metrics)
        engine = make_engine()
        # alice's dedicated cluster sheds anything that would queue.
        gateway.clusters["dedicated-a"].resource_group(
            "alice", max_running=1, max_queued=0
        )
        first = gateway.submit_sql_async("alice", engine, SQL)
        second = gateway.submit_sql_async("alice", engine, SQL)
        assert first.cluster_name == "dedicated-a"
        assert second.cluster_name != "dedicated-a"
        assert second.attempts == 2
        assert gateway.load_sheds == 1
        assert gateway.failovers == 1
        assert metrics.total("gateway_load_shed_total", cluster="dedicated-a") == 1
        drive(gateway)
        oracle = make_engine().execute(SQL).rows
        assert first.handle.result().rows == oracle
        assert second.handle.result().rows == oracle

    def test_all_clusters_shed_propagates_rejection(self):
        gateway = make_gateway()
        engine = make_engine()
        for cluster in gateway.clusters.values():
            # One slot per cluster at the root, no queueing anywhere.
            cluster.root_group.max_running = 1
            cluster.root_group.max_queued = 0
            # Occupy the only slot everywhere.
            cluster.submit_engine_handle(engine, SQL, user="anonymous")
        with pytest.raises(AdmissionRejectedError) as rejection:
            gateway.submit_sql_async("bob", engine, SQL)
        assert rejection.value.retry_after_ms > 0
        assert gateway.all_sheds == 1
        drive(gateway)  # the occupying queries still complete

    def test_all_shed_raises_minimum_retry_after(self, monkeypatch):
        # Regression: the gateway used to propagate the *last* attempted
        # cluster's retry-after hint; the client should back off only as
        # long as the soonest-available cluster needs.
        metrics = MetricsRegistry()
        gateway = make_gateway(metrics=metrics)
        engine = make_engine()
        hints = {"dedicated-a": 500.0, "dedicated-b": 120.0, "shared": 900.0}
        for name, cluster in gateway.clusters.items():
            def shed(*args, _name=name, **kwargs):
                raise AdmissionRejectedError(
                    f"{_name} full", retry_after_ms=hints[_name]
                )
            monkeypatch.setattr(cluster, "submit_handle", shed)
        with pytest.raises(AdmissionRejectedError) as rejection:
            # alice routes to dedicated-a first; the spill order ends on
            # "shared" (900ms) — the old code would raise that.
            gateway.submit_sql_async("alice", engine, SQL)
        assert rejection.value.retry_after_ms == 120.0
        assert gateway.all_sheds == 1
        assert gateway.load_sheds == 3
        assert metrics.total("gateway_all_shed_total") == 1
        assert metrics.total("gateway_load_shed_total") == 3

    def test_queue_depths_surface_to_gauges(self):
        metrics = MetricsRegistry()
        gateway = make_gateway(metrics=metrics)
        engine = make_engine()
        gateway.clusters["shared"].resource_group("bob", max_running=1)
        gateway.submit_sql_async("bob", engine, SQL)
        gateway.submit_sql_async("bob", engine, SQL)
        depths = gateway.queue_depths()
        assert depths == {"dedicated-a": 0, "dedicated-b": 0, "shared": 1}
        assert (
            metrics.gauge("gateway_cluster_queue_depth", cluster="shared").value == 1
        )
        drive(gateway)
        assert gateway.queue_depths()["shared"] == 0


class TestDrainWithInflightQueries:
    def setup_drain(self):
        """dedicated-a serving one running and two queued alice queries."""
        gateway = make_gateway()
        engine = make_engine()
        gateway.clusters["dedicated-a"].resource_group("alice", max_running=1)
        running = gateway.submit_sql_async("alice", engine, SQL)
        queued = [gateway.submit_sql_async("alice", engine, SQL) for _ in range(2)]
        assert gateway.clusters["dedicated-a"].queued_query_count() == 2
        return gateway, engine, running, queued

    def test_running_finishes_in_place_queued_reroute(self):
        gateway, _, running, queued = self.setup_drain()
        gateway.drain_cluster("dedicated-a", "shared")
        # Queued handles moved to the fallback; the running one stayed.
        assert running.cluster_name == "dedicated-a"
        for submission in queued:
            assert submission.cluster_name == "shared"
            assert submission.attempts == 2
        assert gateway.failovers == 2
        assert gateway.clusters["dedicated-a"].queued_query_count() == 0
        drive(gateway)
        oracle = make_engine().execute(SQL).rows
        assert running.handle.result().rows == oracle
        for submission in queued:
            assert submission.handle.result().rows == oracle

    def test_no_double_publish_across_clusters(self):
        gateway, _, running, queued = self.setup_drain()
        gateway.drain_cluster("dedicated-a", "shared")
        drive(gateway)
        # The drained cluster's executions for the evicted queries never
        # dispatched a split; the fallback ran every task exactly once.
        drained = gateway.clusters["dedicated-a"]
        fallback = gateway.clusters["shared"]
        for submission in queued:
            stats = submission.handle.result().stats
            evicted = [
                q
                for q in drained.queries.values()
                if q.query_id.endswith(submission.handle.query_id)
            ]
            assert evicted and all(q.splits_total == 0 for q in evicted)
            assert submission.execution.splits_done == len(stats.task_records)
            assert submission.execution.splits_total == len(stats.task_records)
        # Each handle's row count matches the oracle exactly — a handle
        # pumped by two clusters would have duplicated result pages.
        oracle = make_engine().execute(SQL).rows
        for submission in (running, *queued):
            assert submission.handle.result().rows == oracle

    def test_eviction_marks_runs_and_new_traffic_reroutes(self):
        gateway, engine, _, _ = self.setup_drain()
        drained = gateway.clusters["dedicated-a"]
        evicted_before = [
            run for run in drained._queued_runs  # captured pre-drain
        ]
        gateway.drain_cluster("dedicated-a", "shared")
        for run in evicted_before:
            assert run.state is QueryState.EVICTED
        # New alice traffic routes straight to the fallback.
        late = gateway.submit_sql_async("alice", engine, SQL)
        assert late.cluster_name == "shared"
        drive(gateway)
        assert late.handle.state == "finished"

    def test_drain_keeps_gateway_span_tree_well_formed(self):
        gateway, _, running, queued = self.setup_drain()
        gateway.drain_cluster("dedicated-a", "shared")
        drive(gateway)
        for submission in (running, *queued):
            trace = submission.handle.trace
            roots = [s for s in trace.spans if s.parent_id is None]
            assert [s.name for s in roots] == ["gateway.submit"]
            assert all(s.end_ms is not None for s in trace.spans)
            # Exactly one admission span: the evicted runs never opened
            # one on the drained cluster.
            admissions = trace.find("cluster.admission")
            assert len(admissions) == 1
            expected = submission.cluster_name
            assert admissions[0].attributes["cluster"] == expected
