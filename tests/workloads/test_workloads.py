"""Tests for workload generators."""

import pytest

from repro.core.types import RowType
from repro.geo.geometry import Point
from repro.workloads.druid_queries import build_druid_workload
from repro.workloads.geofences import generate_cities, generate_trip_points
from repro.workloads.tpch import (
    LINEITEM_COLUMNS,
    generate_lineitem,
    writer_benchmark_datasets,
)
from repro.workloads.trips import TRIPS_BASE_TYPE, generate_trips_rows


class TestLineitem:
    def test_deterministic(self):
        assert generate_lineitem(50, seed=1) == generate_lineitem(50, seed=1)
        assert generate_lineitem(50, seed=1) != generate_lineitem(50, seed=2)

    def test_shape(self):
        rows = generate_lineitem(10)
        assert len(rows) == 10
        assert all(len(r) == len(LINEITEM_COLUMNS) for r in rows)

    def test_value_domains(self):
        rows = generate_lineitem(200)
        flags = {r[8] for r in rows}
        assert flags <= {"R", "A", "N"}
        assert all(1 <= r[4] <= 50 for r in rows)  # quantity

    def test_writer_datasets_cover_figure(self):
        datasets = writer_benchmark_datasets(rows=20)
        names = [name for name, _, _ in datasets]
        assert names == [
            "All Lineitem columns",
            "Bigint Sequential",
            "Bigint Random",
            "Small Varchar",
            "Large Varchar",
            "Varchar Dictionary",
            "Map Varchar To Double",
            "Large Map Varchar To Double",
            "Map Int To Double",
            "Large Map Int To Double",
            "Array Varchar",
        ]
        for name, schema, page in datasets:
            assert page.position_count == 20

    def test_varchar_dictionary_low_cardinality(self):
        datasets = dict(
            (name, page) for name, _, page in writer_benchmark_datasets(rows=500)
        )
        distinct = set(datasets["Varchar Dictionary"].block(0).to_list())
        assert len(distinct) <= 16


class TestTrips:
    def test_struct_width_and_depth(self):
        # "20 or sometimes up to 50 fields", "more than 5 levels of nesting"
        assert len(TRIPS_BASE_TYPE.fields) == 20
        depth = max(path.count(".") for path, _ in TRIPS_BASE_TYPE.walk()) + 1
        assert depth >= 4  # base itself adds another level: ≥5 total

    def test_rows_match_type(self):
        rows = generate_trips_rows(20)
        for base, fare, completed in rows:
            assert set(base) == {f.name for f in TRIPS_BASE_TYPE.fields}
            assert base["fare"]["breakdown"]["base_amount"] is not None
            assert base["pickup"]["address"]["gps"]["provider"] in ("fused", "gps")

    def test_deterministic(self):
        assert generate_trips_rows(10, seed=3) == generate_trips_rows(10, seed=3)

    def test_status_mostly_completed(self):
        rows = generate_trips_rows(500)
        completed = sum(1 for _, _, done in rows if done)
        assert completed > 350


class TestGeofences:
    def test_city_vertex_count(self):
        cities = generate_cities(5, vertices_per_city=300)
        assert all(polygon.vertex_count() == 300 for _, polygon in cities)

    def test_cities_disjoint(self):
        cities = generate_cities(9, city_radius=0.5, grid_spacing=3.0)
        # Sample centers of each city; no other city contains them.
        for cid, polygon in cities:
            box = polygon.bounding_box()
            center = Point((box.min_x + box.max_x) / 2, (box.min_y + box.max_y) / 2)
            containing = [c for c, p in cities if p.contains_point(center)]
            assert containing in ([], [cid])

    def test_trip_points_fraction_inside(self):
        cities = generate_cities(10)
        points = generate_trip_points(300, cities, in_city_fraction=0.7)
        inside = sum(
            1 for p in points if any(poly.contains_point(p) for _, poly in cities)
        )
        assert 0.5 < inside / len(points) <= 1.0

    def test_deterministic(self):
        a = generate_cities(3, seed=9)
        b = generate_cities(3, seed=9)
        assert [p.ring for _, p in a] == [p.ring for _, p in b]


class TestDruidWorkload:
    def test_paper_mix(self):
        workload = build_druid_workload(segments=2, rows_per_segment=100)
        assert len(workload.queries) == 20
        assert sum(q.has_predicate for q in workload.queries) == 14
        assert sum(q.has_limit for q in workload.queries) == 5
        assert sum(q.is_aggregation for q in workload.queries) == 12

    def test_sql_and_native_agree(self):
        from repro.connectors.realtime.druid import DruidConnector
        from repro.execution.engine import PrestoEngine
        from repro.planner.analyzer import Session

        workload = build_druid_workload(segments=2, rows_per_segment=200)
        engine = PrestoEngine(session=Session(catalog="druid", schema="druid"))
        engine.register_connector("druid", DruidConnector(workload.cluster))
        for query in workload.queries:
            native_rows = workload.cluster.query(query.native)
            presto_rows = engine.execute(query.sql).rows
            if query.has_limit:
                assert len(presto_rows) == len(native_rows)
            else:
                assert sorted(map(repr, presto_rows)) == sorted(map(repr, native_rows))
