"""Every example under ``examples/`` must execute cleanly end to end.

Each module is loaded under a unique name and its ``main()`` is called;
a raised exception or a missing ``main`` fails the suite.  This is the
guard that keeps the docs' entry points from drifting as the engine
evolves (the realtime example previously hand-rolled micro-batch windows
with off-by-one-prone ``_timestamp_ms`` bounds; it now rides the
pipeline API, and this test keeps it — and every sibling — honest).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def load_example(path):
    module_name = f"examples_under_test_{path.stem}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(module_name, None)
    return module


def test_examples_exist():
    assert len(EXAMPLES) >= 7, [p.name for p in EXAMPLES]


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_main_runs(path, capsys):
    module = load_example(path)
    assert hasattr(module, "main"), f"{path.name} has no main()"
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} printed nothing"
