"""Integration: the Hive connector over PrestoS3FileSystem (section IX).

"We could store data in Amazon S3 or Google GCS, and launch Presto to
query it" — the connector is storage-agnostic through the FileSystem
interface, so the same warehouse code runs on simulated S3, including
caches and transient-failure recovery.
"""

import itertools

import pytest

from repro.cache.file_list_cache import FileListCache
from repro.cache.footer_cache import FileHandleAndFooterCache
from repro.common.clock import SimulatedClock
from repro.connectors.hive import HiveConnector, write_hive_partition
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.metastore.metastore import HiveMetastore
from repro.planner.analyzer import Session
from repro.storage.s3 import S3Client, S3ServerError
from repro.storage.s3_filesystem import PrestoS3FileSystem


def build(failure_injector=None, caches=False):
    client = S3Client(clock=SimulatedClock(), failure_injector=failure_injector)
    fs = PrestoS3FileSystem(client, "lakehouse", backoff_base_ms=10)
    metastore = HiveMetastore()
    metastore.create_table(
        "web",
        "clicks",
        [("user_id", BIGINT), ("dwell", DOUBLE)],
        partition_keys=[("ds", VARCHAR)],
    )
    for ds in ("2022-06-01", "2022-06-02"):
        rows = [(i % 25, float(i % 7)) for i in range(300)]
        write_hive_partition(
            metastore, fs, "web", "clicks", [ds],
            [Page.from_rows([BIGINT, DOUBLE], rows)], files=2,
        )
    connector = HiveConnector(
        metastore,
        fs,
        file_list_cache=FileListCache(fs) if caches else None,
        footer_cache=FileHandleAndFooterCache(fs) if caches else None,
    )
    engine = PrestoEngine(session=Session(catalog="hive", schema="web"))
    engine.register_connector("hive", connector)
    return engine, client, fs


class TestHiveOnS3:
    def test_full_query_over_s3(self):
        engine, client, fs = build()
        result = engine.execute("SELECT count(*), sum(dwell) FROM clicks")
        assert result.rows == [(600, float(sum(i % 7 for i in range(300)) * 2))]

    def test_partition_pruning_limits_s3_lists(self):
        engine, client, fs = build()
        client.stats.reset()
        engine.execute("SELECT count(*) FROM clicks WHERE ds = '2022-06-01'")
        assert client.stats.list_requests == 1  # one partition listed

    def test_group_by_over_s3(self):
        engine, client, fs = build()
        result = engine.execute(
            "SELECT user_id, count(*) FROM clicks GROUP BY user_id ORDER BY 1 LIMIT 3"
        )
        assert result.rows == [(0, 24), (1, 24), (2, 24)]

    def test_transient_s3_failures_are_absorbed(self):
        # Every 7th request fails; exponential backoff retries them all.
        counter = itertools.count()
        engine, client, fs = build(
            failure_injector=lambda op: next(counter) % 7 == 6
        )
        result = engine.execute("SELECT count(*) FROM clicks")
        assert result.rows == [(600,)]
        assert fs.stats.retries > 0

    def test_hard_outage_surfaces(self):
        engine, client, fs = build()
        # Outage begins after the warehouse is written.
        client.failure_injector = lambda op: True
        fs.max_retries = 2
        with pytest.raises(S3ServerError):
            engine.execute("SELECT count(*) FROM clicks")

    def test_caches_cut_s3_requests(self):
        cold_engine, cold_client, _ = build(caches=False)
        warm_engine, warm_client, _ = build(caches=True)
        sql = "SELECT sum(dwell) FROM clicks"
        for engine in (cold_engine, warm_engine):
            engine.execute(sql)  # first query warms the caches
        cold_client.stats.reset()
        warm_client.stats.reset()
        for _ in range(3):
            assert cold_engine.execute(sql).rows == warm_engine.execute(sql).rows
        assert warm_client.stats.list_requests < cold_client.stats.list_requests
        assert warm_client.stats.head_requests < cold_client.stats.head_requests
