"""Tests for cloud elasticity / autoscaling (section IX)."""

from repro.cloud.elasticity import Autoscaler, AutoscalerPolicy
from repro.execution.cluster import PrestoClusterSim, WorkerState


def make(workers=4, slots=2):
    cluster = PrestoClusterSim(workers=workers, slots_per_worker=slots)
    scaler = Autoscaler(
        cluster,
        AutoscalerPolicy(min_workers=2, max_workers=10),
        grace_period_ms=10.0,
    )
    return cluster, scaler


class TestUtilization:
    def test_idle_cluster_zero(self):
        cluster, scaler = make()
        assert scaler.utilization() == 0.0

    def test_busy_cluster_high(self):
        cluster, scaler = make(workers=1, slots=2)
        cluster.submit_query([10_000.0] * 2)
        # Let scheduling happen (events at planning time).
        import heapq

        # Process just the scheduling event, not the completions.
        time_ms, seq, callback = heapq.heappop(cluster._events)
        cluster.clock.advance(time_ms - cluster.clock.now_ms())
        callback()
        assert scaler.utilization() == 1.0


class TestScaling:
    def test_scale_out_under_load(self):
        cluster, scaler = make(workers=1, slots=1)
        cluster.submit_query([10_000.0] * 4)
        import heapq

        time_ms, seq, callback = heapq.heappop(cluster._events)
        cluster.clock.advance(time_ms - cluster.clock.now_ms())
        callback()
        decision = scaler.evaluate()
        assert decision == "out"
        assert cluster.active_worker_count() == 2

    def test_scale_in_when_idle(self):
        cluster, scaler = make(workers=4)
        decision = scaler.evaluate()
        assert decision == "in"
        shutting = [
            w for w in cluster.workers.values() if w.state is WorkerState.SHUTTING_DOWN
        ]
        assert len(shutting) == 1
        cluster.run_until_idle()
        assert cluster.active_worker_count() == 3

    def test_never_below_min_workers(self):
        cluster, scaler = make(workers=2)
        assert scaler.evaluate() == "hold"
        assert cluster.active_worker_count() == 2

    def test_never_above_max_workers(self):
        cluster, scaler = make(workers=4)
        scaler.policy.max_workers = 4
        cluster.submit_query([10_000.0] * 100)
        import heapq

        time_ms, seq, callback = heapq.heappop(cluster._events)
        cluster.clock.advance(time_ms - cluster.clock.now_ms())
        callback()
        assert scaler.evaluate() == "hold"

    def test_shrink_does_not_lose_work(self):
        cluster, scaler = make(workers=4, slots=1)
        execution = cluster.submit_query([500.0] * 4)
        scaler.evaluate()  # idle at submit time → may start a shrink
        cluster.run_until_idle()
        assert execution.finished_at is not None
        assert execution.splits_done == 4
