"""Unit tests for the labeled metrics registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 12.0


class TestHistogram:
    def test_observation_lands_in_first_bucket_with_bound_gte_value(self):
        histogram = Histogram(buckets=(1.0, 10.0, 100.0))
        histogram.observe(0.5)
        histogram.observe(1.0)  # boundary values belong to their bucket
        histogram.observe(7.0)
        histogram.observe(100.0)
        assert histogram.bucket_counts == [2, 1, 1, 0]
        assert histogram.count == 4
        assert histogram.sum == 108.5

    def test_overflow_goes_to_inf_bucket(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        histogram.observe(11.0)
        assert histogram.bucket_counts == [0, 0, 1]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 1.0))

    def test_snapshot(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(1.5)
        assert histogram.snapshot() == {
            "buckets": [1.0, 2.0],
            "counts": [0, 1, 0],
            "count": 1,
            "sum": 1.5,
        }


class TestRegistry:
    def test_get_or_create_returns_same_instrument_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", cluster="x")
        b = registry.counter("requests_total", cluster="x")
        c = registry.counter("requests_total", cluster="y")
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("t", x="1", y="2")
        b = registry.counter("t", y="2", x="1")
        assert a is b

    def test_total_sums_series_matching_a_label_subset(self):
        registry = MetricsRegistry()
        registry.counter("rows_total", query_id="q0", kind="GATHER").inc(10)
        registry.counter("rows_total", query_id="q0", kind="REPARTITION").inc(5)
        registry.counter("rows_total", query_id="q1", kind="GATHER").inc(99)
        assert registry.total("rows_total", query_id="q0") == 15.0
        assert registry.total("rows_total", kind="GATHER") == 109.0
        assert registry.total("rows_total") == 114.0
        assert registry.total("rows_total", query_id="nope") == 0.0

    def test_series_lists_labels_and_values(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", cache="a").inc(2)
        registry.counter("hits_total", cache="b").inc(3)
        assert registry.series("hits_total") == [
            ({"cache": "a"}, 2.0),
            ({"cache": "b"}, 3.0),
        ]

    def test_histogram_uses_default_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_ms")
        assert histogram.buckets == DEFAULT_BUCKETS

    def test_snapshot_is_deterministic_and_json_serializable(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b_total", z="2").inc()
            registry.counter("b_total", a="1").inc()
            registry.counter("a_total").inc(4)
            registry.gauge("live").set(3)
            registry.histogram("h").observe(42.0)
            return registry

        first, second = build(), build()
        assert first.snapshot() == second.snapshot()
        assert first.to_json() == second.to_json()
        snapshot = first.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["a_total"] == [{"labels": {}, "value": 4.0}]
        # Series within a metric are ordered by label key.
        assert [entry["labels"] for entry in snapshot["counters"]["b_total"]] == [
            {"a": "1"},
            {"z": "2"},
        ]
