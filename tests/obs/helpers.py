"""Trace-driven invariant helpers, shared across suites.

These assertions tie the observability layer to the engine's own
accounting: any drift between what the spans say and what
:class:`~repro.execution.context.QueryStats` counted is a bug in one of
them.  They are used by the TPC-H end-to-end, fault-tolerance and
staged-differential suites, so every staged query those suites run —
including retried and failed-over ones — is checked for:

- a well-formed span tree (unique ids, existing parents, child intervals
  nested inside their parents, every span closed);
- a critical path that sums to exactly the query's simulated
  milliseconds;
- operator/exchange span row counts that reconcile with the
  ``rows_scanned`` / ``rows_output`` / ``rows_exchanged`` counters;
- attempt/backoff span counts that reconcile with ``tasks_total`` /
  ``tasks_retried``;
- metrics-registry series that reconcile with the same counters.
"""

from __future__ import annotations

import pytest


def assert_well_formed(trace) -> None:
    """Structural invariants of one span tree."""
    assert trace.spans, "trace has no spans"
    ids = [span.span_id for span in trace.spans]
    assert len(ids) == len(set(ids)), "span ids are not unique"
    by_id = {span.span_id: span for span in trace.spans}
    roots = [span for span in trace.spans if span.parent_id is None]
    assert len(roots) == 1, f"expected a single root span, got {len(roots)}"
    for span in trace.spans:
        assert span.end_ms is not None, f"span {span.name} never closed"
        assert span.end_ms >= span.start_ms
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        assert parent is not None, f"span {span.name} has unknown parent"
        assert parent.span_id < span.span_id, "parent created after child"
        assert parent.start_ms <= span.start_ms, (
            f"{span.name} starts before its parent {parent.name}"
        )
        assert span.end_ms <= parent.end_ms, (
            f"{span.name} ends after its parent {parent.name}"
        )


def query_span(trace):
    """The query span the trace's QueryStats describe.

    A gateway trace can hold several ``query`` spans (one per failover
    attempt); the stats returned to the client belong to the last one.
    """
    spans = trace.find("query")
    assert spans, "trace has no query span"
    return spans[-1]


def spans_under(trace, root):
    """``root`` plus all its descendants."""
    selected = {root.span_id}
    result = [root]
    for span in trace.spans:
        if span.parent_id in selected:
            selected.add(span.span_id)
            result.append(span)
    return result


def assert_trace_reconciles(result) -> None:
    """Span row/time accounting must match the result's QueryStats."""
    trace, stats = result.trace, result.stats
    assert trace is not None, "query ran without a trace"
    assert_well_formed(trace)
    query = query_span(trace)
    under = spans_under(trace, query)

    # The scheduler is the only component that advances the trace clock,
    # charging exactly the cost model's milliseconds — so the query span's
    # duration, and the critical path through it, telescope to the
    # simulated time.  (Float tolerance: the two sides add the same terms
    # in different orders.)
    assert query.duration_ms == pytest.approx(stats.simulated_ms, abs=1e-6)
    assert trace.critical_path_ms(query) == pytest.approx(
        stats.simulated_ms, abs=1e-6
    )

    operators = [s for s in under if s.name == "operator"]
    scan_rows = sum(
        s.attributes["rows"]
        for s in operators
        if s.attributes["node"] == "TableScanNode"
    )
    assert scan_rows == stats.rows_scanned
    output_rows = sum(
        s.attributes["rows"]
        for s in operators
        if s.attributes["node"] == "OutputNode"
    )
    assert output_rows == stats.rows_output

    exchange_rows = sum(
        s.attributes["rows"] for s in under if s.name == "exchange"
    )
    assert exchange_rows == stats.rows_exchanged

    tasks = [s for s in under if s.name == "task"]
    attempts = [s for s in under if s.name == "attempt"]
    backoffs = [s for s in under if s.name == "backoff"]
    assert len(tasks) == stats.tasks_total
    assert len(attempts) == stats.tasks_total + stats.tasks_retried
    assert len(backoffs) == stats.tasks_retried
    assert len([s for s in under if s.name == "stage"]) == stats.stages_total

    # Each task span's duration is its record's simulated cost.
    for span, record in zip(tasks, stats.task_records):
        assert span.duration_ms == pytest.approx(record["sim_ms"], abs=1e-6)


def assert_metrics_reconcile(metrics, stats) -> None:
    """The registry's per-query series must match the QueryStats counters."""
    query_id = stats.query_id
    assert metrics.total(
        "scheduler_tasks_run_total", query_id=query_id
    ) == pytest.approx(stats.tasks_total)
    assert metrics.total(
        "scheduler_tasks_retried_total", query_id=query_id
    ) == pytest.approx(stats.tasks_retried)
    assert metrics.total(
        "scheduler_tasks_failed_total", query_id=query_id
    ) == pytest.approx(stats.tasks_failed)
    assert metrics.total(
        "exchange_rows_total", query_id=query_id
    ) == pytest.approx(stats.rows_exchanged)


def assert_cache_metrics_reconcile(metrics, name: str, cache_stats) -> None:
    """A cache's metric series must match its CacheStats counters."""
    assert metrics.total("cache_hits_total", cache=name) == pytest.approx(
        cache_stats.hits
    )
    assert metrics.total("cache_misses_total", cache=name) == pytest.approx(
        cache_stats.misses
    )
    assert metrics.total("cache_evictions_total", cache=name) == pytest.approx(
        cache_stats.evictions
    )


def assert_query_observable(result, metrics=None) -> None:
    """The one-call bundle the suites use after each staged query."""
    assert_trace_reconciles(result)
    if metrics is not None:
        assert_metrics_reconcile(metrics, result.stats)
