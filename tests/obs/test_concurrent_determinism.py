"""Determinism of the concurrent serving path.

The repo's core observability invariant — same seed, byte-identical
trace and metrics JSON — must survive the multi-query scheduler: per-
query traces, the cluster timeline, the metrics registry, and the
admission accounting all stamp only simulated time, so two replays of
the same concurrent workload serialize identically.  CI runs this file
as the concurrent-trace-invariant gate.
"""

from repro.execution.cluster import PrestoClusterSim
from repro.execution.faults import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.workloads.traffic_storm import QUERY_TEMPLATES, make_storm_engine

# Three templates, one shared resource group capped at 2: one query must
# take the queued path while the other two interleave.
SQLS = [sql for _, sql in QUERY_TEMPLATES[:3]]


def run_once(seed=7, fault_rate=0.1):
    """One concurrent replay; returns every serialized artifact."""
    metrics = MetricsRegistry()
    cluster = PrestoClusterSim(
        workers=3, slots_per_worker=2, metrics=metrics, name="ci"
    )
    cluster.resource_group("ci", max_running=2)
    engine = make_storm_engine(
        rows=120,
        metrics=metrics,
        fault_injector=FaultInjector(seed=seed, task_failure_rate=fault_rate),
    )
    handles = [
        cluster.submit_engine_handle(
            engine, sql, user=f"user{i}", resource_group="ci"
        )[0]
        for i, sql in enumerate(SQLS)
    ]
    cluster.run_until_idle()
    assert all(h.state == "finished" for h in handles)
    assert cluster.max_concurrent_running() == 2
    return {
        "traces": [h.result().trace.to_json() for h in handles],
        "rows": [repr(h.result().rows) for h in handles],
        "timeline": cluster.timeline_trace().to_json(),
        "metrics": metrics.to_json(),
    }


class TestConcurrentDeterminism:
    def test_two_runs_byte_identical(self):
        first = run_once()
        second = run_once()
        assert first["traces"] == second["traces"]
        assert first["rows"] == second["rows"]
        assert first["timeline"] == second["timeline"]
        assert first["metrics"] == second["metrics"]

    def test_different_seed_changes_fault_pattern(self):
        # Sanity: the invariant above isn't vacuous — a different fault
        # seed produces different retries, hence different traces.
        first = run_once(seed=7)
        other = run_once(seed=8)
        assert first["traces"] != other["traces"]
        # ... but identical rows: faults never change answers.
        assert first["rows"] == other["rows"]

    def test_timeline_shows_overlap_and_queueing(self):
        artifacts = run_once()
        import json

        spans = json.loads(artifacts["timeline"])["spans"]
        queries = [s for s in spans if s["name"] == "cluster.query"]
        assert len(queries) == 3
        overlapping = any(
            a["start_ms"] < b["end_ms"] and b["start_ms"] < a["end_ms"]
            for a in queries
            for b in queries
            if a is not b
        )
        assert overlapping
        assert any(s["attributes"]["queued_ms"] > 0 for s in queries)
