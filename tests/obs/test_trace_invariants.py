"""Trace-driven invariant tests over real engine executions.

Every staged query — plain, retried under fault injection, or failed
over through the gateway — must yield a well-formed span tree whose
critical path sums to the query's simulated milliseconds and whose
row/task accounting reconciles exactly with QueryStats and the metrics
registry (ISSUE 5 acceptance bar).
"""

import io

import pytest

from repro.cache.fragment_result_cache import FragmentResultCache
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT
from repro.execution.cluster import PrestoClusterSim
from repro.execution.engine import PrestoEngine
from repro.execution.faults import FaultInjector
from repro.federation.gateway import PrestoGateway
from repro.planner.analyzer import Session
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem

from tests.obs.helpers import (
    assert_cache_metrics_reconcile,
    assert_query_observable,
    assert_trace_reconciles,
    assert_well_formed,
    query_span,
    spans_under,
)

TPCH_SQL = (
    "SELECT returnflag, linestatus, sum(quantity), avg(extendedprice), count(*) "
    "FROM lineitem GROUP BY returnflag, linestatus ORDER BY returnflag, linestatus"
)


def make_engine(**kwargs):
    connector = MemoryConnector(split_size=31)
    connector.create_table("db", "lineitem", LINEITEM_COLUMNS, generate_lineitem(250))
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **kwargs)
    engine.register_connector("memory", connector)
    return engine


class TestStagedQueryTrace:
    def test_tpch_query_is_observable(self):
        engine = make_engine()
        result = engine.execute(TPCH_SQL)
        assert_query_observable(result, engine.metrics)

    def test_span_tree_mirrors_the_execution_hierarchy(self):
        engine = make_engine()
        result = engine.execute(TPCH_SQL)
        trace = result.trace
        query = query_span(trace)
        assert query.attributes["path"] == "staged"
        stages = [s for s in spans_under(trace, query) if s.name == "stage"]
        assert len(stages) == result.stats.stages_total >= 2
        for stage in stages:
            tasks = [s for s in trace.children(stage) if s.name == "task"]
            assert len(tasks) == stage.attributes["tasks"]
            for task in tasks:
                kinds = {s.name for s in trace.children(task)}
                assert "attempt" in kinds

    def test_split_spans_account_every_scanned_row(self):
        engine = make_engine()
        result = engine.execute(TPCH_SQL)
        splits = result.trace.find("split")
        assert splits
        assert sum(s.attributes["rows"] for s in splits) == result.stats.rows_scanned
        # No fragment cache configured: no split claims a cache status.
        assert all("cache" not in s.attributes for s in splits)

    def test_tracing_off_yields_no_trace_and_same_rows(self):
        traced = make_engine().execute(TPCH_SQL)
        untraced = make_engine(tracing=False).execute(TPCH_SQL)
        assert untraced.trace is None
        assert untraced.rows == traced.rows

    def test_direct_oracle_still_traced_without_simulated_time(self):
        engine = make_engine()
        result = engine.execute_direct(TPCH_SQL)
        assert_well_formed(result.trace)
        query = query_span(result.trace)
        assert query.attributes["path"] == "direct"
        assert query.duration_ms == 0.0 == result.stats.simulated_ms
        operators = [s for s in result.trace.spans if s.name == "operator"]
        scan_rows = sum(
            s.attributes["rows"]
            for s in operators
            if s.attributes["node"] == "TableScanNode"
        )
        assert scan_rows == result.stats.rows_scanned


class TestFaultInjectionTrace:
    def test_retried_query_reconciles(self):
        engine = make_engine(
            fault_injector=FaultInjector(seed=7, task_failure_rate=0.1)
        )
        result = engine.execute(TPCH_SQL)
        assert result.stats.tasks_retried > 0
        assert_query_observable(result, engine.metrics)

    def test_failed_attempts_and_backoffs_appear_as_spans(self):
        engine = make_engine(
            fault_injector=FaultInjector(seed=7, task_failure_rate=0.1),
            retry_backoff_ms=100.0,
        )
        result = engine.execute(TPCH_SQL)
        assert_trace_reconciles(result)
        failed = [
            s
            for s in result.trace.find("attempt")
            if s.attributes.get("outcome") == "failed"
        ]
        assert len(failed) == result.stats.tasks_retried
        for span in failed:
            assert "error" in span.attributes
        backoffs = result.trace.find("backoff")
        assert backoffs
        for span in backoffs:
            assert span.duration_ms == pytest.approx(span.attributes["backoff_ms"])


class TestGatewayTrace:
    @staticmethod
    def make_gateway():
        gateway = PrestoGateway()
        for name in ("dedicated-a", "dedicated-b", "shared"):
            gateway.register_cluster(PrestoClusterSim(workers=2, name=name))
        gateway.routing.assign_user("alice", "dedicated-a")
        gateway.routing.set_default("shared")
        return gateway

    @staticmethod
    def make_tiny_engine(**kwargs):
        connector = MemoryConnector(split_size=10)
        connector.create_table("db", "t", [("v", BIGINT)], [(i,) for i in range(30)])
        engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **kwargs)
        engine.register_connector("memory", connector)
        return engine

    def test_single_submission_rooted_at_gateway(self):
        gateway = self.make_gateway()
        engine = self.make_tiny_engine()
        result, _ = gateway.submit_sql("alice", engine, "SELECT sum(v) FROM t")
        trace = result.trace
        assert trace.root.name == "gateway.submit"
        assert [s.attributes["cluster"] for s in trace.find("gateway.route")] == [
            "dedicated-a"
        ]
        assert len(trace.find("cluster.admission")) == 1
        assert_query_observable(result, engine.metrics)

    def test_failed_over_query_keeps_both_attempts_in_one_tree(self):
        # Same deterministic failover as the gateway suite: with retries
        # disabled, seed 18 dooms the run on dedicated-a and passes the
        # rerun on dedicated-b.
        gateway = self.make_gateway()
        engine = self.make_tiny_engine(
            fault_injector=FaultInjector(seed=18, task_failure_rate=0.05),
            max_task_retries=0,
        )
        result, execution = gateway.submit_sql("alice", engine, "SELECT sum(v) FROM t")
        assert gateway.failovers == 1
        assert execution.query_id.startswith("dedicated-b")
        trace = result.trace
        assert [s.attributes["cluster"] for s in trace.find("gateway.route")] == [
            "dedicated-a",
            "dedicated-b",
        ]
        # Both the doomed run and the rerun left complete query subtrees;
        # the stats describe the last one, and it still reconciles.
        assert len(trace.find("query")) == 2
        assert_query_observable(result, engine.metrics)


class TestCacheAndStorageObservability:
    def test_fragment_cache_metrics_reconcile_with_cache_stats(self):
        cache = FragmentResultCache()
        engine = make_engine(fragment_result_cache=cache)
        first = engine.execute(TPCH_SQL)
        second = engine.execute(TPCH_SQL)
        assert cache.stats.hits > 0
        assert_cache_metrics_reconcile(engine.metrics, "fragment_result", cache.stats)
        # The rerun's splits were all served from cache, and its split
        # spans say so.
        assert {
            s.attributes["cache"] for s in second.trace.find("split")
        } == {"hit"}
        assert {
            s.attributes["cache"] for s in first.trace.find("split")
        } == {"miss"}

    def test_hdfs_backed_query_emits_storage_spans(self):
        from repro.connectors.hive import HiveConnector
        from repro.metastore.metastore import HiveMetastore
        from repro.storage.hdfs import HdfsFileSystem
        from repro.workloads.trips import load_trips_table

        metastore = HiveMetastore()
        fs = HdfsFileSystem()
        load_trips_table(
            metastore,
            fs,
            ["2017-03-01"],
            rows_per_date=60,
            row_group_size=30,
            num_cities=5,
            table="trips",
        )
        engine = PrestoEngine(session=Session(catalog="hive", schema="rawdata"))
        engine.register_connector("hive", HiveConnector(metastore, fs))
        result = engine.execute("SELECT count(*) FROM trips")
        assert result.rows == [(60,)]
        assert_trace_reconciles(result)
        storage = result.trace.find("storage")
        assert storage
        assert {s.attributes["system"] for s in storage} == {"hdfs"}
        assert {s.attributes["operation"] for s in storage} >= {"open"}


class TestRenderingAndCli:
    def test_explain_analyze_renders_critical_path(self):
        engine = make_engine()
        result = engine.execute(f"EXPLAIN ANALYZE {TPCH_SQL}")
        text = "\n".join(row[0] for row in result.rows)
        assert "Critical path:" in text
        # The rendered critical-path total is the simulated total from the
        # header line: both derive from the same trace.
        header = next(line for line in text.splitlines() if "simulated ms" in line)
        critical = next(
            line for line in text.splitlines() if line.startswith("Critical path:")
        )
        assert header.split("simulated ms")[0].split(",")[-1].strip() == (
            critical.split(":")[1].split("simulated")[0].strip()
        )

    def test_cli_trace_and_metrics_flags_dump_json(self):
        from repro.cli import main

        out = io.StringIO()
        engine = TestGatewayTrace.make_tiny_engine()
        code = main(
            ["-e", "SELECT count(*) FROM t", "--trace", "--metrics"],
            engine=engine,
            stdout=out,
        )
        assert code == 0
        text = out.getvalue()
        assert '"spans"' in text
        assert '"counters"' in text
        assert "engine_queries_total" in text
