"""Unit tests for the deterministic span tracer."""

import pytest

from repro.obs.trace import QueryTrace, activate, current_tracer


def build_sample_trace():
    """A small hand-built tree: root > (fast child, slow child > leaf)."""
    trace = QueryTrace()
    with trace.span("root"):
        with trace.span("fast"):
            trace.advance(2.0)
        with trace.span("slow"):
            trace.advance(3.0)
            with trace.span("leaf"):
                trace.advance(5.0)
    return trace


class TestSpanTree:
    def test_parent_child_links(self):
        trace = build_sample_trace()
        root = trace.root
        assert root.name == "root"
        assert root.parent_id is None
        names = {span.name: span for span in trace.spans}
        assert names["fast"].parent_id == root.span_id
        assert names["slow"].parent_id == root.span_id
        assert names["leaf"].parent_id == names["slow"].span_id
        assert [s.name for s in trace.children(root)] == ["fast", "slow"]

    def test_span_ids_are_sequential(self):
        trace = build_sample_trace()
        assert [s.span_id for s in trace.spans] == [0, 1, 2, 3]

    def test_durations_come_from_the_simulated_clock(self):
        trace = build_sample_trace()
        names = {span.name: span for span in trace.spans}
        assert names["fast"].duration_ms == 2.0
        assert names["leaf"].duration_ms == 5.0
        assert names["slow"].duration_ms == 8.0
        assert trace.root.duration_ms == 10.0

    def test_instant_spans_have_zero_duration(self):
        trace = QueryTrace()
        with trace.span("root"):
            trace.advance(1.0)
            span = trace.instant("event", rows=7)
        assert span.duration_ms == 0.0
        assert span.start_ms == 1.0
        assert span.attributes == {"rows": 7}
        assert span.parent_id == trace.root.span_id

    def test_span_closes_on_exception(self):
        trace = QueryTrace()
        with pytest.raises(RuntimeError):
            with trace.span("root"):
                trace.advance(4.0)
                raise RuntimeError("boom")
        assert trace.root.end_ms == 4.0
        # The stack unwound: the next span is a fresh root, not a child.
        with trace.span("second"):
            pass
        assert trace.spans[1].parent_id is None

    def test_find_returns_all_matches_in_creation_order(self):
        trace = QueryTrace()
        with trace.span("root"):
            trace.instant("event", n=1)
            trace.instant("event", n=2)
        events = trace.find("event")
        assert [s.attributes["n"] for s in events] == [1, 2]
        assert trace.find("missing") == []

    def test_set_attaches_attributes(self):
        trace = QueryTrace()
        with trace.span("root") as span:
            span.set(outcome="ok", rows=3)
        assert trace.root.attributes == {"outcome": "ok", "rows": 3}


class TestCriticalPath:
    def test_contributions_telescope_to_root_duration(self):
        trace = build_sample_trace()
        entries = trace.critical_path()
        assert [e.span.name for e in entries] == ["root", "slow", "leaf"]
        # root contributes 10-8, slow contributes 8-5, leaf its full 5.
        assert [e.contribution_ms for e in entries] == [2.0, 3.0, 5.0]
        assert trace.critical_path_ms() == trace.root.duration_ms

    def test_ties_break_on_latest_span_id(self):
        trace = QueryTrace()
        with trace.span("root"):
            trace.instant("a")
            trace.instant("b")
        entries = trace.critical_path()
        assert [e.span.name for e in entries] == ["root", "b"]

    def test_path_from_subtree(self):
        trace = build_sample_trace()
        slow = trace.find("slow")[0]
        entries = trace.critical_path(slow)
        assert [e.span.name for e in entries] == ["slow", "leaf"]
        assert sum(e.contribution_ms for e in entries) == slow.duration_ms

    def test_empty_trace(self):
        assert QueryTrace().critical_path() == []
        assert QueryTrace().critical_path_ms() == 0.0


class TestSerialization:
    def test_to_json_is_byte_identical_across_runs(self):
        assert build_sample_trace().to_json() == build_sample_trace().to_json()

    def test_to_dict_round_trips_fields(self):
        trace = build_sample_trace()
        payload = trace.to_dict()
        assert len(payload["spans"]) == 4
        first = payload["spans"][0]
        assert first["name"] == "root"
        assert first["parent_id"] is None
        assert first["start_ms"] == 0.0


class TestActiveTracer:
    def test_no_tracer_outside_activation(self):
        assert current_tracer() is None

    def test_activate_stacks_and_restores(self):
        outer, inner = QueryTrace(), QueryTrace()
        with activate(outer):
            assert current_tracer() is outer
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None

    def test_activation_pops_on_exception(self):
        trace = QueryTrace()
        with pytest.raises(RuntimeError):
            with activate(trace):
                raise RuntimeError("boom")
        assert current_tracer() is None
