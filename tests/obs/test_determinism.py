"""Determinism regression: same seed, byte-identical observability.

The acceptance bar for the tracing layer: running the same seeded
fault-injection query on two identically constructed engines produces a
byte-identical serialized trace AND a byte-identical metrics snapshot —
span ids, simulated timestamps, retry/backoff spans and every counter
series included.
"""

from repro.connectors.memory import MemoryConnector
from repro.execution.engine import PrestoEngine
from repro.execution.faults import FaultInjector
from repro.planner.analyzer import Session
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem

TPCH_SQL = (
    "SELECT returnflag, linestatus, sum(quantity), avg(extendedprice), count(*) "
    "FROM lineitem GROUP BY returnflag, linestatus ORDER BY returnflag, linestatus"
)


def make_engine(**kwargs):
    connector = MemoryConnector(split_size=31)
    connector.create_table("db", "lineitem", LINEITEM_COLUMNS, generate_lineitem(250))
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **kwargs)
    engine.register_connector("memory", connector)
    return engine


def run_seeded_query():
    engine = make_engine(
        fault_injector=FaultInjector(seed=7, task_failure_rate=0.1)
    )
    result = engine.execute(TPCH_SQL)
    return engine, result


class TestTraceDeterminism:
    def test_same_seed_serializes_byte_identically(self):
        engine_a, first = run_seeded_query()
        engine_b, second = run_seeded_query()
        # The injected failures really fired, so retry/backoff spans are
        # part of what must reproduce.
        assert first.stats.tasks_retried > 0
        assert first.trace.to_json() == second.trace.to_json()
        assert first.trace.to_json(indent=2) == second.trace.to_json(indent=2)
        assert engine_a.metrics.to_json() == engine_b.metrics.to_json()
        assert engine_a.metrics.snapshot() == engine_b.metrics.snapshot()

    def test_different_seed_changes_the_trace(self):
        _, baseline = run_seeded_query()
        other_engine = make_engine(
            fault_injector=FaultInjector(seed=8, task_failure_rate=0.1)
        )
        other = other_engine.execute(TPCH_SQL)
        assert baseline.trace.to_json() != other.trace.to_json()

    def test_clean_run_is_also_deterministic(self):
        first_engine = make_engine()
        second_engine = make_engine()
        first = first_engine.execute(TPCH_SQL)
        second = second_engine.execute(TPCH_SQL)
        assert first.trace.to_json() == second.trace.to_json()
        assert first_engine.metrics.to_json() == second_engine.metrics.to_json()
