"""Tests for the expression compiler (core/compiler.py).

Covers the tentpole behaviours: null-aware vectorized apply (no Python
loop on null-bearing pages), string/object kernels, dictionary-aware
evaluation, constant folding, the compile cache, and the QueryStats lane
counters the EXPLAIN ANALYZE output reports.
"""

import numpy as np
import pytest

from repro.core.blocks import DictionaryBlock, PrimitiveBlock
from repro.core.compiler import (
    INTERPRETED,
    ConstantKernel,
    EvaluatorOptions,
    compile_cached,
)
from repro.core.evaluator import Evaluator
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    SpecialForm,
    SpecialFormExpression,
    and_,
    constant,
    not_,
    or_,
    variable,
)
from repro.core.functions import default_registry
from repro.core.types import BIGINT, BOOLEAN, DOUBLE, VARCHAR
from repro.execution.context import QueryStats


def call(name, args, arg_types):
    handle, _ = default_registry().resolve_scalar(name, arg_types)
    return CallExpression(name, handle, handle.resolved_return_type(), tuple(args))


@pytest.fixture
def stats():
    return QueryStats()


@pytest.fixture
def evaluator(stats):
    return Evaluator(stats=stats)


@pytest.fixture
def oracle():
    return Evaluator(options=EvaluatorOptions(mode=INTERPRETED))


class TestNullAwareApply:
    def test_null_page_stays_vectorized(self, evaluator, stats):
        x = PrimitiveBlock.from_values(BIGINT, [1, None, 3, None])
        expr = call("add", [variable("x", BIGINT), constant(10, BIGINT)], [BIGINT, BIGINT])
        result = evaluator.evaluate(expr, {"x": x}, 4)
        assert result.to_list() == [11, None, 13, None]
        assert stats.expr_positions_vectorized == 4
        assert stats.expr_positions_fallback == 0

    def test_null_divisor_lane_does_not_raise(self, evaluator):
        # The null lane's divisor is 0 in storage; the sentinel fill must
        # keep the vectorized divide from seeing it.
        x = PrimitiveBlock.from_values(BIGINT, [10, 20, 30])
        y = PrimitiveBlock(
            BIGINT,
            np.array([2, 0, 5], dtype=np.int64),
            np.array([False, True, False]),
        )
        expr = call("divide", [variable("x", BIGINT), variable("y", BIGINT)], [BIGINT, BIGINT])
        assert evaluator.evaluate(expr, {"x": x, "y": y}, 3).to_list() == [5, None, 6]

    def test_real_division_by_zero_still_raises(self, evaluator):
        x = PrimitiveBlock.from_values(BIGINT, [1, None])
        expr = call("divide", [variable("x", BIGINT), constant(0, BIGINT)], [BIGINT, BIGINT])
        with pytest.raises(ZeroDivisionError):
            evaluator.evaluate(expr, {"x": x}, 2)

    def test_all_null_page_short_circuits(self, evaluator, stats):
        x = PrimitiveBlock.from_values(BIGINT, [None, None])
        expr = call("add", [variable("x", BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        assert evaluator.evaluate(expr, {"x": x}, 2).to_list() == [None, None]
        assert stats.expr_positions_fallback == 0

    def test_matches_interpreter_on_nullable_doubles(self, evaluator, oracle):
        x = PrimitiveBlock.from_values(DOUBLE, [1.5, None, -2.25, 4.0])
        expr = call(
            "multiply", [variable("x", DOUBLE), constant(2.0, DOUBLE)], [DOUBLE, DOUBLE]
        )
        compiled = evaluator.evaluate(expr, {"x": x}, 4).to_list()
        interpreted = oracle.evaluate(expr, {"x": x}, 4).to_list()
        assert compiled == interpreted


class TestStringKernels:
    def test_vectorized_string_functions_with_nulls(self, evaluator, stats):
        s = PrimitiveBlock.from_values(VARCHAR, ["Hello", None, "wOrLd"])
        expr = call("upper", [variable("s", VARCHAR)], [VARCHAR])
        assert evaluator.evaluate(expr, {"s": s}, 3).to_list() == ["HELLO", None, "WORLD"]
        assert stats.expr_positions_fallback == 0
        assert stats.expr_positions_vectorized == 3

    def test_substr_and_concat(self, evaluator, stats):
        s = PrimitiveBlock.from_values(VARCHAR, ["presto", None, "engine"])
        expr = call(
            "concat",
            [
                call(
                    "substr",
                    [variable("s", VARCHAR), constant(1, BIGINT), constant(3, BIGINT)],
                    [VARCHAR, BIGINT, BIGINT],
                ),
                constant("!", VARCHAR),
            ],
            [VARCHAR, VARCHAR],
        )
        assert evaluator.evaluate(expr, {"s": s}, 3).to_list() == ["pre!", None, "eng!"]
        assert stats.expr_positions_fallback == 0

    def test_trim(self, evaluator):
        s = PrimitiveBlock.from_values(VARCHAR, ["  a  ", "b", None])
        expr = call("trim", [variable("s", VARCHAR)], [VARCHAR])
        assert evaluator.evaluate(expr, {"s": s}, 3).to_list() == ["a", "b", None]

    def test_like_constant_pattern_precompiled(self, evaluator, stats):
        s = PrimitiveBlock.from_values(VARCHAR, ["air%plane", "airline", None, "jet"])
        expr = call(
            "like", [variable("s", VARCHAR), constant("air%", VARCHAR)], [VARCHAR, VARCHAR]
        )
        compiled = evaluator.compiled(expr)
        from repro.core.compiler import DictionaryKernel, LikeConstantKernel

        kernel = compiled.kernel
        if isinstance(kernel, DictionaryKernel):
            kernel = kernel.inner
        assert isinstance(kernel, LikeConstantKernel)
        assert evaluator.evaluate(expr, {"s": s}, 4).to_list() == [True, True, None, False]
        assert stats.expr_positions_fallback == 0

    def test_like_underscore_and_regex_metachars(self, evaluator, oracle):
        s = PrimitiveBlock.from_values(VARCHAR, ["a.c", "abc", "a%c", "ac"])
        for pattern in ["a_c", "a.c", "a%", "%c", "a%c"]:
            expr = call(
                "like",
                [variable("s", VARCHAR), constant(pattern, VARCHAR)],
                [VARCHAR, VARCHAR],
            )
            assert (
                evaluator.evaluate(expr, {"s": s}, 4).to_list()
                == oracle.evaluate(expr, {"s": s}, 4).to_list()
            ), pattern


class TestDictionaryEvaluation:
    def test_compound_expression_runs_on_dictionary(self, evaluator, stats):
        dictionary = PrimitiveBlock.from_values(VARCHAR, ["aa", "bbbb"])
        ids = np.array([0, 1, 0, 0, 1, 0, 1, 0])
        block = DictionaryBlock(dictionary, ids)
        # length(s) > 3 — a multi-node subtree, not just a single call.
        expr = call(
            "greater_than",
            [call("length", [variable("s", VARCHAR)], [VARCHAR]), constant(3, BIGINT)],
            [BIGINT, BIGINT],
        )
        result = evaluator.evaluate(expr, {"s": block}, 8)
        assert isinstance(result, DictionaryBlock)
        assert result.to_list() == [False, True, False, False, True, False, True, False]
        # 8 positions requested, 2 dictionary entries evaluated.
        assert stats.expr_positions_dictionary_saved == 6

    def test_null_ids_stay_null(self, evaluator, oracle):
        dictionary = PrimitiveBlock.from_values(VARCHAR, ["x", "yy"])
        ids = np.array([0, -1, 1, -1])
        block = DictionaryBlock(dictionary, ids)
        expr = call("length", [variable("s", VARCHAR)], [VARCHAR])
        compiled = evaluator.evaluate(expr, {"s": block}, 4).to_list()
        interpreted = oracle.evaluate(expr, {"s": block}, 4).to_list()
        assert compiled == interpreted == [1, None, 2, None]

    def test_is_null_not_dictionary_evaluated(self, evaluator):
        # IS_NULL maps null→True; wrapping it in the ids would lose that.
        dictionary = PrimitiveBlock.from_values(BIGINT, [1, 2])
        block = DictionaryBlock(dictionary, np.array([0, -1, 1]))
        expr = SpecialFormExpression(SpecialForm.IS_NULL, BOOLEAN, (variable("x", BIGINT),))
        assert evaluator.evaluate(expr, {"x": block}, 3).to_list() == [False, True, False]

    def test_plain_block_unaffected(self, evaluator):
        x = PrimitiveBlock.from_values(BIGINT, [1, 2, 3])
        expr = call("negate", [variable("x", BIGINT)], [BIGINT])
        assert evaluator.evaluate(expr, {"x": x}, 3).to_list() == [-1, -2, -3]

    def test_disabled_by_option(self, stats):
        evaluator = Evaluator(
            options=EvaluatorOptions(dictionary_optimization=False), stats=stats
        )
        dictionary = PrimitiveBlock.from_values(VARCHAR, ["aa", "bbb"])
        block = DictionaryBlock(dictionary, np.array([0, 1, 0]))
        expr = call("length", [variable("s", VARCHAR)], [VARCHAR])
        result = evaluator.evaluate(expr, {"s": block}, 3)
        assert result.to_list() == [2, 3, 2]
        assert stats.expr_positions_dictionary_saved == 0


class TestConstantFolding:
    def test_literal_subtree_folds(self, evaluator):
        expr = call("multiply", [constant(6, BIGINT), constant(7, BIGINT)], [BIGINT, BIGINT])
        compiled = evaluator.compiled(expr)
        assert isinstance(compiled.kernel, ConstantKernel)
        assert compiled.kernel.value == 42

    def test_where_one_equals_one_vanishes(self, evaluator):
        x_pred = call(
            "greater_than", [variable("x", BIGINT), constant(0, BIGINT)], [BIGINT, BIGINT]
        )
        one_eq_one = call("equal", [constant(1, BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        folded = evaluator.compiled(and_(x_pred, one_eq_one)).expression
        # The 1=1 conjunct is pruned; only the real predicate remains.
        assert folded == x_pred

    def test_always_true_predicate_detected(self, evaluator):
        one_eq_one = call("equal", [constant(1, BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        assert evaluator.predicate_is_always_true(one_eq_one)
        assert evaluator.predicate_is_always_true(and_(one_eq_one, constant(True, BOOLEAN)))
        real = call("less_than", [variable("x", BIGINT), constant(5, BIGINT)], [BIGINT, BIGINT])
        assert not evaluator.predicate_is_always_true(real)

    def test_false_conjunct_short_circuits(self, evaluator):
        real = call("less_than", [variable("x", BIGINT), constant(5, BIGINT)], [BIGINT, BIGINT])
        folded = evaluator.compiled(and_(real, constant(False, BOOLEAN))).expression
        assert folded == ConstantExpression(False, BOOLEAN)

    def test_null_conjunct_not_pruned(self, evaluator, oracle):
        # AND(x, NULL) is not AND(x): false AND null = false, true AND null = null.
        x = PrimitiveBlock.from_values(BOOLEAN, [True, False, None])
        expr = and_(variable("x", BOOLEAN), constant(None, BOOLEAN))
        compiled = evaluator.evaluate(expr, {"x": x}, 3).to_list()
        interpreted = oracle.evaluate(expr, {"x": x}, 3).to_list()
        assert compiled == interpreted == [None, False, None]

    def test_folding_never_raises_at_compile_time(self, evaluator):
        # 1/0 must raise when evaluated, not when compiled.
        expr = call("divide", [constant(1, BIGINT), constant(0, BIGINT)], [BIGINT, BIGINT])
        compiled = evaluator.compiled(expr)
        with pytest.raises(ZeroDivisionError):
            compiled.evaluate({}, 1)

    def test_coalesce_drops_leading_nulls(self, evaluator):
        expr = SpecialFormExpression(
            SpecialForm.COALESCE,
            BIGINT,
            (constant(None, BIGINT), variable("x", BIGINT), constant(0, BIGINT)),
        )
        folded = evaluator.compiled(expr).expression
        assert isinstance(folded, SpecialFormExpression)
        assert folded.arguments[0] == variable("x", BIGINT)

    def test_disabled_by_option(self):
        evaluator = Evaluator(options=EvaluatorOptions(constant_folding=False))
        expr = call("multiply", [constant(6, BIGINT), constant(7, BIGINT)], [BIGINT, BIGINT])
        assert not isinstance(evaluator.compiled(expr).kernel, ConstantKernel)
        assert evaluator.evaluate_scalar(expr) == 42


class TestLanes:
    def test_interpreted_mode_counts_fallback(self, stats):
        evaluator = Evaluator(options=EvaluatorOptions(mode=INTERPRETED), stats=stats)
        x = PrimitiveBlock.from_values(BIGINT, [1, 2, 3])
        expr = call("add", [variable("x", BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        assert evaluator.evaluate(expr, {"x": x}, 3).to_list() == [2, 3, 4]
        assert stats.expr_positions_fallback == 3
        assert stats.expr_positions_vectorized == 0

    def test_kleene_and_not_in_are_vectorized(self, evaluator, stats):
        a = PrimitiveBlock.from_values(BOOLEAN, [True, None, False])
        x = PrimitiveBlock.from_values(BIGINT, [1, 2, None])
        expr = and_(
            or_(variable("a", BOOLEAN), not_(variable("a", BOOLEAN))),
            SpecialFormExpression(
                SpecialForm.IN,
                BOOLEAN,
                (variable("x", BIGINT), constant(1, BIGINT), constant(2, BIGINT)),
            ),
        )
        result = evaluator.evaluate(expr, {"a": a, "x": x}, 3)
        assert result.to_list() == [True, None, None]
        assert stats.expr_positions_fallback == 0

    def test_interpreter_nodes_zero_for_supported_tree(self, evaluator):
        expr = and_(
            call("less_than", [variable("x", BIGINT), constant(5, BIGINT)], [BIGINT, BIGINT]),
            not_(SpecialFormExpression(SpecialForm.IS_NULL, BOOLEAN, (variable("x", BIGINT),))),
        )
        assert evaluator.compiled(expr).interpreter_nodes == 0


class TestCompileCache:
    def test_shared_across_evaluators(self):
        registry = default_registry()
        a = Evaluator(registry)
        b = Evaluator(registry)
        expr_a = call("add", [variable("x", BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        expr_b = call("add", [variable("x", BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        assert expr_a is not expr_b
        assert a.compiled(expr_a) is b.compiled(expr_b)

    def test_distinct_options_compile_separately(self):
        registry = default_registry()
        expr = call("multiply", [constant(6, BIGINT), constant(7, BIGINT)], [BIGINT, BIGINT])
        folded = compile_cached(registry, EvaluatorOptions(), expr)
        unfolded = compile_cached(
            registry, EvaluatorOptions(constant_folding=False), expr
        )
        assert isinstance(folded.kernel, ConstantKernel)
        assert not isinstance(unfolded.kernel, ConstantKernel)

    def test_lru_bound(self):
        registry = default_registry()
        options = EvaluatorOptions(cache_size=2)
        exprs = [
            call("add", [variable("x", BIGINT), constant(i, BIGINT)], [BIGINT, BIGINT])
            for i in range(4)
        ]
        first = compile_cached(registry, options, exprs[0])
        for e in exprs[1:]:
            compile_cached(registry, options, e)
        # exprs[0] was evicted; recompiling yields a fresh object.
        assert compile_cached(registry, options, exprs[0]) is not first
