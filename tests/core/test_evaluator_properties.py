"""Property tests: SQL three-valued logic laws in the evaluator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import PrimitiveBlock
from repro.core.evaluator import Evaluator
from repro.core.expressions import and_, not_, or_, variable
from repro.core.types import BOOLEAN

tristate = st.one_of(st.none(), st.booleans())
tristate_lists = st.lists(tristate, min_size=1, max_size=20)

EVALUATOR = Evaluator()


def evaluate(expression, **columns):
    n = len(next(iter(columns.values())))
    bindings = {
        name: PrimitiveBlock.from_values(BOOLEAN, values)
        for name, values in columns.items()
    }
    return EVALUATOR.evaluate(expression, bindings, n).to_list()


A = variable("a", BOOLEAN)
B = variable("b", BOOLEAN)


def kleene_and(x, y):
    if x is False or y is False:
        return False
    if x is None or y is None:
        return None
    return True


def kleene_or(x, y):
    if x is True or y is True:
        return True
    if x is None or y is None:
        return None
    return False


@given(tristate_lists, st.data())
@settings(max_examples=200, deadline=None)
def test_and_matches_kleene_truth_table(a_values, data):
    b_values = data.draw(
        st.lists(tristate, min_size=len(a_values), max_size=len(a_values))
    )
    result = evaluate(and_(A, B), a=a_values, b=b_values)
    assert result == [kleene_and(x, y) for x, y in zip(a_values, b_values)]


@given(tristate_lists, st.data())
@settings(max_examples=200, deadline=None)
def test_or_matches_kleene_truth_table(a_values, data):
    b_values = data.draw(
        st.lists(tristate, min_size=len(a_values), max_size=len(a_values))
    )
    result = evaluate(or_(A, B), a=a_values, b=b_values)
    assert result == [kleene_or(x, y) for x, y in zip(a_values, b_values)]


@given(tristate_lists)
@settings(max_examples=100, deadline=None)
def test_double_negation(a_values):
    assert evaluate(not_(not_(A)), a=a_values) == a_values


@given(tristate_lists, st.data())
@settings(max_examples=150, deadline=None)
def test_de_morgan(a_values, data):
    b_values = data.draw(
        st.lists(tristate, min_size=len(a_values), max_size=len(a_values))
    )
    left = evaluate(not_(and_(A, B)), a=a_values, b=b_values)
    right = evaluate(or_(not_(A), not_(B)), a=a_values, b=b_values)
    assert left == right


@given(tristate_lists, st.data())
@settings(max_examples=150, deadline=None)
def test_commutativity(a_values, data):
    b_values = data.draw(
        st.lists(tristate, min_size=len(a_values), max_size=len(a_values))
    )
    assert evaluate(and_(A, B), a=a_values, b=b_values) == evaluate(
        and_(B, A), a=a_values, b=b_values
    )
    assert evaluate(or_(A, B), a=a_values, b=b_values) == evaluate(
        or_(B, A), a=a_values, b=b_values
    )


@given(tristate_lists)
@settings(max_examples=100, deadline=None)
def test_filter_mask_treats_null_as_false(a_values):
    mask = EVALUATOR.filter_mask(
        A, {"a": PrimitiveBlock.from_values(BOOLEAN, a_values)}, len(a_values)
    )
    assert list(mask) == [v is True for v in a_values]
