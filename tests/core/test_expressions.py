"""Tests for the RowExpression representation of Table I.

Table I lists five self-contained subtypes; these tests verify each one
round-trips through serialization (the property that makes pushdown to
connectors possible) and that function handles resolve consistently.
"""

import pytest

from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    LambdaDefinitionExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
    and_,
    combine_conjuncts,
    conjuncts,
    constant,
    dereference,
    expression_from_dict,
    not_,
    or_,
    variable,
)
from repro.core.functions import FunctionHandle, default_registry
from repro.core.types import BIGINT, BOOLEAN, DOUBLE, RowType, VARCHAR


def _call(name, args, arg_types):
    handle, _ = default_registry().resolve_scalar(name, arg_types)
    return CallExpression(name, handle, handle.resolved_return_type(), tuple(args))


class TestConstantExpression:
    def test_round_trip(self):
        expr = ConstantExpression(1, BIGINT)
        assert expression_from_dict(expr.to_dict()) == expr

    def test_varchar_round_trip(self):
        expr = ConstantExpression("string", VARCHAR)
        restored = expression_from_dict(expr.to_dict())
        assert restored.value == "string"
        assert restored.type is VARCHAR

    def test_display(self):
        assert ConstantExpression(1, BIGINT).display() == "1"
        assert ConstantExpression("x", VARCHAR).display() == "'x'"


class TestVariableReferenceExpression:
    def test_round_trip(self):
        expr = VariableReferenceExpression("city_id", BIGINT)
        assert expression_from_dict(expr.to_dict()) == expr

    def test_nested_type_round_trip(self):
        row = RowType.of(("city_id", BIGINT))
        expr = VariableReferenceExpression("base", row)
        restored = expression_from_dict(expr.to_dict())
        assert restored.type == row


class TestCallExpression:
    def test_round_trip_with_function_handle(self):
        expr = _call("add", [variable("a", BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        restored = expression_from_dict(expr.to_dict())
        assert restored == expr
        assert restored.function_handle.name == "add"
        assert restored.function_handle.return_type == "bigint"

    def test_handle_is_self_contained(self):
        # A connector can re-resolve the implementation from the handle alone.
        expr = _call("equal", [variable("x", BIGINT), constant(12, BIGINT)], [BIGINT, BIGINT])
        data = expr.to_dict()
        handle = FunctionHandle.from_dict(data["functionHandle"])
        implementation = default_registry().implementation_for(handle)
        assert implementation.row_fn(12, 12) is True

    def test_infix_display(self):
        expr = _call("equal", [variable("x", BIGINT), constant(12, BIGINT)], [BIGINT, BIGINT])
        assert expr.display() == "(x = 12)"


class TestSpecialFormExpression:
    def test_all_forms_round_trip(self):
        x = variable("x", BOOLEAN)
        for expr in [
            and_(x, x),
            or_(x, x),
            not_(x),
            SpecialFormExpression(SpecialForm.IS_NULL, BOOLEAN, (x,)),
            SpecialFormExpression(
                SpecialForm.IN, BOOLEAN, (variable("v", BIGINT), constant(1, BIGINT))
            ),
            SpecialFormExpression(
                SpecialForm.IF, BIGINT, (x, constant(1, BIGINT), constant(2, BIGINT))
            ),
            SpecialFormExpression(
                SpecialForm.COALESCE, BIGINT, (variable("v", BIGINT), constant(0, BIGINT))
            ),
        ]:
            assert expression_from_dict(expr.to_dict()) == expr

    def test_dereference(self):
        row = RowType.of(("city_id", BIGINT))
        expr = dereference(variable("base", row), "city_id", BIGINT)
        assert expr.display() == "base.city_id"
        restored = expression_from_dict(expr.to_dict())
        assert restored == expr


class TestLambdaDefinitionExpression:
    def test_round_trip(self):
        # (x:BIGINT, y:BIGINT):BIGINT -> x + y, straight from Table I.
        body = _call(
            "add", [variable("x", BIGINT), variable("y", BIGINT)], [BIGINT, BIGINT]
        )
        expr = LambdaDefinitionExpression(("x", "y"), (BIGINT, BIGINT), body, BIGINT)
        restored = expression_from_dict(expr.to_dict())
        assert restored == expr
        assert restored.display() == "(x, y) -> (x + y)"


class TestConjunctHelpers:
    def test_and_flattens(self):
        a, b, c = (variable(n, BOOLEAN) for n in "abc")
        expr = and_(and_(a, b), c)
        assert conjuncts(expr) == [a, b, c]

    def test_combine_round_trip(self):
        a, b = variable("a", BOOLEAN), variable("b", BOOLEAN)
        combined = combine_conjuncts([a, b])
        assert conjuncts(combined) == [a, b]
        assert combine_conjuncts([]) is None
        assert combine_conjuncts([a]) == a

    def test_variables_collects_unique_references(self):
        a = variable("a", BIGINT)
        expr = _call("add", [a, _call("add", [a, variable("b", BIGINT)], [BIGINT, BIGINT])], [BIGINT, BIGINT])
        names = [v.name for v in expr.variables()]
        assert names == ["a", "b"]


class TestFunctionRegistry:
    def test_unknown_function_rejected(self):
        from repro.common.errors import SemanticError

        with pytest.raises(SemanticError):
            default_registry().resolve_scalar("no_such_fn", [BIGINT])

    def test_no_overload_rejected(self):
        from repro.common.errors import SemanticError

        with pytest.raises(SemanticError):
            default_registry().resolve_scalar("add", [VARCHAR, VARCHAR])

    def test_numeric_widening_in_resolution(self):
        handle, _ = default_registry().resolve_scalar("add", [BIGINT, DOUBLE])
        assert handle.return_type == "double"

    def test_aggregate_resolution(self):
        handle, fn = default_registry().resolve_aggregate("count", [])
        assert handle.return_type == "bigint"
        state = fn.create_state()
        state = fn.add_input(state, ())
        state = fn.merge(state, 5)
        assert fn.finalize(state) == 6
