"""Tests for the vectorized RowExpression evaluator."""

import numpy as np
import pytest

from repro.core.blocks import DictionaryBlock, LazyBlock, PrimitiveBlock, RowBlock
from repro.core.evaluator import Evaluator, constant_block
from repro.core.expressions import (
    CallExpression,
    SpecialForm,
    SpecialFormExpression,
    and_,
    constant,
    dereference,
    not_,
    or_,
    variable,
)
from repro.core.functions import default_registry
from repro.core.types import BIGINT, BOOLEAN, DOUBLE, RowType, VARCHAR


def call(name, args, arg_types):
    handle, _ = default_registry().resolve_scalar(name, arg_types)
    return CallExpression(name, handle, handle.resolved_return_type(), tuple(args))


@pytest.fixture
def evaluator():
    return Evaluator()


class TestBasicEvaluation:
    def test_constant(self, evaluator):
        block = evaluator.evaluate(constant(7, BIGINT), {}, 3)
        assert block.to_list() == [7, 7, 7]

    def test_variable(self, evaluator):
        x = PrimitiveBlock.from_values(BIGINT, [1, 2])
        block = evaluator.evaluate(variable("x", BIGINT), {"x": x}, 2)
        assert block is x

    def test_vectorized_arithmetic(self, evaluator):
        x = PrimitiveBlock.from_values(BIGINT, [1, 2, 3])
        expr = call("add", [variable("x", BIGINT), constant(10, BIGINT)], [BIGINT, BIGINT])
        assert evaluator.evaluate(expr, {"x": x}, 3).to_list() == [11, 12, 13]

    def test_null_propagation_through_calls(self, evaluator):
        x = PrimitiveBlock.from_values(BIGINT, [1, None, 3])
        expr = call("add", [variable("x", BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        assert evaluator.evaluate(expr, {"x": x}, 3).to_list() == [2, None, 4]

    def test_integer_division_truncates_toward_zero(self, evaluator):
        x = PrimitiveBlock.from_values(BIGINT, [7, -7])
        expr = call("divide", [variable("x", BIGINT), constant(2, BIGINT)], [BIGINT, BIGINT])
        assert evaluator.evaluate(expr, {"x": x}, 2).to_list() == [3, -3]

    def test_division_by_zero_raises(self, evaluator):
        x = PrimitiveBlock.from_values(BIGINT, [1])
        expr = call("divide", [variable("x", BIGINT), constant(0, BIGINT)], [BIGINT, BIGINT])
        with pytest.raises(ZeroDivisionError):
            evaluator.evaluate(expr, {"x": x}, 1)

    def test_string_functions(self, evaluator):
        s = PrimitiveBlock.from_values(VARCHAR, ["Hello", "WORLD"])
        expr = call("lower", [variable("s", VARCHAR)], [VARCHAR])
        assert evaluator.evaluate(expr, {"s": s}, 2).to_list() == ["hello", "world"]

    def test_evaluate_scalar(self, evaluator):
        expr = call("multiply", [constant(6, BIGINT), constant(7, BIGINT)], [BIGINT, BIGINT])
        assert evaluator.evaluate_scalar(expr) == 42


class TestThreeValuedLogic:
    def test_and_kleene(self, evaluator):
        a = PrimitiveBlock.from_values(BOOLEAN, [True, True, False, None, None])
        b = PrimitiveBlock.from_values(BOOLEAN, [True, None, None, False, None])
        expr = and_(variable("a", BOOLEAN), variable("b", BOOLEAN))
        result = evaluator.evaluate(expr, {"a": a, "b": b}, 5)
        # true&true=true, true&null=null, false&null=false, null&false=false, null&null=null
        assert result.to_list() == [True, None, False, False, None]

    def test_or_kleene(self, evaluator):
        a = PrimitiveBlock.from_values(BOOLEAN, [False, False, True, None, None])
        b = PrimitiveBlock.from_values(BOOLEAN, [False, None, None, True, None])
        expr = or_(variable("a", BOOLEAN), variable("b", BOOLEAN))
        result = evaluator.evaluate(expr, {"a": a, "b": b}, 5)
        assert result.to_list() == [False, None, True, True, None]

    def test_not(self, evaluator):
        a = PrimitiveBlock.from_values(BOOLEAN, [True, False, None])
        result = evaluator.evaluate(not_(variable("a", BOOLEAN)), {"a": a}, 3)
        assert result.to_list() == [False, True, None]

    def test_is_null(self, evaluator):
        a = PrimitiveBlock.from_values(BIGINT, [1, None])
        expr = SpecialFormExpression(SpecialForm.IS_NULL, BOOLEAN, (variable("a", BIGINT),))
        assert evaluator.evaluate(expr, {"a": a}, 2).to_list() == [False, True]


class TestSpecialForms:
    def test_in_with_constants(self, evaluator):
        x = PrimitiveBlock.from_values(BIGINT, [1, 12, 99, None])
        expr = SpecialFormExpression(
            SpecialForm.IN,
            BOOLEAN,
            (variable("x", BIGINT), constant(12, BIGINT), constant(99, BIGINT)),
        )
        result = evaluator.evaluate(expr, {"x": x}, 4)
        assert result.get(0) is False
        assert result.get(1) is True
        assert result.get(2) is True
        assert result.get(3) is None

    def test_in_with_varchar(self, evaluator):
        x = PrimitiveBlock.from_values(VARCHAR, ["sf", "nyc"])
        expr = SpecialFormExpression(
            SpecialForm.IN, BOOLEAN, (variable("x", VARCHAR), constant("sf", VARCHAR))
        )
        assert evaluator.evaluate(expr, {"x": x}, 2).to_list() == [True, False]

    def test_if(self, evaluator):
        cond = PrimitiveBlock.from_values(BOOLEAN, [True, False, None])
        expr = SpecialFormExpression(
            SpecialForm.IF,
            BIGINT,
            (variable("c", BOOLEAN), constant(1, BIGINT), constant(2, BIGINT)),
        )
        assert evaluator.evaluate(expr, {"c": cond}, 3).to_list() == [1, 2, 2]

    def test_coalesce(self, evaluator):
        a = PrimitiveBlock.from_values(BIGINT, [None, 1, None])
        b = PrimitiveBlock.from_values(BIGINT, [5, 6, None])
        expr = SpecialFormExpression(
            SpecialForm.COALESCE,
            BIGINT,
            (variable("a", BIGINT), variable("b", BIGINT), constant(0, BIGINT)),
        )
        assert evaluator.evaluate(expr, {"a": a, "b": b}, 3).to_list() == [5, 1, 0]

    def test_dereference_on_row_block(self, evaluator):
        row_type = RowType.of(("city_id", BIGINT))
        base = RowBlock.from_values(row_type, [{"city_id": 12}, None, {"city_id": 7}])
        expr = dereference(variable("base", row_type), "city_id", BIGINT)
        result = evaluator.evaluate(expr, {"base": base}, 3)
        assert result.to_list() == [12, None, 7]

    def test_dereference_missing_field_returns_null(self, evaluator):
        # Schema evolution: a newly added field is absent from old files and
        # the engine returns null (section V.A).
        row_type = RowType.of(("city_id", BIGINT), ("new_field", VARCHAR))
        base = RowBlock(
            row_type, {"city_id": PrimitiveBlock.from_values(BIGINT, [1, 2])}
        )
        expr = dereference(variable("base", row_type), "new_field", VARCHAR)
        result = evaluator.evaluate(expr, {"base": base}, 2)
        assert result.to_list() == [None, None]


class TestFilterMask:
    def test_mask_treats_null_as_false(self, evaluator):
        x = PrimitiveBlock.from_values(BIGINT, [5, None, 20])
        expr = call(
            "greater_than", [variable("x", BIGINT), constant(10, BIGINT)], [BIGINT, BIGINT]
        )
        mask = evaluator.filter_mask(expr, {"x": x}, 3)
        assert list(mask) == [False, False, True]


class TestDictionaryFastPath:
    def test_single_arg_call_evaluates_on_dictionary(self, evaluator):
        dictionary = PrimitiveBlock.from_values(VARCHAR, ["aa", "bbb"])
        ids = np.array([0, 1, 0, 0, 1])
        block = DictionaryBlock(dictionary, ids)
        expr = call("length", [variable("s", VARCHAR)], [VARCHAR])
        result = evaluator.evaluate(expr, {"s": block}, 5)
        assert isinstance(result, DictionaryBlock)
        assert result.to_list() == [2, 3, 2, 2, 3]

    def test_dictionary_decoded_for_multi_arg(self, evaluator):
        dictionary = PrimitiveBlock.from_values(BIGINT, [1, 2])
        block = DictionaryBlock(dictionary, np.array([0, 1]))
        expr = call("add", [variable("x", BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        assert evaluator.evaluate(expr, {"x": block}, 2).to_list() == [2, 3]


class TestLazyInteraction:
    def test_lazy_block_not_loaded_by_unrelated_expression(self, evaluator):
        loads = []

        def loader():
            loads.append(1)
            return PrimitiveBlock.from_values(BIGINT, [1, 2])

        lazy = LazyBlock(BIGINT, 2, loader)
        other = PrimitiveBlock.from_values(BIGINT, [10, 20])
        expr = call("add", [variable("y", BIGINT), constant(1, BIGINT)], [BIGINT, BIGINT])
        evaluator.evaluate(expr, {"x": lazy, "y": other}, 2)
        assert not loads


class TestConstantBlock:
    def test_null_constant(self):
        block = constant_block(None, BIGINT, 2)
        assert block.to_list() == [None, None]

    def test_varchar_constant(self):
        block = constant_block("sf", VARCHAR, 3)
        assert block.to_list() == ["sf", "sf", "sf"]
