"""Custom function registration: the plugin extension surface.

The geospatial plugin (section VI.E) registers its functions through the
same public registry API exercised here — scalar UDFs with optional
vectorized implementations, and aggregate functions with full
create/add/merge/finalize state machines — and they become usable from
SQL immediately.
"""

import numpy as np
import pytest

from repro.connectors.memory import MemoryConnector
from repro.core.functions import (
    AggregateFunction,
    FunctionRegistry,
    ScalarFunction,
    default_registry,
)
from repro.core.types import BIGINT, DOUBLE, PrestoType, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session


def fixed(signature, return_type):
    expected = tuple(signature)

    def resolve(arg_types):
        if len(arg_types) != len(expected):
            return None
        if all(got == want for got, want in zip(arg_types, expected)):
            return return_type
        return None

    return resolve


@pytest.fixture
def engine():
    registry = FunctionRegistry()
    # Re-install the geo plugin on the private registry.
    from repro.geo.functions import register_geo_functions

    register_geo_functions(registry)

    registry.register_scalar(
        ScalarFunction(
            "fare_with_tip",
            fixed([DOUBLE, DOUBLE], DOUBLE),
            lambda fare, pct: fare * (1.0 + pct),
            vectorized=lambda fare, pct: fare * (1.0 + pct),
        )
    )
    registry.register_aggregate(
        AggregateFunction(
            "second_largest",
            lambda ts: ts[0] if len(ts) == 1 and ts[0].is_numeric() else None,
            create_state=list,
            add_input=lambda state, args: sorted(state + [args[0]])[-2:]
            if args[0] is not None
            else state,
            merge=lambda a, b: sorted(a + b)[-2:],
            finalize=lambda state: state[0] if len(state) == 2 else None,
        )
    )

    connector = MemoryConnector()
    connector.create_table(
        "db",
        "rides",
        [("fare", DOUBLE), ("tip_pct", DOUBLE)],
        [(10.0, 0.2), (20.0, 0.1), (30.0, 0.0)],
    )
    engine = PrestoEngine(
        session=Session(catalog="memory", schema="db"), registry=registry
    )
    engine.register_connector("memory", connector)
    return engine


class TestCustomScalar:
    def test_udf_usable_in_projection(self, engine):
        result = engine.execute(
            "SELECT fare_with_tip(fare, tip_pct) FROM rides ORDER BY 1"
        )
        assert result.rows == [(12.0,), (22.0,), (30.0,)]

    def test_udf_usable_in_predicate(self, engine):
        result = engine.execute(
            "SELECT fare FROM rides WHERE fare_with_tip(fare, tip_pct) > 20"
        )
        assert sorted(r[0] for r in result.rows) == [20.0, 30.0]

    def test_wrong_arity_rejected(self, engine):
        from repro.common.errors import SemanticError

        with pytest.raises(SemanticError):
            engine.execute("SELECT fare_with_tip(fare) FROM rides")


class TestCustomAggregate:
    def test_aggregate_usable_in_group_by_query(self, engine):
        result = engine.execute("SELECT second_largest(fare) FROM rides")
        assert result.rows == [(20.0,)]

    def test_single_row_yields_null(self, engine):
        result = engine.execute(
            "SELECT second_largest(fare) FROM rides WHERE fare > 25"
        )
        assert result.rows == [(None,)]


class TestRegistryIsolation:
    def test_custom_functions_do_not_leak_to_default_registry(self, engine):
        from repro.common.errors import SemanticError

        with pytest.raises(SemanticError):
            default_registry().resolve_scalar("fare_with_tip", [DOUBLE, DOUBLE])
