"""Unit tests for the builtin scalar and aggregate function library."""

import pytest

from repro.common.errors import SemanticError
from repro.core.functions import FunctionHandle, default_registry
from repro.core.types import (
    ArrayType,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    MapType,
    VARCHAR,
)


def call(name, *args):
    types = []
    for arg in args:
        if isinstance(arg, bool):
            types.append(BOOLEAN)
        elif isinstance(arg, int):
            types.append(BIGINT)
        elif isinstance(arg, float):
            types.append(DOUBLE)
        elif isinstance(arg, str):
            types.append(VARCHAR)
        elif isinstance(arg, list):
            types.append(ArrayType(BIGINT if arg and isinstance(arg[0], int) else VARCHAR))
        elif isinstance(arg, dict):
            types.append(MapType(VARCHAR, DOUBLE))
        else:
            raise AssertionError(f"untyped arg {arg!r}")
    _, fn = default_registry().resolve_scalar(name, types)
    return fn.row_fn(*args)


class TestArithmetic:
    def test_add_sub_mul(self):
        assert call("add", 2, 3) == 5
        assert call("subtract", 2, 3) == -1
        assert call("multiply", 4, 3) == 12

    def test_integer_division_truncates(self):
        assert call("divide", 7, 2) == 3
        assert call("divide", -7, 2) == -3
        assert call("divide", 7, -2) == -3

    def test_float_division(self):
        assert call("divide", 7.0, 2.0) == 3.5

    def test_modulus(self):
        assert call("modulus", 7, 3) == 1
        assert call("modulus", 7.5, 2.0) == 1.5

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            call("divide", 1, 0)
        with pytest.raises(ZeroDivisionError):
            call("modulus", 1, 0)

    def test_negate(self):
        assert call("negate", 5) == -5


class TestStrings:
    def test_case_functions(self):
        assert call("lower", "MiXeD") == "mixed"
        assert call("upper", "MiXeD") == "MIXED"

    def test_length_concat(self):
        assert call("length", "hello") == 5
        assert call("concat", "foo", "bar") == "foobar"

    def test_substr(self):
        assert call("substr", "presto", 2, 3) == "res"
        assert call("substr", "presto", 4) == "sto"

    def test_strpos(self):
        assert call("strpos", "hello", "ll") == 3
        assert call("strpos", "hello", "x") == 0

    def test_like(self):
        assert call("like", "driver-42", "driver-%")
        assert call("like", "abc", "a_c")
        assert not call("like", "abc", "a_d")
        assert call("like", "100%", "100%")  # % at end matches empty too

    def test_like_escapes_regex_metacharacters(self):
        assert call("like", "a.c", "a.c")
        assert not call("like", "abc", "a.c")  # '.' is literal in LIKE


class TestMath:
    def test_abs(self):
        assert call("abs", -3) == 3

    def test_sqrt_floor_ceil_round(self):
        assert call("sqrt", 9.0) == 3.0
        assert call("floor", 2.7) == 2.0
        assert call("ceil", 2.2) == 3.0
        assert call("round", 2.5) == 2.0  # numpy banker's rounding

    def test_power_ln(self):
        assert call("power", 2.0, 10.0) == 1024.0
        assert call("ln", 1.0) == 0.0


class TestCasts:
    def test_numeric_casts(self):
        assert call("cast_bigint", "42") == 42
        assert call("cast_double", "2.5") == 2.5
        assert call("cast_bigint", 3.9) == 3

    def test_varchar_cast(self):
        assert call("cast_varchar", 42) == "42"
        assert call("cast_varchar", True) == "true"
        assert call("cast_varchar", 2.0) == "2.0"

    def test_boolean_cast(self):
        assert call("cast_boolean", "true")
        assert not call("cast_boolean", "0")
        with pytest.raises(ValueError):
            call("cast_boolean", "maybe")


class TestCollections:
    def test_cardinality(self):
        assert call("cardinality", [1, 2, 3]) == 3
        assert call("cardinality", {"a": 1.0}) == 1

    def test_element_at_array(self):
        assert call("element_at", [10, 20], 2) == 20
        assert call("element_at", [10, 20], 3) is None
        assert call("element_at", [10, 20], 0) is None

    def test_element_at_map(self):
        assert call("element_at", {"a": 1.5}, "a") == 1.5
        assert call("element_at", {"a": 1.5}, "b") is None

    def test_contains_and_array_max(self):
        assert call("contains", [1, 2], 2)
        assert not call("contains", [1, 2], 5)
        assert call("array_max", [3, 9, 1]) == 9

    def test_map_keys(self):
        assert call("map_keys", {"x": 1.0, "y": 2.0}) == ["x", "y"]


class TestResolution:
    def test_widening(self):
        handle, _ = default_registry().resolve_scalar("add", [INTEGER, BIGINT])
        assert handle.return_type == "bigint"

    def test_varchar_comparison(self):
        handle, _ = default_registry().resolve_scalar("equal", [VARCHAR, VARCHAR])
        assert handle.return_type == "boolean"

    def test_cross_type_comparison_rejected(self):
        with pytest.raises(SemanticError):
            default_registry().resolve_scalar("less_than", [VARCHAR, BIGINT])

    def test_handle_round_trip(self):
        handle, _ = default_registry().resolve_scalar("lower", [VARCHAR])
        restored = FunctionHandle.from_dict(handle.to_dict())
        assert restored == handle
        assert default_registry().implementation_for(restored).row_fn("A") == "a"


class TestAggregates:
    def agg(self, name, values, types=None):
        registry = default_registry()
        types = types if types is not None else [BIGINT]
        _, fn = registry.resolve_aggregate(name, types)
        state = fn.create_state()
        for value in values:
            state = fn.add_input(state, (value,))
        return fn.finalize(state)

    def test_sum_ignores_nulls(self):
        assert self.agg("sum", [1, None, 3]) == 4

    def test_sum_all_null_is_null(self):
        assert self.agg("sum", [None, None]) is None

    def test_min_max(self):
        assert self.agg("min", [5, 2, None, 9]) == 2
        assert self.agg("max", [5, 2, None, 9]) == 9

    def test_avg(self):
        assert self.agg("avg", [2, 4, None]) == 3.0
        assert self.agg("avg", [None]) is None

    def test_count_with_argument_skips_nulls(self):
        registry = default_registry()
        _, fn = registry.resolve_aggregate("count", [BIGINT])
        state = fn.create_state()
        for value in [1, None, 2]:
            state = fn.add_input(state, (value,))
        assert fn.finalize(state) == 2

    def test_approx_distinct(self):
        assert self.agg("approx_distinct", [1, 2, 2, 3, None]) == 3

    def test_array_agg(self):
        assert self.agg("array_agg", [1, None, 2]) == [1, 2]

    def test_merge_semantics(self):
        registry = default_registry()
        _, fn = registry.resolve_aggregate("max", [BIGINT])
        assert fn.merge(5, 9) == 9
        assert fn.merge(None, 4) == 4
        assert fn.merge(4, None) == 4
