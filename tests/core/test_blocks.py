"""Unit tests for columnar blocks and pages."""

import numpy as np
import pytest

from repro.core.blocks import (
    ArrayBlock,
    DictionaryBlock,
    LazyBlock,
    MapBlock,
    PrimitiveBlock,
    RowBlock,
    block_from_values,
)
from repro.core.page import Page, concat_pages
from repro.core.types import (
    ArrayType,
    BIGINT,
    DOUBLE,
    MapType,
    RowType,
    VARCHAR,
)


class TestPrimitiveBlock:
    def test_from_values_and_get(self):
        block = PrimitiveBlock.from_values(BIGINT, [1, 2, 3])
        assert block.position_count == 3
        assert block.to_list() == [1, 2, 3]
        assert isinstance(block.get(0), int)

    def test_nulls(self):
        block = PrimitiveBlock.from_values(BIGINT, [1, None, 3])
        assert block.get(1) is None
        assert block.is_null(1)
        assert not block.is_null(0)
        assert list(block.null_mask()) == [False, True, False]

    def test_take(self):
        block = PrimitiveBlock.from_values(VARCHAR, ["a", "b", "c", None])
        taken = block.take(np.array([3, 1]))
        assert taken.to_list() == [None, "b"]

    def test_size_in_bytes_positive(self):
        assert PrimitiveBlock.from_values(BIGINT, [1, 2]).size_in_bytes() > 0
        assert PrimitiveBlock.from_values(VARCHAR, ["hello"]).size_in_bytes() >= 5

    def test_null_mask_without_nulls_is_cached(self):
        block = PrimitiveBlock.from_values(BIGINT, [1, 2, 3])
        mask = block.null_mask()
        assert not mask.any()
        assert block.null_mask() is mask  # no re-materialization per call


class TestDictionaryBlock:
    def test_lookup_through_ids(self):
        dictionary = PrimitiveBlock.from_values(VARCHAR, ["x", "y"])
        block = DictionaryBlock(dictionary, np.array([0, 1, 1, 0]))
        assert block.to_list() == ["x", "y", "y", "x"]

    def test_negative_id_is_null(self):
        dictionary = PrimitiveBlock.from_values(BIGINT, [10, 20])
        block = DictionaryBlock(dictionary, np.array([0, -1, 1]))
        assert block.to_list() == [10, None, 20]
        assert list(block.null_mask()) == [False, True, False]

    def test_decode_matches_get(self):
        dictionary = PrimitiveBlock.from_values(BIGINT, [5, 7])
        block = DictionaryBlock(dictionary, np.array([1, 0, -1]))
        assert block.decode().to_list() == block.to_list()

    def test_take_preserves_dictionary(self):
        dictionary = PrimitiveBlock.from_values(BIGINT, [5, 7])
        block = DictionaryBlock(dictionary, np.array([1, 0, 1]))
        taken = block.take(np.array([2, 0]))
        assert taken.to_list() == [7, 7]
        assert taken.dictionary is dictionary

    def test_null_mask_includes_dictionary_nulls(self):
        dictionary = PrimitiveBlock.from_values(BIGINT, [10, None])
        block = DictionaryBlock(dictionary, np.array([0, 1, -1]))
        assert list(block.null_mask()) == [False, True, True]
        assert [block.is_null(i) for i in range(3)] == [False, True, True]


class TestRowBlock:
    def setup_method(self):
        self.row_type = RowType.of(("city_id", BIGINT), ("status", VARCHAR))

    def test_from_values(self):
        block = RowBlock.from_values(
            self.row_type,
            [{"city_id": 1, "status": "ok"}, None, {"city_id": 2, "status": "bad"}],
        )
        assert block.get(0) == {"city_id": 1, "status": "ok"}
        assert block.get(1) is None
        assert block.field("city_id").to_list() == [1, None, 2]

    def test_pruned_projection(self):
        # A RowBlock may materialize only some fields (nested column pruning).
        block = RowBlock(
            self.row_type,
            {"city_id": PrimitiveBlock.from_values(BIGINT, [5, 6])},
        )
        assert block.get(0) == {"city_id": 5}
        assert block.has_field("city_id")
        assert not block.has_field("status")

    def test_take(self):
        block = RowBlock.from_values(
            self.row_type, [{"city_id": i, "status": str(i)} for i in range(5)]
        )
        taken = block.take(np.array([4, 0]))
        assert taken.get(0) == {"city_id": 4, "status": "4"}
        assert taken.position_count == 2

    def test_mismatched_field_lengths_rejected(self):
        with pytest.raises(ValueError):
            RowBlock(
                self.row_type,
                {
                    "city_id": PrimitiveBlock.from_values(BIGINT, [1]),
                    "status": PrimitiveBlock.from_values(VARCHAR, ["a", "b"]),
                },
            )


class TestCollectionBlocks:
    def test_array_block(self):
        t = ArrayType(BIGINT)
        block = ArrayBlock.from_values(t, [[1, 2], [], None, [3]])
        assert block.get(0) == [1, 2]
        assert block.get(1) == []
        assert block.get(2) is None
        assert block.get(3) == [3]

    def test_map_block(self):
        t = MapType(VARCHAR, DOUBLE)
        block = MapBlock.from_values(t, [{"a": 1.0}, None, {}])
        assert block.get(0) == {"a": 1.0}
        assert block.get(1) is None
        assert block.get(2) == {}

    def test_array_take(self):
        t = ArrayType(VARCHAR)
        block = ArrayBlock.from_values(t, [["a"], ["b", "c"], None])
        taken = block.take(np.array([2, 1]))
        assert taken.to_list() == [None, ["b", "c"]]


class TestLazyBlock:
    def test_defers_loading(self):
        loads = []

        def loader():
            loads.append(1)
            return PrimitiveBlock.from_values(BIGINT, [1, 2, 3])

        block = LazyBlock(BIGINT, 3, loader)
        assert not block.is_loaded
        assert not loads
        assert block.get(1) == 2
        assert block.is_loaded
        assert len(loads) == 1
        block.get(2)
        assert len(loads) == 1  # loader ran exactly once

    def test_take_stays_lazy(self):
        loads = []

        def loader():
            loads.append(1)
            return PrimitiveBlock.from_values(BIGINT, list(range(10)))

        block = LazyBlock(BIGINT, 10, loader)
        taken = block.take(np.array([1, 2]))
        assert not loads
        assert taken.to_list() == [1, 2]
        assert len(loads) == 1

    def test_loader_length_validated(self):
        block = LazyBlock(BIGINT, 5, lambda: PrimitiveBlock.from_values(BIGINT, [1]))
        with pytest.raises(ValueError):
            block.loaded()


class TestPage:
    def test_from_rows_round_trip(self):
        page = Page.from_rows([BIGINT, VARCHAR], [(1, "a"), (2, "b")])
        assert page.to_rows() == [(1, "a"), (2, "b")]
        assert page.channel_count == 2
        assert page.position_count == 2

    def test_take_and_select(self):
        page = Page.from_rows([BIGINT, VARCHAR], [(i, str(i)) for i in range(4)])
        filtered = page.take(np.array([3, 1]))
        assert filtered.to_rows() == [(3, "3"), (1, "1")]
        projected = page.select_channels([1])
        assert projected.to_rows() == [("0",), ("1",), ("2",), ("3",)]

    def test_mismatched_blocks_rejected(self):
        with pytest.raises(ValueError):
            Page(
                [
                    PrimitiveBlock.from_values(BIGINT, [1]),
                    PrimitiveBlock.from_values(BIGINT, [1, 2]),
                ]
            )

    def test_concat_pages(self):
        a = Page.from_rows([BIGINT], [(1,), (2,)])
        b = Page.from_rows([BIGINT], [(3,)])
        merged = concat_pages([BIGINT], [a, b])
        assert merged.to_rows() == [(1,), (2,), (3,)]

    def test_empty_page(self):
        page = Page.from_rows([BIGINT, VARCHAR], [])
        assert page.position_count == 0
        assert page.to_rows() == []

    def test_from_rows_with_nulls(self):
        rows = [(1, "a"), (None, None), (3, "c")]
        assert Page.from_rows([BIGINT, VARCHAR], rows).to_rows() == rows

    def test_from_rows_nested_cells_fall_back(self):
        # Sequence-valued cells confuse the bulk 2-D transpose; they must
        # take the zip path and still round-trip.
        rows = [([1, 2], "a"), ([3], "b"), (None, "c")]
        page = Page.from_rows([ArrayType(BIGINT), VARCHAR], rows)
        assert page.to_rows() == rows

    def test_from_rows_nan_round_trips(self):
        page = Page.from_rows([DOUBLE], [(1.5,), (float("nan"),), (None,)])
        values = [row[0] for row in page.to_rows()]
        assert values[0] == 1.5
        assert values[1] != values[1]
        assert values[2] is None

    def test_from_rows_large_batch_matches_per_value(self):
        rows = [(i, float(i) * 0.5, f"s{i}") for i in range(1000)]
        page = Page.from_rows([BIGINT, DOUBLE, VARCHAR], rows)
        assert page.to_rows() == rows


class TestBlockFromValues:
    def test_dispatches_by_type(self):
        assert isinstance(block_from_values(BIGINT, [1]), PrimitiveBlock)
        assert isinstance(block_from_values(ArrayType(BIGINT), [[1]]), ArrayBlock)
        assert isinstance(block_from_values(MapType(VARCHAR, BIGINT), [{}]), MapBlock)
        assert isinstance(
            block_from_values(RowType.of(("a", BIGINT)), [{"a": 1}]), RowBlock
        )
