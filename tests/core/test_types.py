"""Unit tests for the strict Presto type system."""

import pytest

from repro.core.types import (
    ArrayType,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    GEOMETRY,
    INTEGER,
    MapType,
    RowField,
    RowType,
    UNKNOWN,
    VARCHAR,
    common_super_type,
    parse_type,
)


class TestScalarTypes:
    def test_singletons_compare_by_identity(self):
        assert BIGINT == BIGINT
        assert BIGINT != DOUBLE
        assert parse_type("bigint") is BIGINT

    def test_numeric_flags(self):
        assert BIGINT.is_numeric()
        assert DOUBLE.is_numeric()
        assert not VARCHAR.is_numeric()
        assert not BOOLEAN.is_numeric()

    def test_geometry_not_orderable(self):
        assert not GEOMETRY.is_orderable()
        assert VARCHAR.is_orderable()

    def test_display(self):
        assert BIGINT.display() == "bigint"
        assert VARCHAR.display() == "varchar"


class TestRowType:
    def test_field_lookup(self):
        row = RowType.of(("city_id", BIGINT), ("driver_uuid", VARCHAR))
        assert row.field_type("city_id") is BIGINT
        assert row.field_index("driver_uuid") == 1
        assert row.has_field("city_id")
        assert not row.has_field("missing")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            RowType.of(("a", BIGINT), ("a", VARCHAR))

    def test_display_round_trip(self):
        row = RowType.of(("a", BIGINT), ("b", ArrayType(VARCHAR)))
        assert parse_type(row.display()) == row

    def test_nested_walk_enumerates_leaf_paths(self):
        inner = RowType.of(("city_id", BIGINT), ("status", VARCHAR))
        outer = RowType.of(("base", inner), ("datestr", VARCHAR))
        paths = dict(outer.walk())
        assert paths["base.city_id"] is BIGINT
        assert paths["base.status"] is VARCHAR
        assert paths["datestr"] is VARCHAR
        assert paths["base"] == inner

    def test_deeply_nested_round_trip(self):
        # The paper: "more than 5 levels of nesting" is common.
        t = BIGINT
        for level in range(6):
            t = RowType.of((f"level{level}", t))
        assert parse_type(t.display()) == t

    def test_equality_is_structural(self):
        a = RowType.of(("x", BIGINT))
        b = RowType.of(("x", BIGINT))
        assert a == b
        assert hash(a) == hash(b)


class TestParametricTypes:
    def test_array_round_trip(self):
        t = ArrayType(ArrayType(DOUBLE))
        assert parse_type("array(array(double))") == t

    def test_map_round_trip(self):
        t = MapType(VARCHAR, DOUBLE)
        assert parse_type("map(varchar, double)") == t

    def test_aliases(self):
        assert parse_type("string") is VARCHAR
        assert parse_type("long") is BIGINT
        assert parse_type("int") is INTEGER

    def test_varchar_length_parameter_tolerated(self):
        assert parse_type("varchar(255)") is VARCHAR

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_type("rowboat(a bigint)")
        with pytest.raises(ValueError):
            parse_type("bigint extra")
        with pytest.raises(ValueError):
            parse_type("array(bigint")


class TestCoercion:
    def test_integer_widens_to_bigint(self):
        assert common_super_type(INTEGER, BIGINT) is BIGINT

    def test_bigint_widens_to_double(self):
        assert common_super_type(BIGINT, DOUBLE) is DOUBLE

    def test_no_cross_kind_coercion(self):
        # Strict typing per section V.A.
        assert common_super_type(VARCHAR, BIGINT) is None
        assert common_super_type(BOOLEAN, BIGINT) is None

    def test_unknown_coerces_to_anything(self):
        assert common_super_type(UNKNOWN, VARCHAR) is VARCHAR
        assert common_super_type(BIGINT, UNKNOWN) is BIGINT
