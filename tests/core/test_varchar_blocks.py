"""Differential suite: offsets-based VarcharBlock vs the object-array lane.

Every property here runs the same operation twice — once on the native
:class:`VarcharBlock` (contiguous UTF-8 bytes + int64 offsets) and once on
the legacy object-array representation built under
``object_varchar_lane()`` — and requires identical results.  Values are
drawn to hit the layout's edge cases: NULLs, empty strings, non-ASCII
UTF-8 (multi-byte code points, where byte length != char length), and
strings containing NUL bytes (which force the S-dtype fast paths to fall
back, since numpy S arrays strip trailing ``\\x00``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    PrimitiveBlock,
    VarcharBlock,
    block_from_values,
    concat_varchar_blocks,
    object_varchar_lane,
)
from repro.core.evaluator import Evaluator
from repro.core.expressions import CallExpression, constant, variable
from repro.core.functions import default_registry
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution import kernels

REGISTRY = default_registry()

# Alphabet chosen to cross every layout boundary: ASCII, 2/3/4-byte UTF-8,
# the empty string (via max_size), and embedded NULs.
ALPHABET = "abAB01 -éλ漢🎈\x00"
texts = st.text(alphabet=ALPHABET, max_size=10)
values_lists = st.lists(st.one_of(st.none(), texts), min_size=0, max_size=40)


def build_both(values):
    """The same logical column in both representations."""
    native = block_from_values(VARCHAR, values)
    with object_varchar_lane():
        legacy = block_from_values(VARCHAR, values)
    assert isinstance(native, VarcharBlock)
    assert isinstance(legacy, PrimitiveBlock)
    return native, legacy


def call(name, args, arg_types):
    handle, _ = REGISTRY.resolve_scalar(name, arg_types)
    return CallExpression(name, handle, handle.resolved_return_type(), tuple(args))


# -- layout and element access ----------------------------------------------


@given(values_lists)
@settings(max_examples=200, deadline=None)
def test_roundtrip_and_get(values):
    native, legacy = build_both(values)
    assert native.to_list() == values == legacy.to_list()
    for i, v in enumerate(values):
        assert native.get(i) == v
        assert native.is_null(i) == (v is None)
    assert native.null_mask().tolist() == [v is None for v in values]


@given(values_lists, st.lists(st.integers(0, 39), max_size=60))
@settings(max_examples=200, deadline=None)
def test_take_matches_object(values, raw_positions):
    if not values:
        return
    positions = np.array([p % len(values) for p in raw_positions], dtype=np.int64)
    native, legacy = build_both(values)
    taken = native.take(positions)
    assert isinstance(taken, VarcharBlock)
    assert taken.to_list() == legacy.take(positions).to_list()
    assert taken.to_list() == [values[p] for p in positions]


@given(values_lists, values_lists)
@settings(max_examples=100, deadline=None)
def test_concat(left, right):
    native_l, _ = build_both(left)
    native_r, _ = build_both(right)
    merged = concat_varchar_blocks(VARCHAR, [native_l, native_r])
    assert merged.to_list() == left + right


@given(values_lists)
@settings(max_examples=200, deadline=None)
def test_lengths(values):
    native, _ = build_both(values)
    for i, v in enumerate(values):
        if v is not None:
            assert int(native.char_lengths()[i]) == len(v)
            assert int(native.byte_lengths()[i]) == len(v.encode("utf-8"))


# -- factorization -----------------------------------------------------------


@given(values_lists)
@settings(max_examples=200, deadline=None)
def test_factorize_reconstructs(values):
    native, _ = build_both(values)
    codes, uniques = native.factorize()
    # Codes index a sorted distinct domain; -1 is the null sentinel.
    assert [uniques[c] if c >= 0 else None for c in codes] == values
    distinct = sorted({v for v in values if v is not None})
    assert list(uniques) == distinct


@given(values_lists)
@settings(max_examples=150, deadline=None)
def test_factorize_keys_differential(values):
    native, legacy = build_both(values)
    native_keys = kernels.factorize_keys([native])
    legacy_keys = kernels.factorize_keys([legacy])
    assert native_keys is not None and legacy_keys is not None
    native_rows = [native_keys[1][c] for c in native_keys[0]]
    legacy_rows = [legacy_keys[1][c] for c in legacy_keys[0]]
    assert native_rows == legacy_rows
    assert native_rows == [(v,) for v in values]


@given(values_lists, st.lists(st.one_of(st.none(), st.booleans()), max_size=40))
@settings(max_examples=100, deadline=None)
def test_factorize_keys_multi_column(values, flags):
    """Varchar + boolean composite keys agree with the object lane."""
    n = min(len(values), len(flags))
    values, flags = values[:n], flags[:n]
    from repro.core.types import BOOLEAN

    flag_block = block_from_values(BOOLEAN, flags)
    native, legacy = build_both(values)
    native_keys = kernels.factorize_keys([native, flag_block])
    legacy_keys = kernels.factorize_keys([legacy, flag_block])
    assert native_keys is not None and legacy_keys is not None
    native_rows = [native_keys[1][c] for c in native_keys[0]]
    legacy_rows = [legacy_keys[1][c] for c in legacy_keys[0]]
    assert native_rows == legacy_rows == list(zip(values, flags))


# -- point lookups (exact_match / prefix_mask back the compiled kernels) -----


@given(values_lists, st.one_of(texts, st.sampled_from(["", "a", "é", "漢", "ab\x00"])))
@settings(max_examples=200, deadline=None)
def test_exact_match_oracle(values, needle):
    native, _ = build_both(values)
    mask = native.exact_match(needle.encode("utf-8"))
    assert mask.tolist() == [v == needle for v in values]


@given(values_lists, st.one_of(texts, st.sampled_from(["", "a", "é漢", "\x00"])))
@settings(max_examples=200, deadline=None)
def test_prefix_mask_oracle(values, prefix):
    native, _ = build_both(values)
    mask = native.prefix_mask(prefix.encode("utf-8"))
    assert mask.tolist() == [v is not None and v.startswith(prefix) for v in values]


# -- compiled expression kernels ---------------------------------------------
#
# The evaluator compiles each expression once per lane; results must match
# element-wise, nulls included.


def assert_expression_differential(expression, values, more_bindings=None):
    native, legacy = build_both(values)
    count = len(values)
    evaluator = Evaluator(REGISTRY)
    native_bindings = {"s": native, **(more_bindings or {})}
    legacy_bindings = {"s": legacy, **(more_bindings or {})}
    native_out = evaluator.evaluate(expression, native_bindings, count).to_list()
    with object_varchar_lane():
        legacy_out = (
            Evaluator(REGISTRY).evaluate(expression, legacy_bindings, count).to_list()
        )
    assert native_out == legacy_out
    return native_out


COMPARISONS = ["equal", "not_equal", "less_than", "less_than_or_equal", "greater_than"]


@given(values_lists, st.sampled_from(COMPARISONS), texts)
@settings(max_examples=150, deadline=None)
def test_compare_with_constant(values, fn_name, needle):
    expression = call(
        fn_name,
        [variable("s", VARCHAR), constant(needle, VARCHAR)],
        [VARCHAR, VARCHAR],
    )
    out = assert_expression_differential(expression, values)
    oracle = {
        "equal": lambda v: v == needle,
        "not_equal": lambda v: v != needle,
        "less_than": lambda v: v < needle,
        "less_than_or_equal": lambda v: v <= needle,
        "greater_than": lambda v: v > needle,
    }[fn_name]
    assert out == [None if v is None else oracle(v) for v in values]


@given(values_lists, st.sampled_from(COMPARISONS), texts)
@settings(max_examples=100, deadline=None)
def test_compare_constant_flipped(values, fn_name, needle):
    expression = call(
        fn_name,
        [constant(needle, VARCHAR), variable("s", VARCHAR)],
        [VARCHAR, VARCHAR],
    )
    assert_expression_differential(expression, values)


@given(values_lists, values_lists)
@settings(max_examples=100, deadline=None)
def test_compare_two_columns(left, right):
    n = min(len(left), len(right))
    left, right = left[:n], right[:n]
    other_native = block_from_values(VARCHAR, right)
    with object_varchar_lane():
        other_legacy = block_from_values(VARCHAR, right)
    expression = call(
        "less_than", [variable("s", VARCHAR), variable("t", VARCHAR)], [VARCHAR, VARCHAR]
    )
    native, legacy = build_both(left)
    evaluator = Evaluator(REGISTRY)
    native_out = evaluator.evaluate(
        expression, {"s": native, "t": other_native}, n
    ).to_list()
    with object_varchar_lane():
        legacy_out = (
            Evaluator(REGISTRY)
            .evaluate(expression, {"s": legacy, "t": other_legacy}, n)
            .to_list()
        )
    assert native_out == legacy_out
    assert native_out == [
        None if a is None or b is None else a < b for a, b in zip(left, right)
    ]


@given(values_lists)
@settings(max_examples=150, deadline=None)
def test_length(values):
    expression = call("length", [variable("s", VARCHAR)], [VARCHAR])
    out = assert_expression_differential(expression, values)
    assert out == [None if v is None else len(v) for v in values]


@given(values_lists, st.integers(1, 6), st.integers(0, 6))
@settings(max_examples=150, deadline=None)
def test_substr(values, start, length):
    expression = call(
        "substr",
        [variable("s", VARCHAR), constant(start, BIGINT), constant(length, BIGINT)],
        [VARCHAR, BIGINT, BIGINT],
    )
    out = assert_expression_differential(expression, values)
    assert out == [
        None if v is None else v[start - 1 : start - 1 + length] for v in values
    ]


@given(
    values_lists,
    st.lists(st.sampled_from(["a", "é", "漢", "%", "_", "ab"]), max_size=4),
)
@settings(max_examples=150, deadline=None)
def test_like(values, pieces):
    pattern = "".join(pieces)
    expression = call(
        "like",
        [variable("s", VARCHAR), constant(pattern, VARCHAR)],
        [VARCHAR, VARCHAR],
    )
    assert_expression_differential(expression, values)


@given(values_lists, st.lists(texts, min_size=1, max_size=12))
@settings(max_examples=150, deadline=None)
def test_in_list(values, needles):
    from repro.core.expressions import SpecialForm, SpecialFormExpression
    from repro.core.types import BOOLEAN

    expression = SpecialFormExpression(
        SpecialForm.IN,
        BOOLEAN,
        (variable("s", VARCHAR), *(constant(v, VARCHAR) for v in needles)),
    )
    out = assert_expression_differential(expression, values)
    for v, got in zip(values, out):
        if v is not None:
            assert got == (v in needles)


# -- join keys ----------------------------------------------------------------


@given(values_lists, values_lists)
@settings(max_examples=150, deadline=None)
def test_join_key_differential(build_values, probe_values):
    """Hash-join key matching over varchar agrees with a Python oracle."""
    native_build, legacy_build = build_both(build_values)
    native_probe, legacy_probe = build_both(probe_values)

    def pairs(build_block, probe_block):
        index = kernels.build_join_index([build_block])
        assert index is not None
        codes = index.probe_codes([probe_block], len(probe_values))
        probe_pos, build_pos = index.expand(codes)
        return sorted(zip(probe_pos.tolist(), build_pos.tolist()))

    oracle = sorted(
        (pi, bi)
        for pi, pv in enumerate(probe_values)
        for bi, bv in enumerate(build_values)
        if pv is not None and pv == bv
    )
    assert pairs(native_build, native_probe) == oracle
    assert pairs(legacy_build, legacy_probe) == oracle


# -- NaN group keys (doubles canonicalize NaN to the null sentinel) ----------


def test_nan_groups_with_null():
    """GROUP BY over a double column: NaN and NULL share one group.

    NaN != NaN under IEEE semantics, so without canonicalization every
    NaN row would mint its own group (and the vectorized lane, which
    sorts bit patterns, would disagree with the row oracle).  The engine
    canonicalizes NaN to the null sentinel before factorization; both
    lanes must agree on that.
    """
    values = [1.0, float("nan"), None, 2.0, float("nan"), 1.0, None]
    block = block_from_values(DOUBLE, values)
    factorized = kernels.factorize_keys([block])
    assert factorized is not None
    codes, uniques = factorized
    rows = [uniques[c] for c in codes]
    assert rows == [(1.0,), (None,), (None,), (2.0,), (None,), (1.0,), (None,)]
    # Exactly three groups: 1.0, 2.0, and the merged NaN/NULL sentinel.
    assert len({tuple(r) for r in rows}) == 3


@given(
    st.lists(
        st.one_of(
            st.none(),
            st.just(float("nan")),
            st.floats(allow_nan=False, allow_infinity=True),
        ),
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_nan_group_keys_match_row_oracle(values):
    block = block_from_values(DOUBLE, values)
    factorized = kernels.factorize_keys([block])
    assert factorized is not None
    codes, uniques = factorized

    def canonical(v):
        return None if v is None or (isinstance(v, float) and v != v) else v

    # Row-at-a-time oracle with the same canonicalization rule.
    oracle_codes = {}
    oracle = []
    for v in values:
        key = canonical(v)
        oracle.append(oracle_codes.setdefault(key, len(oracle_codes)))
    # Same partition of rows into groups (codes may be numbered differently).
    mapping = {}
    for got, want in zip(codes.tolist(), oracle):
        assert mapping.setdefault(got, want) == want
    assert len(set(codes.tolist())) == len(set(oracle))
    for c in codes:
        assert canonical(uniques[c][0]) == uniques[c][0]  # uniques already canonical


def test_nan_join_probe_never_matches():
    """A NaN probe key canonicalizes to null and matches nothing."""
    build = block_from_values(DOUBLE, [1.0, 2.0, float("nan")])
    probe = block_from_values(DOUBLE, [float("nan"), 1.0, None])
    index = kernels.build_join_index([build])
    assert index is not None
    codes = index.probe_codes([probe], 3)
    probe_pos, build_pos = index.expand(codes)
    assert sorted(zip(probe_pos.tolist(), build_pos.tolist())) == [(1, 0)]


# -- NUL-byte fallback guards -------------------------------------------------


def test_nul_bytes_force_fallback_paths():
    """Strings with embedded NULs survive every offsets-native operation.

    numpy S-dtype arrays strip trailing NULs, so the padded-view fast
    paths must detect NUL bytes and fall back; these values are chosen so
    a broken guard would corrupt results (trailing ``\\x00`` differs)."""
    values = ["a\x00", "a", "\x00", "", None, "a\x00b", "\x00\x00"]
    native, _ = build_both(values)
    assert native.has_nul()
    assert native.to_list() == values
    codes, uniques = native.factorize()
    assert [uniques[c] if c >= 0 else None for c in codes] == values
    assert native.exact_match(b"a\x00").tolist() == [
        True, False, False, False, False, False, False,
    ]
    assert native.prefix_mask(b"\x00").tolist() == [
        False, False, True, False, False, False, True,
    ]
