"""Differential/property tests: compiled expression kernels vs interpreter.

Random expression trees over random pages — with nulls, strings, and
dictionary-encoded blocks — must produce identical results (values *and*
Python types) in compiled and interpreted modes, the same convention the
vectorized operator kernels follow (tests/execution/test_vectorized_kernels.py).
Kleene AND/OR/NOT and NULL-in-IN get both property coverage and explicit
exhaustive cases.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.blocks import DictionaryBlock, PrimitiveBlock
from repro.core.compiler import INTERPRETED, EvaluatorOptions
from repro.core.evaluator import Evaluator
from repro.core.expressions import (
    CallExpression,
    SpecialForm,
    SpecialFormExpression,
    constant,
    variable,
)
from repro.core.functions import default_registry
from repro.core.types import BIGINT, BOOLEAN, VARCHAR

REGISTRY = default_registry()


def call(name, args, arg_types):
    handle, _ = REGISTRY.resolve_scalar(name, arg_types)
    return CallExpression(name, handle, handle.resolved_return_type(), tuple(args))


def compiled_evaluator():
    return Evaluator(REGISTRY)


def interpreted_evaluator():
    return Evaluator(REGISTRY, options=EvaluatorOptions(mode=INTERPRETED))


def assert_identical(expression, bindings, position_count):
    compiled = compiled_evaluator().evaluate(expression, bindings, position_count)
    interpreted = interpreted_evaluator().evaluate(expression, bindings, position_count)
    compiled_values = compiled.to_list()
    interpreted_values = interpreted.to_list()
    assert [(type(v), v) for v in compiled_values] == [
        (type(v), v) for v in interpreted_values
    ]


# -- expression strategies ---------------------------------------------------

SMALL_INT = st.integers(min_value=-1000, max_value=1000)
WORDS = st.sampled_from(["air", "Airplane", "presto", "", "a%b", "x_y", "Real Time"])
PATTERNS = st.sampled_from(["air%", "%plane", "a_b", "%", "x%y", "Real%", "a.c"])


def int_expressions(depth):
    base = st.one_of(
        st.sampled_from([variable("x", BIGINT), variable("y", BIGINT)]),
        SMALL_INT.map(lambda v: constant(v, BIGINT)),
        st.just(constant(None, BIGINT)),
    )
    if depth <= 0:
        return base
    smaller = int_expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["add", "subtract", "multiply"]), smaller, smaller).map(
            lambda t: call(t[0], [t[1], t[2]], [BIGINT, BIGINT])
        ),
        string_expressions(depth - 1).map(
            lambda s: call("length", [s], [VARCHAR])
        ),
        st.tuples(bool_expressions(depth - 1), smaller, smaller).map(
            lambda t: SpecialFormExpression(SpecialForm.IF, BIGINT, (t[0], t[1], t[2]))
        ),
        st.lists(smaller, min_size=2, max_size=3).map(
            lambda args: SpecialFormExpression(SpecialForm.COALESCE, BIGINT, tuple(args))
        ),
    )


def string_expressions(depth):
    base = st.one_of(
        st.just(variable("s", VARCHAR)),
        WORDS.map(lambda v: constant(v, VARCHAR)),
        st.just(constant(None, VARCHAR)),
    )
    if depth <= 0:
        return base
    smaller = string_expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["upper", "lower", "trim"]), smaller).map(
            lambda t: call(t[0], [t[1]], [VARCHAR])
        ),
        st.tuples(smaller, smaller).map(
            lambda t: call("concat", [t[0], t[1]], [VARCHAR, VARCHAR])
        ),
        st.tuples(smaller, st.integers(1, 4), st.integers(0, 4)).map(
            lambda t: call(
                "substr",
                [t[0], constant(t[1], BIGINT), constant(t[2], BIGINT)],
                [VARCHAR, BIGINT, BIGINT],
            )
        ),
    )


COMPARISONS = [
    "equal",
    "not_equal",
    "less_than",
    "less_than_or_equal",
    "greater_than",
    "greater_than_or_equal",
]


def bool_expressions(depth):
    base = st.one_of(
        st.just(variable("b", BOOLEAN)),
        st.sampled_from([constant(True, BOOLEAN), constant(False, BOOLEAN), constant(None, BOOLEAN)]),
    )
    if depth <= 0:
        return base
    int_smaller = int_expressions(depth - 1)
    str_smaller = string_expressions(depth - 1)
    smaller = bool_expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(COMPARISONS), int_smaller, int_smaller).map(
            lambda t: call(t[0], [t[1], t[2]], [BIGINT, BIGINT])
        ),
        st.tuples(str_smaller, PATTERNS).map(
            lambda t: call("like", [t[0], constant(t[1], VARCHAR)], [VARCHAR, VARCHAR])
        ),
        st.lists(smaller, min_size=2, max_size=3).map(
            lambda args: SpecialFormExpression(SpecialForm.AND, BOOLEAN, tuple(args))
        ),
        st.lists(smaller, min_size=2, max_size=3).map(
            lambda args: SpecialFormExpression(SpecialForm.OR, BOOLEAN, tuple(args))
        ),
        smaller.map(
            lambda a: SpecialFormExpression(SpecialForm.NOT, BOOLEAN, (a,))
        ),
        int_smaller.map(
            lambda a: SpecialFormExpression(SpecialForm.IS_NULL, BOOLEAN, (a,))
        ),
        st.tuples(
            int_smaller,
            st.lists(st.one_of(SMALL_INT, st.none()), min_size=1, max_size=4),
        ).map(
            lambda t: SpecialFormExpression(
                SpecialForm.IN,
                BOOLEAN,
                (t[0],) + tuple(constant(v, BIGINT) for v in t[1]),
            )
        ),
    )


# -- page strategies ---------------------------------------------------------


@st.composite
def pages(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    xs = draw(st.lists(st.one_of(SMALL_INT, st.none()), min_size=n, max_size=n))
    ys = draw(st.lists(st.one_of(SMALL_INT, st.none()), min_size=n, max_size=n))
    bs = draw(st.lists(st.one_of(st.booleans(), st.none()), min_size=n, max_size=n))

    if draw(st.booleans()) and n > 0:
        # Dictionary-encode the varchar column: ids into a small pool,
        # id -1 meaning null.
        pool = draw(st.lists(WORDS, min_size=1, max_size=4))
        ids = draw(
            st.lists(
                st.integers(min_value=-1, max_value=len(pool) - 1),
                min_size=n,
                max_size=n,
            )
        )
        s_block = DictionaryBlock(
            PrimitiveBlock.from_values(VARCHAR, pool), np.array(ids, dtype=np.int64)
        )
    else:
        ss = draw(st.lists(st.one_of(WORDS, st.none()), min_size=n, max_size=n))
        s_block = PrimitiveBlock.from_values(VARCHAR, ss)

    bindings = {
        "x": PrimitiveBlock.from_values(BIGINT, xs),
        "y": PrimitiveBlock.from_values(BIGINT, ys),
        "b": PrimitiveBlock.from_values(BOOLEAN, bs),
        "s": s_block,
    }
    return bindings, n


# -- property tests ----------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(expression=bool_expressions(3), page=pages())
def test_random_predicates_identical(expression, page):
    bindings, n = page
    assert_identical(expression, bindings, n)
    compiled_mask = compiled_evaluator().filter_mask(expression, bindings, n)
    interpreted_mask = interpreted_evaluator().filter_mask(expression, bindings, n)
    assert list(compiled_mask) == list(interpreted_mask)


@settings(max_examples=150, deadline=None)
@given(expression=int_expressions(3), page=pages())
def test_random_integer_expressions_identical(expression, page):
    bindings, n = page
    assert_identical(expression, bindings, n)


@settings(max_examples=150, deadline=None)
@given(expression=string_expressions(3), page=pages())
def test_random_string_expressions_identical(expression, page):
    bindings, n = page
    assert_identical(expression, bindings, n)


# -- explicit edge cases -----------------------------------------------------


def test_kleene_truth_tables_exhaustive():
    values = [True, False, None]
    lanes = [(a, b) for a in values for b in values]
    a_block = PrimitiveBlock.from_values(BOOLEAN, [v for v, _ in lanes])
    b_block = PrimitiveBlock.from_values(BOOLEAN, [v for _, v in lanes])
    for form in (SpecialForm.AND, SpecialForm.OR):
        expression = SpecialFormExpression(
            form, BOOLEAN, (variable("a", BOOLEAN), variable("b", BOOLEAN))
        )
        assert_identical(expression, {"a": a_block, "b": b_block}, len(lanes))
    assert_identical(
        SpecialFormExpression(SpecialForm.NOT, BOOLEAN, (variable("a", BOOLEAN),)),
        {"a": a_block},
        len(lanes),
    )


def test_null_in_in_list():
    x = PrimitiveBlock.from_values(BIGINT, [1, 2, None])
    # 1 IN (1, NULL) → True;  2 IN (1, NULL) → NULL;  NULL IN (...) → NULL.
    expression = SpecialFormExpression(
        SpecialForm.IN,
        BOOLEAN,
        (variable("x", BIGINT), constant(1, BIGINT), constant(None, BIGINT)),
    )
    assert_identical(expression, {"x": x}, 3)
    result = compiled_evaluator().evaluate(expression, {"x": x}, 3)
    assert result.to_list() == [True, None, None]


def test_empty_page():
    expression = call(
        "greater_than", [variable("x", BIGINT), constant(0, BIGINT)], [BIGINT, BIGINT]
    )
    empty = PrimitiveBlock.from_values(BIGINT, [])
    assert_identical(expression, {"x": empty}, 0)
