"""Metastore and schema service tests."""

import pytest

from repro.common.errors import ConnectorError, SchemaEvolutionError
from repro.core.types import BIGINT, DOUBLE, RowType, VARCHAR
from repro.metastore.evolution import SchemaEvolutionValidator, resolve_read_schema
from repro.metastore.metastore import HiveMetastore
from repro.metastore.schema_service import SchemaService


class TestMetastore:
    def setup_method(self):
        self.metastore = HiveMetastore()
        self.metastore.create_table(
            "rawdata",
            "trips",
            [("base", RowType.of(("city_id", BIGINT)))],
            partition_keys=[("datestr", VARCHAR)],
        )

    def test_create_and_get(self):
        table = self.metastore.get_table("rawdata", "trips")
        assert table.partition_key_names() == ["datestr"]
        assert table.location == "/warehouse/rawdata/trips"

    def test_duplicate_rejected(self):
        with pytest.raises(ConnectorError):
            self.metastore.create_table("rawdata", "trips", [("x", BIGINT)])

    def test_partitions(self):
        self.metastore.add_partition("rawdata", "trips", ["2017-03-02"])
        partition = self.metastore.get_partition("rawdata", "trips", ["2017-03-02"])
        assert partition.location == "/warehouse/rawdata/trips/datestr=2017-03-02"
        assert partition.sealed

    def test_open_partition_and_seal(self):
        self.metastore.add_partition("rawdata", "trips", ["2017-03-03"], sealed=False)
        assert not self.metastore.get_partition("rawdata", "trips", ["2017-03-03"]).sealed
        self.metastore.seal_partition("rawdata", "trips", ["2017-03-03"])
        assert self.metastore.get_partition("rawdata", "trips", ["2017-03-03"]).sealed

    def test_wrong_partition_arity(self):
        with pytest.raises(ConnectorError):
            self.metastore.add_partition("rawdata", "trips", ["a", "b"])

    def test_version_bumps_on_mutation(self):
        version = self.metastore.version
        self.metastore.add_partition("rawdata", "trips", ["2017-03-04"])
        assert self.metastore.version > version

    def test_listing(self):
        assert self.metastore.list_databases() == ["rawdata"]
        assert self.metastore.list_tables("rawdata") == ["trips"]


class TestEvolutionRules:
    def setup_method(self):
        self.validator = SchemaEvolutionValidator()
        self.base = RowType.of(("city_id", BIGINT), ("status", VARCHAR))

    def test_adding_field_allowed(self):
        new_base = RowType.of(
            ("city_id", BIGINT), ("status", VARCHAR), ("surge", DOUBLE)
        )
        changes = self.validator.validate([("base", self.base)], [("base", new_base)])
        assert [c.kind for c in changes] == ["add"]
        assert changes[0].path == "base.surge"

    def test_removing_field_allowed(self):
        new_base = RowType.of(("city_id", BIGINT))
        changes = self.validator.validate([("base", self.base)], [("base", new_base)])
        assert [c.kind for c in changes] == ["remove"]

    def test_type_change_rejected(self):
        new_base = RowType.of(("city_id", VARCHAR), ("status", VARCHAR))
        with pytest.raises(SchemaEvolutionError, match="type change"):
            self.validator.validate([("base", self.base)], [("base", new_base)])

    def test_rename_rejected(self):
        new_base = RowType.of(("city_identifier", BIGINT), ("status", VARCHAR))
        with pytest.raises(SchemaEvolutionError, match="rename"):
            self.validator.validate([("base", self.base)], [("base", new_base)])

    def test_deep_nested_add(self):
        old = RowType.of(("inner", RowType.of(("a", BIGINT))))
        new = RowType.of(("inner", RowType.of(("a", BIGINT), ("b", VARCHAR))))
        changes = self.validator.validate([("base", old)], [("base", new)])
        assert changes[0].path == "base.inner.b"

    def test_top_level_column_add(self):
        changes = self.validator.validate(
            [("a", BIGINT)], [("a", BIGINT), ("b", VARCHAR)]
        )
        assert [c.kind for c in changes] == ["add"]


class TestReadSchemaResolution:
    def test_added_column_reads_null(self):
        resolution = resolve_read_schema(
            [("a", BIGINT)], [("a", BIGINT), ("b", VARCHAR)]
        )
        assert resolution == [("a", BIGINT, "read"), ("b", VARCHAR, "null")]

    def test_removed_column_ignored(self):
        resolution = resolve_read_schema(
            [("a", BIGINT), ("zombie", VARCHAR)], [("a", BIGINT)]
        )
        assert resolution == [("a", BIGINT, "read")]

    def test_type_mismatch_raises(self):
        with pytest.raises(SchemaEvolutionError):
            resolve_read_schema([("a", BIGINT)], [("a", VARCHAR)])


class TestSchemaService:
    def setup_method(self):
        self.service = SchemaService()
        self.service.register("trips", [("base", RowType.of(("city_id", BIGINT)))])

    def test_register_and_current(self):
        assert self.service.current("trips").version == 1

    def test_evolve_valid(self):
        new = RowType.of(("city_id", BIGINT), ("surge", DOUBLE))
        version = self.service.evolve("trips", [("base", new)])
        assert version.version == 2
        assert self.service.current("trips").version == 2

    def test_evolve_invalid_rejected(self):
        bad = RowType.of(("city_id", VARCHAR))
        with pytest.raises(SchemaEvolutionError):
            self.service.evolve("trips", [("base", bad)])
        assert self.service.current("trips").version == 1

    def test_history_and_version_lookup(self):
        self.service.evolve(
            "trips", [("base", RowType.of(("city_id", BIGINT), ("x", BIGINT)))]
        )
        assert len(self.service.history("trips")) == 2
        assert self.service.version("trips", 1).version == 1

    def test_duplicate_register_rejected(self):
        with pytest.raises(SchemaEvolutionError):
            self.service.register("trips", [])

    def test_unknown_table(self):
        with pytest.raises(SchemaEvolutionError):
            self.service.current("nope")
