"""Direct unit tests for the schema-evolution rules (section V.A)."""

import pytest

from repro.common.errors import SchemaEvolutionError
from repro.core.types import BIGINT, DOUBLE, VARCHAR, RowField, RowType
from repro.metastore.evolution import (
    SchemaChange,
    SchemaEvolutionValidator,
    resolve_read_schema,
)

BASE = RowType([RowField("city_id", BIGINT), RowField("status", VARCHAR)])


class TestDiff:
    def test_no_changes(self):
        validator = SchemaEvolutionValidator()
        columns = [("k", BIGINT), ("base", BASE)]
        assert validator.diff(columns, columns) == []

    def test_added_column(self):
        changes = SchemaEvolutionValidator().diff(
            [("k", BIGINT)], [("k", BIGINT), ("v", DOUBLE)]
        )
        assert changes == [SchemaChange("add", "v", new_type=DOUBLE)]

    def test_removed_column(self):
        changes = SchemaEvolutionValidator().diff(
            [("k", BIGINT), ("v", DOUBLE)], [("k", BIGINT)]
        )
        assert changes == [SchemaChange("remove", "v", old_type=DOUBLE)]

    def test_type_change(self):
        changes = SchemaEvolutionValidator().diff([("k", BIGINT)], [("k", VARCHAR)])
        assert changes == [
            SchemaChange("type_change", "k", old_type=BIGINT, new_type=VARCHAR)
        ]

    def test_nested_struct_changes_use_dotted_paths(self):
        new_base = RowType(
            [
                RowField("city_id", BIGINT),
                RowField("status", VARCHAR),
                RowField("surge", DOUBLE),
            ]
        )
        changes = SchemaEvolutionValidator().diff(
            [("base", BASE)], [("base", new_base)]
        )
        assert changes == [SchemaChange("add", "base.surge", new_type=DOUBLE)]

    def test_nested_removal(self):
        pruned = RowType([RowField("city_id", BIGINT)])
        changes = SchemaEvolutionValidator().diff(
            [("base", BASE)], [("base", pruned)]
        )
        assert changes == [SchemaChange("remove", "base.status", old_type=VARCHAR)]


class TestValidate:
    def test_addition_and_removal_allowed(self):
        changes = SchemaEvolutionValidator().validate(
            [("k", BIGINT), ("old", VARCHAR)], [("k", BIGINT), ("fresh", DOUBLE)]
        )
        assert {c.kind for c in changes} == {"add", "remove"}

    def test_type_change_rejected(self):
        with pytest.raises(SchemaEvolutionError, match="type change"):
            SchemaEvolutionValidator().validate([("k", BIGINT)], [("k", DOUBLE)])

    def test_nested_type_change_rejected(self):
        changed = RowType([RowField("city_id", VARCHAR), RowField("status", VARCHAR)])
        with pytest.raises(SchemaEvolutionError, match="base.city_id"):
            SchemaEvolutionValidator().validate([("base", BASE)], [("base", changed)])

    def test_rename_detected_and_rejected(self):
        # Same level, same type, one removed + one added: a rename attempt.
        with pytest.raises(SchemaEvolutionError, match="rename"):
            SchemaEvolutionValidator().validate(
                [("old_name", BIGINT)], [("new_name", BIGINT)]
            )

    def test_nested_rename_rejected(self):
        renamed = RowType([RowField("town_id", BIGINT), RowField("status", VARCHAR)])
        with pytest.raises(SchemaEvolutionError, match="rename"):
            SchemaEvolutionValidator().validate([("base", BASE)], [("base", renamed)])

    def test_swap_with_different_types_is_not_a_rename(self):
        changes = SchemaEvolutionValidator().validate(
            [("old_name", BIGINT)], [("new_name", VARCHAR)]
        )
        assert {c.kind for c in changes} == {"add", "remove"}


class TestResolveReadSchema:
    def test_matching_columns_read(self):
        resolution = resolve_read_schema([("k", BIGINT)], [("k", BIGINT)])
        assert resolution == [("k", BIGINT, "read")]

    def test_column_added_after_file_written_reads_null(self):
        resolution = resolve_read_schema(
            [("k", BIGINT)], [("k", BIGINT), ("added", DOUBLE)]
        )
        assert resolution == [("k", BIGINT, "read"), ("added", DOUBLE, "null")]

    def test_column_removed_from_table_is_ignored(self):
        resolution = resolve_read_schema(
            [("k", BIGINT), ("dropped", VARCHAR)], [("k", BIGINT)]
        )
        assert resolution == [("k", BIGINT, "read")]

    def test_struct_columns_tolerate_field_level_evolution(self):
        old_base = RowType([RowField("city_id", BIGINT)])
        resolution = resolve_read_schema([("base", old_base)], [("base", BASE)])
        assert resolution == [("base", BASE, "read")]

    def test_scalar_type_mismatch_raises(self):
        with pytest.raises(SchemaEvolutionError, match="schema mismatch"):
            resolve_read_schema([("k", BIGINT)], [("k", VARCHAR)])
