"""Unit and property tests for column encodings.

The key invariants: (1) every encoder round-trips; (2) the vectorized and
scalar decode paths — the section V.I comparison — produce identical
values from identical bytes; (3) the value-at-a-time legacy encoders are
byte-identical to the batch encoders.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import BIGINT, BOOLEAN, DOUBLE, VARCHAR
from repro.formats.parquet.encoding import (
    build_dictionary,
    decode_dictionary_indices_scalar,
    decode_dictionary_indices_vectorized,
    decode_levels,
    decode_plain_scalar,
    decode_plain_vectorized,
    encode_dictionary_indices,
    encode_dictionary_indices_value_at_a_time,
    encode_levels,
    encode_levels_value_at_a_time,
    encode_plain,
    encode_plain_array,
    encode_plain_value_at_a_time,
)


class TestLevels:
    def test_round_trip(self):
        levels = [0, 0, 1, 1, 1, 2, 0, 3, 3]
        data = encode_levels(levels)
        assert list(decode_levels(data, len(levels))) == levels

    def test_empty(self):
        assert encode_levels([]) == b""

    def test_single_run_is_tiny(self):
        data = encode_levels([1] * 100_000)
        assert len(data) <= 4  # one (value, run) varint pair

    def test_value_at_a_time_identical_bytes(self):
        levels = [0, 1, 1, 2, 0, 0, 3]
        assert encode_levels_value_at_a_time(levels) == encode_levels(levels)


class TestPlain:
    @pytest.mark.parametrize(
        "presto_type,values",
        [
            (BIGINT, [1, -5, 2**40]),
            (DOUBLE, [1.5, -0.25, 1e300]),
            (BOOLEAN, [True, False, True]),
            (VARCHAR, ["", "hello", "ünïcode"]),
        ],
    )
    def test_round_trip_both_decoders(self, presto_type, values):
        data = encode_plain(values, presto_type)
        assert list(decode_plain_vectorized(data, presto_type, len(values))) == values
        assert decode_plain_scalar(data, presto_type, len(values)) == values

    def test_array_encoder_matches_list_encoder(self):
        values = [3, 1, 4, 1, 5]
        assert encode_plain_array(np.array(values, dtype=np.int64), BIGINT) == encode_plain(
            values, BIGINT
        )

    def test_value_at_a_time_identical_bytes(self):
        for presto_type, values in [
            (BIGINT, [7, -7]),
            (DOUBLE, [2.5]),
            (BOOLEAN, [True, False]),
            (VARCHAR, ["ab", "c"]),
        ]:
            assert encode_plain_value_at_a_time(values, presto_type) == encode_plain(
                values, presto_type
            )


class TestDictionary:
    def test_low_cardinality_encoded(self):
        values = ["a", "b", "a", "a", "b"] * 10
        result = build_dictionary(values)
        assert result is not None
        dictionary, indices = result
        assert dictionary == ["a", "b"]
        assert [dictionary[i] for i in indices] == values

    def test_high_cardinality_declined(self):
        values = [f"unique-{i}" for i in range(1000)]
        assert build_dictionary(values) is None

    def test_empty_declined(self):
        assert build_dictionary([]) is None

    def test_indices_round_trip_both_decoders(self):
        indices = np.array([0, 1, 1, 0, 2], dtype=np.int32)
        data = encode_dictionary_indices(indices)
        assert list(decode_dictionary_indices_vectorized(data, 5)) == list(indices)
        assert decode_dictionary_indices_scalar(data, 5) == list(indices)
        assert encode_dictionary_indices_value_at_a_time(list(indices)) == data


# -- properties --------------------------------------------------------------


@given(st.lists(st.integers(0, 7), max_size=200))
@settings(max_examples=150, deadline=None)
def test_levels_round_trip_property(levels):
    data = encode_levels(levels)
    assert list(decode_levels(data, len(levels))) == levels
    assert encode_levels_value_at_a_time(levels) == data


@given(st.lists(st.integers(-(2**62), 2**62), max_size=100))
@settings(max_examples=100, deadline=None)
def test_bigint_decoders_agree_property(values):
    data = encode_plain(values, BIGINT)
    vectorized = list(decode_plain_vectorized(data, BIGINT, len(values)))
    scalar = decode_plain_scalar(data, BIGINT, len(values))
    assert vectorized == scalar == values


@given(st.lists(st.text(max_size=20), max_size=60))
@settings(max_examples=100, deadline=None)
def test_varchar_decoders_agree_property(values):
    data = encode_plain(values, VARCHAR)
    vectorized = list(decode_plain_vectorized(data, VARCHAR, len(values)))
    scalar = decode_plain_scalar(data, VARCHAR, len(values))
    assert vectorized == scalar == values


@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=80
    )
)
@settings(max_examples=100, deadline=None)
def test_double_decoders_agree_property(values):
    data = encode_plain(values, DOUBLE)
    vectorized = list(decode_plain_vectorized(data, DOUBLE, len(values)))
    scalar = decode_plain_scalar(data, DOUBLE, len(values))
    assert vectorized == scalar == values
