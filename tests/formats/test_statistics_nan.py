"""NaN-poisoning regressions in column chunk statistics.

A single NaN used to poison a float chunk's footer min/max (ndarray
``min()``/``max()`` propagate NaN; Python ``min()``/``max()`` return
order-dependent garbage because NaN never orders).  NaN-poisoned stats
serialize as JSON ``NaN`` and defeat every stats-based row-group skip —
static and dynamic alike.  Both stats paths must summarize only the
comparable values.
"""

import math

import numpy as np

from repro.core.expressions import CallExpression, constant, variable
from repro.core.functions import default_registry
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.formats.parquet.file import LeafChunk, ParquetFile
from repro.formats.parquet.metadata import ColumnStatistics
from repro.formats.parquet.reader_new import NewParquetReader
from repro.formats.parquet.schema import ParquetSchema
from repro.formats.parquet.writer_native import NativeParquetWriter
from repro.formats.parquet.writer_old import OldParquetWriter

NAN = float("nan")


def leaf_chunk(values):
    schema = ParquetSchema([("fare", DOUBLE)])
    return LeafChunk(
        leaf=schema.leaf("fare"),
        repetition=[0] * len(values),
        definition=[1] * len(values),
        defined_values=np.asarray(values, dtype=np.float64),
        num_slots=len(values),
    )


class TestLeafChunkStatistics:
    def test_nan_excluded_from_numpy_min_max(self):
        stats = leaf_chunk([3.0, NAN, 1.0, 2.0]).compute_statistics()
        assert (stats.min_value, stats.max_value) == (1.0, 3.0)

    def test_all_nan_chunk_has_no_min_max(self):
        stats = leaf_chunk([NAN, NAN]).compute_statistics()
        assert stats.min_value is None and stats.max_value is None
        assert stats.num_values == 2

    def test_clean_floats_unchanged(self):
        stats = leaf_chunk([2.5, 0.5]).compute_statistics()
        assert (stats.min_value, stats.max_value) == (0.5, 2.5)
        assert stats.null_count == 0


class TestColumnStatisticsOf:
    def test_nan_excluded_from_list_min_max(self):
        stats = ColumnStatistics.of([NAN, 4.0, None, 2.0], num_slots=4)
        assert (stats.min_value, stats.max_value) == (2.0, 4.0)
        assert stats.null_count == 1

    def test_all_nan_defined_values(self):
        stats = ColumnStatistics.of([NAN, NAN, None], num_slots=3)
        assert stats.min_value is None and stats.max_value is None
        assert stats.null_count == 1  # NaN is defined, not null

    def test_unorderable_values_keep_counts(self):
        stats = ColumnStatistics.of([1, "a"], num_slots=2)
        assert stats.min_value is None and stats.null_count == 0


SCHEMA = ParquetSchema([("k", BIGINT), ("fare", DOUBLE)])


def write_blob(writer_cls, rows, row_group_size=10):
    page = Page.from_rows([BIGINT, DOUBLE], rows)
    return writer_cls(SCHEMA, row_group_size=row_group_size).write_pages([page])


def fare_at_least(value):
    handle, _ = default_registry().resolve_scalar(
        "greater_than_or_equal", [DOUBLE, DOUBLE]
    )
    return CallExpression(
        "greater_than_or_equal",
        handle,
        handle.resolved_return_type(),
        (variable("fare", DOUBLE), constant(value, DOUBLE)),
    )


class TestWriterRoundTrip:
    def test_both_writers_store_comparable_stats(self):
        rows = [(i, NAN if i % 10 == 0 else float(i)) for i in range(20)]
        for writer_cls in (NativeParquetWriter, OldParquetWriter):
            footer = ParquetFile(write_blob(writer_cls, rows)).metadata
            for group in footer.row_groups:
                stats = group.column("fare").statistics
                assert stats.min_value == stats.min_value, "footer min is NaN"
                assert stats.max_value == stats.max_value, "footer max is NaN"

    def test_row_group_skip_survives_nan_rows(self):
        # fares ascend with one NaN per group; groups below the predicate
        # threshold must still skip on footer stats.
        rows = [(i, NAN if i % 10 == 5 else float(i)) for i in range(40)]
        blob = write_blob(NativeParquetWriter, rows, row_group_size=10)
        reader = NewParquetReader(
            ParquetFile(blob), ["k"], predicate=fare_at_least(30.0)
        )
        kept = [row[0] for p in reader.read_pages() for row in p.loaded().rows()]
        assert kept == [i for i in range(30, 40) if i % 10 != 5]
        assert reader.stats.row_groups_skipped_by_stats == 3

    def test_nan_rows_never_pass_comparisons(self):
        rows = [(i, NAN if i % 2 else float(i)) for i in range(10)]
        blob = write_blob(NativeParquetWriter, rows)
        reader = NewParquetReader(
            ParquetFile(blob), ["k"], predicate=fare_at_least(0.0)
        )
        kept = [row[0] for p in reader.read_pages() for row in p.loaded().rows()]
        assert kept == [0, 2, 4, 6, 8]
