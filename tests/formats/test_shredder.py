"""Dremel shredding/assembly round-trip tests, including property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import (
    ArrayType,
    BIGINT,
    DOUBLE,
    MapType,
    RowType,
    VARCHAR,
)
from repro.formats.parquet.shredder import assemble_column, shred_column


def round_trip(presto_type, values):
    chunks = shred_column("c", presto_type, values)
    return assemble_column("c", presto_type, chunks, len(values))


class TestScalars:
    def test_flat(self):
        assert round_trip(BIGINT, [1, 2, 3]) == [1, 2, 3]

    def test_flat_with_nulls(self):
        assert round_trip(BIGINT, [1, None, 3]) == [1, None, 3]

    def test_levels_for_flat_column(self):
        chunks = shred_column("c", BIGINT, [1, None])
        levels = chunks["c"]
        assert levels.repetition == [0, 0]
        assert levels.definition == [1, 0]
        assert levels.values == [1, None]


class TestStructs:
    def test_simple_struct(self):
        t = RowType.of(("a", BIGINT), ("b", VARCHAR))
        values = [{"a": 1, "b": "x"}, None, {"a": None, "b": "y"}]
        assert round_trip(t, values) == values

    def test_struct_leaves_are_separate_columns(self):
        t = RowType.of(("a", BIGINT), ("b", VARCHAR))
        chunks = shred_column("c", t, [{"a": 1, "b": "x"}])
        assert set(chunks) == {"c.a", "c.b"}

    def test_null_struct_definition_levels(self):
        t = RowType.of(("a", BIGINT))
        chunks = shred_column("c", t, [None, {"a": None}, {"a": 5}])
        assert chunks["c.a"].definition == [0, 1, 2]

    def test_deep_nesting(self):
        # "more than 5 levels of nesting" (section V.A)
        t = BIGINT
        for i in range(6):
            t = RowType.of((f"f{i}", t))
        value = 42
        for i in range(6):
            value = {f"f{i}": value}
        assert round_trip(t, [value, None]) == [value, None]

    def test_partial_inner_null(self):
        inner = RowType.of(("x", BIGINT))
        outer = RowType.of(("inner", inner), ("y", VARCHAR))
        values = [{"inner": None, "y": "a"}, {"inner": {"x": 1}, "y": None}]
        assert round_trip(outer, values) == values


class TestArrays:
    def test_array_basic(self):
        t = ArrayType(BIGINT)
        values = [[1, 2, 3], [], None, [4]]
        assert round_trip(t, values) == values

    def test_array_with_null_elements(self):
        t = ArrayType(BIGINT)
        values = [[1, None, 3]]
        assert round_trip(t, values) == values

    def test_repetition_levels(self):
        t = ArrayType(BIGINT)
        chunks = shred_column("c", t, [[1, 2], [3]])
        assert chunks["c.element"].repetition == [0, 1, 0]

    def test_nested_arrays(self):
        t = ArrayType(ArrayType(BIGINT))
        values = [[[1, 2], []], [], None, [[3], None, [4, 5]]]
        assert round_trip(t, values) == values

    def test_array_of_structs(self):
        t = ArrayType(RowType.of(("a", BIGINT), ("b", VARCHAR)))
        values = [[{"a": 1, "b": "x"}, {"a": 2, "b": None}], [], [None]]
        assert round_trip(t, values) == values


class TestMaps:
    def test_map_basic(self):
        t = MapType(VARCHAR, DOUBLE)
        values = [{"a": 1.0, "b": 2.0}, {}, None, {"c": None}]
        assert round_trip(t, values) == values

    def test_map_of_struct_values(self):
        t = MapType(VARCHAR, RowType.of(("x", BIGINT)))
        values = [{"k": {"x": 1}, "j": None}]
        assert round_trip(t, values) == values


class TestCombined:
    def test_struct_with_array_and_map(self):
        t = RowType.of(
            ("tags", ArrayType(VARCHAR)),
            ("metrics", MapType(VARCHAR, DOUBLE)),
            ("id", BIGINT),
        )
        values = [
            {"tags": ["x", "y"], "metrics": {"m": 1.5}, "id": 1},
            {"tags": [], "metrics": None, "id": None},
            None,
            {"tags": None, "metrics": {}, "id": 2},
        ]
        assert round_trip(t, values) == values


# -- property-based round trips ---------------------------------------------

scalar_values = st.one_of(st.none(), st.integers(-(2**40), 2**40))


def nested_type_and_values(max_depth=3):
    """Generate a (type, strategy for values of that type) pair."""

    def build(depth):
        if depth == 0:
            return st.just((BIGINT, scalar_values))
        return st.one_of(
            st.just((BIGINT, scalar_values)),
            build(depth - 1).map(
                lambda tv: (
                    RowType.of(("f", tv[0])),
                    st.one_of(st.none(), st.fixed_dictionaries({"f": tv[1]})),
                )
            ),
            build(depth - 1).map(
                lambda tv: (
                    ArrayType(tv[0]),
                    st.one_of(st.none(), st.lists(tv[1], max_size=4)),
                )
            ),
            build(depth - 1).map(
                lambda tv: (
                    MapType(VARCHAR, tv[0]),
                    st.one_of(
                        st.none(),
                        st.dictionaries(
                            st.text(alphabet="abc", min_size=1, max_size=3),
                            tv[1],
                            max_size=3,
                        ),
                    ),
                )
            ),
        )

    return build(max_depth)


@given(
    nested_type_and_values().flatmap(
        lambda tv: st.tuples(st.just(tv[0]), st.lists(tv[1], max_size=8))
    )
)
@settings(max_examples=200, deadline=None)
def test_shred_assemble_round_trip_property(type_and_values):
    presto_type, values = type_and_values
    assert round_trip(presto_type, values) == values


@given(st.lists(st.one_of(st.none(), st.integers(0, 100)), max_size=30))
@settings(max_examples=100, deadline=None)
def test_flat_column_triplet_count_matches_rows(values):
    chunks = shred_column("c", BIGINT, values)
    assert len(chunks["c"]) == len(values)
