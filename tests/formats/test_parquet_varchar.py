"""Parquet varchar columns decode straight into offsets-based blocks.

The vectorized reader must emit :class:`VarcharBlock` for PLAIN varchar
pages (one gather over the wire bytes, no per-value Python objects) and a
:class:`DictionaryBlock` whose dictionary is a ``VarcharBlock`` for
dictionary-encoded pages — and both must round-trip byte-exactly against
the writer, including NULLs, empty strings, and non-ASCII UTF-8.  The
scalar (non-vectorized) lane stays the differential oracle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import DictionaryBlock, VarcharBlock, object_varchar_lane
from repro.core.page import Page
from repro.core.types import BIGINT, VARCHAR
from repro.formats.parquet.encoding import decode_plain_varchar, encode_plain
from repro.formats.parquet.file import ParquetFile
from repro.formats.parquet.options import ReaderOptions
from repro.formats.parquet.reader_new import NewParquetReader
from repro.formats.parquet.schema import ParquetSchema
from repro.formats.parquet.writer_native import NativeParquetWriter

SCHEMA = ParquetSchema([("name", VARCHAR), ("id", BIGINT)])

texts = st.text(
    alphabet="abc XYZ0-éλ漢🎈", max_size=12
)
values_lists = st.lists(st.one_of(st.none(), texts), min_size=1, max_size=60)


def write_column(values):
    rows = [(v, i) for i, v in enumerate(values)]
    page = Page.from_rows([VARCHAR, BIGINT], rows)
    return NativeParquetWriter(SCHEMA).write_pages([page])


def read_column(blob, **option_overrides):
    options = ReaderOptions(**option_overrides)
    reader = NewParquetReader(ParquetFile(blob), ["name"], options=options)
    pages = [p.loaded() for p in reader.read_pages()]
    blocks = [p.block(0) for p in pages]
    return blocks, [v for b in blocks for v in b.to_list()]


def test_plain_pages_emit_varchar_blocks():
    # All-distinct values defeat the writer's dictionary heuristic, so
    # the column is PLAIN-encoded and must decode to VarcharBlock.
    values = [f"driver-{i:04d}-é" for i in range(64)]
    blocks, decoded = read_column(write_column(values))
    assert decoded == values
    assert all(isinstance(b, VarcharBlock) for b in blocks)


def test_dictionary_pages_emit_varchar_dictionary():
    # Three distinct values over 64 rows triggers dictionary encoding;
    # the page dictionary itself must be offsets-based.
    values = [["completed", "cancelled", "漢字"][i % 3] for i in range(64)]
    blocks, decoded = read_column(write_column(values))
    assert decoded == values
    assert all(isinstance(b, DictionaryBlock) for b in blocks)
    assert all(isinstance(b.dictionary, VarcharBlock) for b in blocks)


def test_nulls_round_trip_in_varchar_blocks():
    values = [None, "", "a", None, "é漢🎈", None, "tail"]
    values = values * 9  # keep some distinctness; stays PLAIN either way
    blocks, decoded = read_column(write_column(values))
    assert decoded == values
    for block in blocks:
        inner = block.dictionary if isinstance(block, DictionaryBlock) else block
        assert isinstance(inner, VarcharBlock)


def test_scalar_lane_unaffected():
    values = [f"v{i}" if i % 4 else None for i in range(32)]
    blob = write_column(values)
    _, vectorized = read_column(blob)
    scalar_blocks, scalar = read_column(blob, vectorized=False)
    assert scalar == vectorized == values
    assert not any(isinstance(b, VarcharBlock) for b in scalar_blocks)


def test_object_lane_toggle_respected():
    blob = write_column([f"v{i}" for i in range(32)])
    with object_varchar_lane():
        blocks, decoded = read_column(blob)
    assert decoded == [f"v{i}" for i in range(32)]
    assert not any(isinstance(b, VarcharBlock) for b in blocks)


@given(values_lists)
@settings(max_examples=60, deadline=None)
def test_round_trip_differential(values):
    """Vectorized (offsets) and scalar lanes agree on arbitrary columns."""
    blob = write_column(values)
    _, vectorized = read_column(blob)
    _, scalar = read_column(blob, vectorized=False)
    assert vectorized == values
    assert scalar == values


@given(st.lists(texts, min_size=0, max_size=50))
@settings(max_examples=100, deadline=None)
def test_decode_plain_varchar_matches_wire_format(values):
    """The vectorized PLAIN decoder inverts ``encode_plain`` exactly."""
    wire = encode_plain(values, VARCHAR)
    data, offsets = decode_plain_varchar(wire, len(values))
    assert offsets.dtype == np.int64 and data.dtype == np.uint8
    out = [
        bytes(data[offsets[i] : offsets[i + 1]]).decode("utf-8")
        for i in range(len(values))
    ]
    assert out == values
