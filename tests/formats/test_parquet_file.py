"""Round-trip tests for the parquet file format, writers, and readers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.page import Page
from repro.core.types import (
    ArrayType,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    MapType,
    RowType,
    VARCHAR,
)
from repro.formats.parquet import compression
from repro.formats.parquet.file import ParquetFile, read_footer
from repro.formats.parquet.options import ReaderOptions
from repro.formats.parquet.reader_new import NewParquetReader
from repro.formats.parquet.reader_old import OldParquetReader
from repro.formats.parquet.schema import ParquetSchema
from repro.formats.parquet.writer_native import NativeParquetWriter
from repro.formats.parquet.writer_old import OldParquetWriter
from repro.storage.filesystem import BytesInput


TRIPS_BASE = RowType.of(
    ("city_id", BIGINT), ("driver_uuid", VARCHAR), ("status", VARCHAR)
)
TRIPS_SCHEMA = ParquetSchema(
    [("base", TRIPS_BASE), ("datestr", VARCHAR), ("fare", DOUBLE)]
)


def trips_rows(n, city_for=lambda i: i % 5):
    return [
        (
            {
                "city_id": city_for(i),
                "driver_uuid": f"driver-{i}",
                "status": "completed" if i % 3 else "cancelled",
            },
            f"2017-03-{(i % 28) + 1:02d}",
            float(i) * 1.5,
        )
        for i in range(n)
    ]


def write_trips(n=100, codec=compression.SNAPPY, writer_cls=NativeParquetWriter, row_group_size=40):
    page = Page.from_rows([TRIPS_BASE, VARCHAR, DOUBLE], trips_rows(n))
    writer = writer_cls(TRIPS_SCHEMA, codec=codec, row_group_size=row_group_size)
    return writer.write_pages([page])


class TestSchema:
    def test_leaf_enumeration(self):
        leaves = {l.path for l in TRIPS_SCHEMA.leaves()}
        assert leaves == {
            "base.city_id",
            "base.driver_uuid",
            "base.status",
            "datestr",
            "fare",
        }

    def test_levels(self):
        leaf = TRIPS_SCHEMA.leaf("base.city_id")
        assert leaf.max_definition_level == 2  # base optional + leaf optional
        assert leaf.max_repetition_level == 0
        flat = TRIPS_SCHEMA.leaf("datestr")
        assert flat.max_definition_level == 1

    def test_array_levels(self):
        schema = ParquetSchema([("tags", ArrayType(VARCHAR))])
        leaf = schema.leaf("tags.element")
        assert leaf.max_definition_level == 3  # list + slot + element
        assert leaf.max_repetition_level == 1

    def test_map_leaves(self):
        schema = ParquetSchema([("m", MapType(VARCHAR, DOUBLE))])
        assert {l.path for l in schema.leaves()} == {"m.key", "m.value"}

    def test_serialization_round_trip(self):
        assert ParquetSchema.from_dict(TRIPS_SCHEMA.to_dict()) == TRIPS_SCHEMA

    def test_leaves_under(self):
        assert {l.path for l in TRIPS_SCHEMA.leaves_under("base")} == {
            "base.city_id",
            "base.driver_uuid",
            "base.status",
        }
        assert [l.path for l in TRIPS_SCHEMA.leaves_under("base.city_id")] == [
            "base.city_id"
        ]

    def test_type_at(self):
        assert TRIPS_SCHEMA.type_at("base.city_id") is BIGINT
        assert TRIPS_SCHEMA.type_at("base") == TRIPS_BASE


class TestFooter:
    def test_footer_round_trip(self):
        blob = write_trips(50)
        metadata = read_footer(BytesInput(blob))
        assert metadata.num_rows == 50
        assert len(metadata.row_groups) == 2  # row_group_size=40
        assert metadata.schema == TRIPS_SCHEMA

    def test_statistics_present(self):
        blob = write_trips(50)
        file = ParquetFile(blob)
        stats = file.chunk_metadata(0, "base.city_id").statistics
        assert stats.min_value == 0
        assert stats.max_value == 4

    def test_bad_magic_rejected(self):
        from repro.common.errors import StorageError

        with pytest.raises(StorageError):
            ParquetFile(b"not a parquet file at all....")

    def test_externally_supplied_metadata_skips_footer_read(self):
        blob = write_trips(10)
        metadata = read_footer(BytesInput(blob))
        file = ParquetFile(blob, metadata=metadata)
        assert file.metadata is metadata


class TestWritersProduceSameFiles:
    @pytest.mark.parametrize("codec", list(compression.CODECS))
    def test_identical_bytes(self, codec):
        old = write_trips(60, codec=codec, writer_cls=OldParquetWriter)
        native = write_trips(60, codec=codec, writer_cls=NativeParquetWriter)
        assert old == native


class TestOldReader:
    def test_reads_everything(self):
        blob = write_trips(25, row_group_size=10)
        reader = OldParquetReader(ParquetFile(blob))
        pages = list(reader.read_pages())
        assert sum(p.position_count for p in pages) == 25
        rows = [row for p in pages for row in p.rows()]
        assert rows[3][0]["driver_uuid"] == "driver-3"
        assert rows[3][1] == "2017-03-04"

    def test_decodes_all_values(self):
        blob = write_trips(20, row_group_size=20)
        reader = OldParquetReader(ParquetFile(blob))
        list(reader.read_pages())
        # 5 leaves * 20 rows
        assert reader.values_decoded == 100


class TestNewReaderRoundTrip:
    @pytest.mark.parametrize(
        "options",
        [
            ReaderOptions.all_enabled(),
            ReaderOptions.all_disabled(),
            ReaderOptions(columnar_reads=False),
            ReaderOptions(vectorized=False),
            ReaderOptions(lazy_reads=False),
        ],
    )
    def test_projection_matches_source(self, options):
        # A dotted leaf path yields the leaf values directly.
        blob = write_trips(30, row_group_size=10)
        reader = NewParquetReader(
            ParquetFile(blob), ["base.city_id", "datestr"], options=options
        )
        pages = [p.loaded() for p in reader.read_pages()]
        rows = [row for p in pages for row in p.rows()]
        if options.nested_column_pruning:
            expected = [(i % 5, f"2017-03-{(i % 28) + 1:02d}") for i in range(30)]
        else:
            # Pruning disabled widens the request to the whole struct
            # (figure 4: "read all Parquet nested fields").
            source = trips_rows(30)
            expected = [(r[0], r[1]) for r in source]
        assert rows == expected

    def test_partial_struct_via_restrict(self):
        # Nested column pruning shape: a struct output carrying only the
        # requested subfield (section V.D).
        blob = write_trips(10, row_group_size=10)
        reader = NewParquetReader(
            ParquetFile(blob), ["base"], restrict={"base": ["base.city_id"]}
        )
        page = next(iter(reader.read_pages())).loaded()
        assert page.block(0).get(0) == {"city_id": 0}
        # Only the city_id leaf was decoded: 10 values, not 30.
        assert reader.stats.values_decoded == 10

    def test_whole_struct_read(self):
        blob = write_trips(10, row_group_size=10)
        reader = NewParquetReader(ParquetFile(blob), ["base"])
        rows = [row for p in reader.read_pages() for row in p.loaded().rows()]
        assert rows[0][0] == {
            "city_id": 0,
            "driver_uuid": "driver-0",
            "status": "cancelled",
        }

    def test_nulls_round_trip(self):
        schema = ParquetSchema([("base", TRIPS_BASE), ("x", BIGINT)])
        values = [
            ({"city_id": 1, "driver_uuid": None, "status": "s"}, 5),
            (None, None),
            ({"city_id": None, "driver_uuid": "d", "status": None}, 7),
        ]
        page = Page.from_rows([TRIPS_BASE, BIGINT], values)
        blob = NativeParquetWriter(schema).write_pages([page])
        reader = NewParquetReader(ParquetFile(blob), ["base", "x"])
        rows = [row for p in reader.read_pages() for row in p.loaded().rows()]
        assert rows == values

    def test_arrays_and_maps_round_trip(self):
        schema = ParquetSchema(
            [("tags", ArrayType(VARCHAR)), ("metrics", MapType(VARCHAR, DOUBLE))]
        )
        values = [
            (["a", "b"], {"x": 1.0}),
            ([], {}),
            (None, None),
            (["c"], {"y": None, "z": 2.0}),
        ]
        page = Page.from_rows([ArrayType(VARCHAR), MapType(VARCHAR, DOUBLE)], values)
        blob = NativeParquetWriter(schema).write_pages([page])
        reader = NewParquetReader(ParquetFile(blob), ["tags", "metrics"])
        rows = [row for p in reader.read_pages() for row in p.loaded().rows()]
        assert rows == values


class TestPredicatePushdown:
    def _reader(self, blob, predicate, **option_overrides):
        from repro.core.expressions import constant, variable
        from repro.core.functions import default_registry
        from repro.core.expressions import CallExpression

        options = ReaderOptions(**option_overrides)
        return NewParquetReader(
            ParquetFile(blob),
            ["base.driver_uuid"],
            options=options,
            predicate=predicate,
        )

    def _city_equals(self, city_id):
        from repro.core.expressions import CallExpression, constant, variable
        from repro.core.functions import default_registry

        handle, _ = default_registry().resolve_scalar("equal", [BIGINT, BIGINT])
        return CallExpression(
            "equal",
            handle,
            handle.resolved_return_type(),
            (variable("base.city_id", BIGINT), constant(city_id, BIGINT)),
        )

    def test_row_group_skipping_by_stats(self):
        # city_id values are i (sorted), so later groups have higher mins.
        page = Page.from_rows(
            [TRIPS_BASE, VARCHAR, DOUBLE], trips_rows(100, city_for=lambda i: i)
        )
        blob = NativeParquetWriter(TRIPS_SCHEMA, row_group_size=10).write_pages([page])
        reader = self._reader(blob, self._city_equals(5))
        rows = [row for p in reader.read_pages() for row in p.loaded().rows()]
        assert len(rows) == 1
        assert reader.stats.row_groups_skipped_by_stats == 9

    def test_filtering_on_the_fly(self):
        blob = write_trips(50, row_group_size=50)
        reader = self._reader(blob, self._city_equals(2))
        rows = [row for p in reader.read_pages() for row in p.loaded().rows()]
        assert len(rows) == 10
        assert all(r[0].startswith("driver-") for r in rows)

    def test_no_filtering_when_disabled(self):
        blob = write_trips(50, row_group_size=50)
        reader = self._reader(blob, self._city_equals(2), predicate_pushdown=False)
        rows = [row for p in reader.read_pages() for row in p.loaded().rows()]
        assert len(rows) == 50  # filter left for the engine


class TestDictionaryPushdown:
    def _status_equals(self, value):
        from repro.core.expressions import CallExpression, constant, variable
        from repro.core.functions import default_registry

        handle, _ = default_registry().resolve_scalar("equal", [VARCHAR, VARCHAR])
        return CallExpression(
            "equal",
            handle,
            handle.resolved_return_type(),
            (variable("base.status", VARCHAR), constant(value, VARCHAR)),
        )

    def test_skips_groups_whose_dictionary_cannot_match(self):
        blob = write_trips(40, row_group_size=10)
        # "cartoon" sorts between "cancelled" and "completed", so min/max
        # statistics cannot exclude it — only the dictionary can (V.G:
        # "Even if Parquet statistics match the predicate, we can read the
        # dictionary page ... to determine whether the dictionary can
        # potentially match").
        reader = NewParquetReader(
            ParquetFile(blob),
            ["base.driver_uuid"],
            predicate=self._status_equals("cartoon"),
        )
        rows = list(reader.read_pages())
        assert rows == []
        assert reader.stats.row_groups_skipped_by_stats == 0
        assert reader.stats.row_groups_skipped_by_dictionary == 4

    def test_dictionary_blocks_surface_to_engine(self):
        blob = write_trips(40, row_group_size=40)
        reader = NewParquetReader(ParquetFile(blob), ["base.status"])
        from repro.core.blocks import DictionaryBlock

        page = next(iter(reader.read_pages()))
        assert isinstance(page.block(0), DictionaryBlock)

    def test_dictionary_cached_across_reads(self):
        blob = write_trips(40, row_group_size=40)
        file = ParquetFile(blob)
        reader = NewParquetReader(file, ["base.status"])
        list(reader.read_pages())
        segments_after_first = file.segments_read
        # Reading the dictionary again for the same chunk hits the cache.
        reader._read_dictionary(0, "base.status", file.chunk_metadata(0, "base.status"))
        assert file.segments_read == segments_after_first


class TestLazyReads:
    def test_projected_column_not_decoded_when_group_fully_filtered(self):
        from repro.core.expressions import CallExpression, constant, variable
        from repro.core.functions import default_registry

        # LIKE is opaque to stats and dictionary pushdown, so the group is
        # scanned — and the projected column's lazy block is never loaded
        # because no row survives.
        handle, _ = default_registry().resolve_scalar("like", [VARCHAR, VARCHAR])
        predicate = CallExpression(
            "like",
            handle,
            handle.resolved_return_type(),
            (variable("base.status", VARCHAR), constant("nothing%", VARCHAR)),
        )
        blob = write_trips(30, row_group_size=30)
        reader = NewParquetReader(
            ParquetFile(blob),
            ["base.driver_uuid"],
            predicate=predicate,
        )
        pages = list(reader.read_pages())
        assert pages == []
        # driver_uuid leaf never decoded: only status was.
        assert reader.stats.values_decoded == 30
        assert reader.stats.lazy_loads_avoided == 1


class TestSegmentDataCache:
    def test_cached_segments_skip_storage_reads(self):
        from repro.cache.data_cache import DataCacheConfig, TieredDataCache

        blob = write_trips(30, row_group_size=30)
        cache = TieredDataCache(DataCacheConfig())
        file = ParquetFile(blob)
        file.attach_data_cache(cache, "warehouse/trips.parquet")
        reader = NewParquetReader(file, ["fare"])
        rows = [row for p in reader.read_pages() for row in p.loaded().rows()]
        assert [r[0] for r in rows] == [i * 1.5 for i in range(30)]
        bytes_after_first = file.bytes_read
        assert bytes_after_first > 0

        # A second reader over the same (cached) file reads zero bytes
        # from storage and yields identical rows.
        second = NewParquetReader(file, ["fare"])
        again = [row for p in second.read_pages() for row in p.loaded().rows()]
        assert again == rows
        assert file.bytes_read == bytes_after_first
        assert cache.stats.hits > 0

    def test_cache_keys_disambiguate_files(self):
        from repro.cache.data_cache import DataCacheConfig, TieredDataCache

        cache = TieredDataCache(DataCacheConfig())
        first = ParquetFile(write_trips(10, row_group_size=10))
        second = ParquetFile(write_trips(20, row_group_size=20))
        first.attach_data_cache(cache, "a.parquet")
        second.attach_data_cache(cache, "b.parquet")
        rows_a = [
            row
            for p in NewParquetReader(first, ["fare"]).read_pages()
            for row in p.loaded().rows()
        ]
        rows_b = [
            row
            for p in NewParquetReader(second, ["fare"]).read_pages()
            for row in p.loaded().rows()
        ]
        assert len(rows_a) == 10 and len(rows_b) == 20
        # Same segment names, different files: no key collisions.
        assert cache.stats.hits == 0


class TestCompressionCodecs:
    @pytest.mark.parametrize("codec", list(compression.CODECS))
    def test_round_trip(self, codec):
        blob = write_trips(20, codec=codec)
        reader = NewParquetReader(ParquetFile(blob), ["fare"])
        rows = [row for p in reader.read_pages() for row in p.loaded().rows()]
        assert [r[0] for r in rows] == [i * 1.5 for i in range(20)]

    def test_gzip_smaller_than_uncompressed(self):
        plain = write_trips(500, codec=compression.UNCOMPRESSED)
        gzipped = write_trips(500, codec=compression.GZIP)
        assert len(gzipped) < len(plain)


@given(
    st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(-(2**40), 2**40)),
            st.one_of(st.none(), st.text(max_size=8)),
            st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
        ),
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_flat_file_round_trip_property(rows):
    schema = ParquetSchema([("a", BIGINT), ("b", VARCHAR), ("c", DOUBLE)])
    page = Page.from_rows([BIGINT, VARCHAR, DOUBLE], rows)
    blob = NativeParquetWriter(schema, row_group_size=7).write_pages([page])
    reader = NewParquetReader(ParquetFile(blob), ["a", "b", "c"])
    got = [row for p in reader.read_pages() for row in p.loaded().rows()]
    assert got == rows
