"""Determinism of the streaming substrates: same seed ⇒ byte-identical.

Extends the obs determinism suite's convention to the Kafka broker, the
realtime tail, and the streaming lakehouse pipeline: two runs with the
same seed must agree byte-for-byte on broker log layout, committed and
sealed watermarks, tail segment layout, lake file listing, snapshot
history (including the atomically-committed watermark properties),
metrics JSON, pipeline trace JSON, and query rows + trace JSON — even
with pipeline crash injection on.  A different seed must diverge (the
fault schedule changes), which guards against fingerprints that are
vacuously constant.
"""

from repro.common.hashing import stable_hash
from repro.connectors.kafka import KafkaBroker
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.faults import FaultInjector
from repro.realtime import StreamingLakehouse

FIELDS = [("order_id", BIGINT), ("city", VARCHAR), ("amount", DOUBLE)]

SQL = "SELECT city, count(*), sum(amount) FROM events GROUP BY city ORDER BY city"


def run_lakehouse(seed):
    injector = FaultInjector(seed=seed, pipeline_failure_rate=0.25)
    lh = StreamingLakehouse(
        fields=FIELDS,
        poll_interval_ms=150,
        compaction_interval_ms=700,
        fault_injector=injector,
    )
    for i in range(240):
        # No explicit partition: exercises the key-hash partitioner.
        lh.produce((i, f"c{i % 5}", i / 9), timestamp_ms=i * 6)
    lh.pipeline.run_for(3500)
    engine = lh.make_engine()
    result = engine.execute(SQL)
    return lh, result


def fingerprint(lh, result):
    broker_layout = tuple(
        tuple((r.offset, r.timestamp_ms, r.values) for r in lh.broker.log_records(lh.topic, p))
        for p in range(lh.broker.partition_count(lh.topic))
    )
    return (
        broker_layout,
        lh.table.committed.encode(),
        lh.table.sealed_watermark().encode(),
        tuple(lh.table.tail_layout()),
        tuple((f.path, f.row_count) for f in lh.lake.current_snapshot().files),
        tuple(
            (s.snapshot_id, s.operation, s.properties, tuple(f.path for f in s.files))
            for s in lh.lake.history()
        ),
        lh.metrics.to_json(),
        lh.pipeline_trace.to_json(),
        tuple(result.rows),
        result.trace.to_json() if result.trace is not None else None,
    )


class TestStreamingDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = fingerprint(*run_lakehouse(seed=3))
        second = fingerprint(*run_lakehouse(seed=3))
        assert first == second

    def test_different_seed_diverges(self):
        # Different crash schedules must leave different traces/metrics;
        # a fingerprint that can't tell seeds apart proves nothing.
        first = fingerprint(*run_lakehouse(seed=3))
        other = fingerprint(*run_lakehouse(seed=4))
        assert first != other

    def test_crashes_actually_injected(self):
        lh, _ = run_lakehouse(seed=3)
        assert lh.pipeline.crashes > 0


class TestKafkaPartitionerStability:
    def test_default_partitioner_is_process_stable(self):
        """The key-hash partitioner must not depend on PYTHONHASHSEED.

        Regression test for the builtin-``hash`` partitioner: offsets are
        pinned to the CRC32 ``stable_hash`` so the same produce sequence
        lays out identically in every interpreter process.
        """
        broker = KafkaBroker()
        broker.create_topic("t", [("k", VARCHAR)], partitions=4)
        for value in ("alpha", "beta", "gamma", "delta"):
            offset = broker.produce("t", (value,))
            expected_partition = stable_hash(value) % 4
            log = broker.log_records("t", expected_partition)
            assert log and log[-1].offset == offset

    def test_layout_matches_pinned_golden(self):
        # The concrete layout for these keys is part of the determinism
        # contract; a hash-function change must fail loudly, not shift
        # data silently between partitions.
        broker = KafkaBroker()
        broker.create_topic("t", [("k", VARCHAR)], partitions=3)
        for i in range(12):
            broker.produce("t", (f"key-{i}",))
        layout = [
            [r.values[0] for r in broker.log_records("t", p)] for p in range(3)
        ]
        assert layout == [
            [r.values[0] for r in broker.log_records("t", p)] for p in range(3)
        ]
        assert sum(len(log) for log in layout) == 12
        golden = [
            [f"key-{i}" for i in range(12) if stable_hash(f"key-{i}") % 3 == p]
            for p in range(3)
        ]
        assert layout == golden
