"""Unit tests for the realtime OLAP store internals."""

import pytest

from repro.common.clock import SimulatedClock
from repro.connectors.realtime.store import (
    NativeQuery,
    RealtimeOlapStore,
    Segment,
)
from repro.connectors.spi import AggregationFunction
from repro.core.expressions import (
    CallExpression,
    and_,
    constant,
    variable,
)
from repro.core.functions import default_registry
from repro.core.types import BIGINT, DOUBLE, VARCHAR


def scalar(name, column, column_type, value):
    handle, _ = default_registry().resolve_scalar(name, [column_type, column_type])
    return CallExpression(
        name,
        handle,
        handle.resolved_return_type(),
        (variable(column, column_type), constant(value, column_type)),
    )


def agg(name, inputs, input_types, output):
    handle, _ = default_registry().resolve_aggregate(name, list(input_types))
    return AggregationFunction(handle, tuple(inputs), output).to_dict()


@pytest.fixture
def store():
    store = RealtimeOlapStore(nodes=2, clock=SimulatedClock())
    store.create_datasource(
        "m", [("tag", VARCHAR), ("bucket", BIGINT), ("value", DOUBLE)]
    )
    store.add_segment("m", [("a", 1, 1.0), ("b", 2, 2.0), ("a", 1, 3.0)])
    store.add_segment("m", [("a", 2, 4.0), ("c", 1, 5.0)])
    return store


class TestSegments:
    def test_inverted_index_on_varchar_and_bigint(self, store):
        segment = store.segments("m")[0]
        assert "tag" in segment.inverted
        assert "bucket" in segment.inverted
        assert "value" not in segment.inverted  # doubles are not indexed

    def test_index_postings(self, store):
        segment = store.segments("m")[0]
        assert list(segment.inverted["tag"]["a"]) == [0, 2]

    def test_uneven_columns_rejected(self):
        with pytest.raises(ValueError):
            Segment({"a": [1, 2], "b": [1]})


class TestNativeExecution:
    def test_indexed_equality(self, store):
        rows = store.query(
            NativeQuery("m", columns=("value",), filter=scalar("equal", "tag", VARCHAR, "a").to_dict())
        )
        assert sorted(r[0] for r in rows) == [1.0, 3.0, 4.0]

    def test_indexed_conjunction_intersects(self, store):
        predicate = and_(
            scalar("equal", "tag", VARCHAR, "a"),
            scalar("equal", "bucket", BIGINT, 1),
        )
        rows = store.query(NativeQuery("m", columns=("value",), filter=predicate.to_dict()))
        assert sorted(r[0] for r in rows) == [1.0, 3.0]

    def test_residual_scan_filter(self, store):
        predicate = scalar("greater_than", "value", DOUBLE, 2.5)
        rows = store.query(NativeQuery("m", columns=("value",), filter=predicate.to_dict()))
        assert sorted(r[0] for r in rows) == [3.0, 4.0, 5.0]

    def test_mixed_indexed_and_residual(self, store):
        predicate = and_(
            scalar("equal", "tag", VARCHAR, "a"),
            scalar("less_than", "value", DOUBLE, 3.5),
        )
        rows = store.query(NativeQuery("m", columns=("value",), filter=predicate.to_dict()))
        assert sorted(r[0] for r in rows) == [1.0, 3.0]

    def test_merge_aggregates_across_segments(self, store):
        native = NativeQuery(
            "m",
            grouping=("tag",),
            aggregations=(
                agg("count", (), (), "cnt"),
                agg("sum", ("value",), (DOUBLE,), "total"),
                agg("min", ("value",), (DOUBLE,), "low"),
            ),
        )
        rows = {r[0]: r[1:] for r in store.query(native)}
        assert rows["a"] == (3, 8.0, 1.0)
        assert rows["b"] == (1, 2.0, 2.0)
        assert rows["c"] == (1, 5.0, 5.0)

    def test_scan_limit_applied_to_merged_result(self, store):
        rows = store.query(NativeQuery("m", columns=("tag",), limit=2))
        assert len(rows) == 2

    def test_per_segment_query_matches_union(self, store):
        native = NativeQuery("m", columns=("tag", "value"))
        merged = store.query(native)
        per_segment = [
            row
            for index in range(len(store.segments("m")))
            for row in store.query_segment("m", index, native)
        ]
        assert sorted(map(repr, merged)) == sorted(map(repr, per_segment))

    def test_costed_variant_charges_nothing(self, store):
        clock = store.clock
        before = clock.now_ms()
        rows, cost = store.query_segment_costed(
            "m", 0, NativeQuery("m", columns=("tag",))
        )
        assert clock.now_ms() == before
        assert cost > 0
        assert len(rows) == 3

    def test_queries_served_counter(self, store):
        served = store.queries_served
        store.query(NativeQuery("m", columns=("tag",)))
        assert store.queries_served == served + 1
