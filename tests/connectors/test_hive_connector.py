"""End-to-end tests for the Hive connector: SQL over Parquet on HDFS."""

import pytest

from repro.cache.file_list_cache import FileListCache
from repro.cache.footer_cache import FileHandleAndFooterCache
from repro.connectors.hive import HiveConnector, write_hive_partition
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, RowType, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.formats.parquet.options import ReaderOptions
from repro.metastore.metastore import HiveMetastore
from repro.planner.analyzer import Session
from repro.storage.hdfs import HdfsFileSystem

BASE_TYPE = RowType.of(
    ("city_id", BIGINT), ("driver_uuid", VARCHAR), ("status", VARCHAR)
)


def make_environment(reader="new", reader_options=None, caches=False, data_cache=None):
    metastore = HiveMetastore()
    fs = HdfsFileSystem()
    metastore.create_table(
        "rawdata",
        "trips",
        [("base", BASE_TYPE), ("fare", DOUBLE)],
        partition_keys=[("datestr", VARCHAR)],
    )
    for date, start in [("2017-03-02", 0), ("2017-03-03", 100)]:
        rows = [
            (
                {
                    "city_id": (start + i) % 20,
                    "driver_uuid": f"driver-{start + i}",
                    "status": "completed" if i % 4 else "cancelled",
                },
                float(start + i),
            )
            for i in range(100)
        ]
        write_hive_partition(
            metastore,
            fs,
            "rawdata",
            "trips",
            [date],
            [Page.from_rows([BASE_TYPE, DOUBLE], rows)],
            files=2,
            row_group_size=25,
        )
    connector = HiveConnector(
        metastore,
        fs,
        reader=reader,
        reader_options=reader_options,
        file_list_cache=FileListCache(fs) if caches else None,
        footer_cache=FileHandleAndFooterCache(fs) if caches else None,
        data_cache=data_cache,
    )
    engine = PrestoEngine(session=Session(catalog="hive", schema="rawdata"))
    engine.register_connector("hive", connector)
    return engine, connector, metastore, fs


class TestHiveQueries:
    def test_full_scan_count(self):
        engine, *_ = make_environment()
        assert engine.execute("SELECT count(*) FROM trips").rows == [(200,)]

    def test_paper_query_shape(self):
        # Section V.C: SELECT base.driver_uuid ... WHERE datestr = ... AND
        # base.city_id in (12)
        engine, *_ = make_environment()
        result = engine.execute(
            "SELECT base.driver_uuid FROM trips "
            "WHERE datestr = '2017-03-02' AND base.city_id IN (12)"
        )
        assert sorted(r[0] for r in result.rows) == ["driver-12", "driver-32", "driver-52", "driver-72", "driver-92"]

    def test_partition_pruning_reduces_splits(self):
        engine, *_ = make_environment()
        full = engine.execute("SELECT count(*) FROM trips")
        pruned = engine.execute(
            "SELECT count(*) FROM trips WHERE datestr = '2017-03-02'"
        )
        assert pruned.rows == [(100,)]
        assert pruned.stats.splits_scanned < full.stats.splits_scanned

    def test_group_by_nested_field(self):
        engine, *_ = make_environment()
        result = engine.execute(
            "SELECT base.status, count(*) FROM trips GROUP BY base.status ORDER BY 1"
        )
        assert result.rows == [("cancelled", 50), ("completed", 150)]

    def test_aggregate_over_fare(self):
        engine, *_ = make_environment()
        result = engine.execute("SELECT sum(fare) FROM trips WHERE datestr = '2017-03-03'")
        assert result.rows[0][0] == sum(float(100 + i) for i in range(100))

    def test_partition_column_in_projection(self):
        engine, *_ = make_environment()
        result = engine.execute(
            "SELECT DISTINCT datestr FROM trips ORDER BY datestr"
        )
        assert result.rows == [("2017-03-02",), ("2017-03-03",)]

    def test_old_reader_same_results(self):
        new_engine, *_ = make_environment(reader="new")
        old_engine, *_ = make_environment(reader="old")
        sql = (
            "SELECT base.driver_uuid FROM trips "
            "WHERE datestr = '2017-03-02' AND base.city_id IN (12) "
            "ORDER BY base.driver_uuid"
        )
        assert new_engine.execute(sql).rows == old_engine.execute(sql).rows

    @pytest.mark.parametrize(
        "options",
        [
            ReaderOptions.all_disabled(),
            ReaderOptions(predicate_pushdown=False),
            ReaderOptions(columnar_reads=False, vectorized=False),
        ],
    )
    def test_reader_ablation_same_results(self, options):
        engine, *_ = make_environment(reader="new", reader_options=options)
        reference, *_ = make_environment(reader="new")
        sql = "SELECT base.city_id, count(*) FROM trips GROUP BY 1 ORDER BY 1"
        assert engine.execute(sql).rows == reference.execute(sql).rows


class TestHivePushdownEffects:
    def test_new_reader_scans_fewer_rows_with_predicate(self):
        engine, *_ = make_environment(reader="new")
        result = engine.execute(
            "SELECT base.driver_uuid FROM trips WHERE base.city_id = 5"
        )
        # Reader-side filtering: engine sees only matching rows.
        assert result.stats.rows_scanned < 200
        assert len(result.rows) == 10

    def test_old_reader_scans_everything(self):
        engine, *_ = make_environment(reader="old")
        result = engine.execute(
            "SELECT base.driver_uuid FROM trips WHERE base.city_id = 5"
        )
        assert result.stats.rows_scanned == 200
        assert len(result.rows) == 10


class TestHiveCaches:
    def test_file_list_cache_reduces_listfiles(self):
        engine, connector, _, fs = make_environment(caches=True)
        engine.execute("SELECT count(*) FROM trips")
        calls_after_first = fs.namenode.stats.list_files_calls
        engine.execute("SELECT count(*) FROM trips")
        engine.execute("SELECT count(*) FROM trips")
        assert fs.namenode.stats.list_files_calls == calls_after_first

    def test_footer_cache_reduces_getfileinfo(self):
        engine, connector, _, fs = make_environment(caches=True)
        engine.execute("SELECT count(*) FROM trips")
        calls_after_first = fs.namenode.stats.get_file_info_calls
        engine.execute("SELECT count(*) FROM trips")
        assert fs.namenode.stats.get_file_info_calls == calls_after_first

    def test_data_cache_serves_repeat_scans(self):
        from repro.cache.data_cache import DataCacheConfig, TieredDataCache

        cache = TieredDataCache(DataCacheConfig())
        engine, *_ = make_environment(caches=True, data_cache=cache)
        first = engine.execute("SELECT count(*) FROM trips")
        assert first.rows == [(200,)]
        misses_after_first = cache.stats.misses
        assert misses_after_first > 0
        assert cache.stats.hits == 0
        # The repeat scan reads every segment out of the data cache.
        second = engine.execute("SELECT count(*) FROM trips")
        assert second.rows == [(200,)]
        assert cache.stats.misses == misses_after_first
        assert cache.stats.hits >= misses_after_first

    def test_open_partition_stays_fresh(self):
        engine, connector, metastore, fs = make_environment(caches=True)
        # New open partition receives streaming ingestion.
        rows = [({"city_id": 1, "driver_uuid": "d", "status": "s"}, 1.0)]
        write_hive_partition(
            metastore,
            fs,
            "rawdata",
            "trips",
            ["2017-03-04"],
            [Page.from_rows([BASE_TYPE, DOUBLE], rows)],
            sealed=False,
        )
        first = engine.execute(
            "SELECT count(*) FROM trips WHERE datestr = '2017-03-04'"
        )
        assert first.rows == [(1,)]
        # Micro-batch ingestion adds another file to the open partition.
        partition = metastore.get_partition("rawdata", "trips", ["2017-03-04"])
        from repro.formats.parquet.schema import ParquetSchema
        from repro.formats.parquet.writer_native import NativeParquetWriter

        schema = ParquetSchema([("base", BASE_TYPE), ("fare", DOUBLE)])
        blob = NativeParquetWriter(schema).write_pages(
            [Page.from_rows([BASE_TYPE, DOUBLE], rows)]
        )
        fs.create(f"{partition.location}/part-99999.parquet", blob)
        second = engine.execute(
            "SELECT count(*) FROM trips WHERE datestr = '2017-03-04'"
        )
        assert second.rows == [(2,)]  # fresh data visible despite the cache


class TestSchemaEvolutionThroughHive:
    def test_added_struct_field_reads_null_on_old_files(self):
        engine, connector, metastore, fs = make_environment()
        evolved = RowType.of(
            ("city_id", BIGINT),
            ("driver_uuid", VARCHAR),
            ("status", VARCHAR),
            ("surge", DOUBLE),  # added after the files were written
        )
        metastore.update_table_columns(
            "rawdata", "trips", [("base", evolved), ("fare", DOUBLE)]
        )
        result = engine.execute(
            "SELECT base.surge FROM trips WHERE datestr = '2017-03-02' LIMIT 5"
        )
        assert all(row == (None,) for row in result.rows)

    def test_added_top_level_column_reads_null(self):
        engine, connector, metastore, fs = make_environment()
        metastore.update_table_columns(
            "rawdata",
            "trips",
            [("base", BASE_TYPE), ("fare", DOUBLE), ("tip", DOUBLE)],
        )
        result = engine.execute("SELECT tip FROM trips LIMIT 3")
        assert all(row == (None,) for row in result.rows)

    def test_filter_on_added_field_matches_nothing(self):
        engine, connector, metastore, fs = make_environment()
        evolved = RowType.of(
            ("city_id", BIGINT),
            ("driver_uuid", VARCHAR),
            ("status", VARCHAR),
            ("surge", DOUBLE),
        )
        metastore.update_table_columns(
            "rawdata", "trips", [("base", evolved), ("fare", DOUBLE)]
        )
        result = engine.execute("SELECT count(*) FROM trips WHERE base.surge > 1.0")
        assert result.rows == [(0,)]
