"""Tests for the simulated Kafka broker and its connector."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ConnectorError
from repro.connectors.kafka import KafkaBroker, KafkaConnector
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session


@pytest.fixture
def broker():
    clock = SimulatedClock()
    broker = KafkaBroker(clock=clock)
    broker.create_topic(
        "orders", [("order_id", BIGINT), ("city", VARCHAR), ("amount", DOUBLE)]
    )
    for i in range(60):
        clock.advance(1_000)  # one message per simulated second
        broker.produce(
            "orders",
            (i, f"city{i % 4}", float(i)),
            partition=i % 3,
            timestamp_ms=int(clock.now_ms()),
        )
    return broker


@pytest.fixture
def engine(broker):
    engine = PrestoEngine(session=Session(catalog="kafka", schema="kafka"))
    engine.register_connector("kafka", KafkaConnector(broker))
    return engine


class TestBroker:
    def test_offsets_are_per_partition(self, broker):
        assert broker.fetch("orders", 0)[0].offset == 0
        assert broker.fetch("orders", 1)[0].offset == 0

    def test_fetch_offset_range(self, broker):
        records = broker.fetch("orders", 0, min_offset=5, max_offset=7)
        assert [r.offset for r in records] == [5, 6, 7]

    def test_fetch_timestamp_range_uses_binary_search(self, broker):
        records = broker.fetch("orders", 0, min_timestamp_ms=50_000)
        assert all(r.timestamp_ms >= 50_000 for r in records)

    def test_field_arity_checked(self, broker):
        with pytest.raises(ConnectorError):
            broker.produce("orders", (1, "x"))

    def test_unknown_topic(self, broker):
        with pytest.raises(ConnectorError):
            broker.fetch("nope", 0)


class TestKafkaQueries:
    def test_topic_as_table(self, engine):
        assert engine.execute("SELECT count(*) FROM orders").rows == [(60,)]

    def test_hidden_columns(self, engine):
        result = engine.execute(
            "SELECT _partition_id, _offset FROM orders WHERE order_id = 0"
        )
        assert result.rows == [(0, 0)]

    def test_aggregate_over_stream(self, engine):
        result = engine.execute(
            "SELECT city, count(*) FROM orders GROUP BY city ORDER BY city"
        )
        assert result.rows == [(f"city{i}", 15) for i in range(4)]

    def test_timestamp_pushdown_fetches_fewer_records(self, engine, broker):
        broker.records_fetched = 0
        result = engine.execute(
            "SELECT count(*) FROM orders WHERE _timestamp_ms >= 31000"
        )
        assert result.rows == [(30,)]
        # Log seek: only the tail records were consumed from the broker.
        assert broker.records_fetched == 30

    def test_offset_pushdown(self, engine, broker):
        broker.records_fetched = 0
        result = engine.execute(
            "SELECT count(*) FROM orders WHERE _offset <= 4"
        )
        assert result.rows == [(15,)]  # offsets 0..4 in each of 3 partitions
        assert broker.records_fetched == 15

    def test_mixed_predicate_partially_pushed(self, engine, broker):
        broker.records_fetched = 0
        result = engine.execute(
            "SELECT count(*) FROM orders "
            "WHERE _timestamp_ms >= 31000 AND city = 'city1'"
        )
        # Log range pushed to the broker; field filter left to the engine.
        assert broker.records_fetched == 30
        assert result.rows[0][0] < 30

    def test_tail_query_shape(self, engine):
        # "Tail the last N seconds" — the paper's near-real-time use case.
        result = engine.execute(
            "SELECT order_id FROM orders WHERE _timestamp_ms >= 58000 ORDER BY order_id"
        )
        assert [r[0] for r in result.rows] == [57, 58, 59]

    def test_join_stream_with_stream(self, engine):
        result = engine.execute(
            "SELECT count(*) FROM orders a JOIN orders b ON a.order_id = b.order_id"
        )
        assert result.rows == [(60,)]
