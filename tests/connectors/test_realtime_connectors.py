"""Tests for the Druid/Pinot stores and their connectors (section IV.B)."""

import pytest

from repro.common.clock import SimulatedClock
from repro.connectors.realtime import (
    DruidCluster,
    DruidConnector,
    NativeQuery,
    PinotCluster,
    PinotConnector,
)
from repro.connectors.spi import AggregationFunction
from repro.core.expressions import CallExpression, constant, variable
from repro.core.functions import default_registry
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.planner.plan import AggregationNode, TableScanNode


def make_druid(rows_per_segment=100, segments=4, clock=None):
    cluster = DruidCluster(nodes=10, clock=clock or SimulatedClock())
    cluster.create_datasource(
        "events",
        [("city", VARCHAR), ("status", VARCHAR), ("value", DOUBLE), ("ts", BIGINT)],
    )
    for s in range(segments):
        rows = [
            (
                f"city{(s * rows_per_segment + i) % 7}",
                "ok" if i % 3 else "err",
                float(i),
                s * rows_per_segment + i,
            )
            for i in range(rows_per_segment)
        ]
        cluster.add_segment("events", rows)
    return cluster


def make_engine(cluster, connector_cls=DruidConnector, catalog="druid"):
    engine = PrestoEngine(session=Session(catalog=catalog, schema=catalog))
    engine.register_connector(catalog, connector_cls(cluster, schema_name=catalog))
    return engine


def eq(column, value, presto_type=VARCHAR):
    handle, _ = default_registry().resolve_scalar("equal", [presto_type, presto_type])
    return CallExpression(
        "equal",
        handle,
        handle.resolved_return_type(),
        (variable(column, presto_type), constant(value, presto_type)),
    )


class TestNativeQueries:
    def test_scan_query(self):
        cluster = make_druid()
        rows = cluster.query(NativeQuery("events", columns=("city", "value")))
        assert len(rows) == 400

    def test_filtered_scan_uses_index(self):
        cluster = make_druid()
        native = NativeQuery(
            "events", columns=("value",), filter=eq("status", "err").to_dict()
        )
        rows = cluster.query(native)
        # Every 3rd row per segment has status err (i % 3 == 0).
        assert len(rows) == 4 * 34

    def test_aggregation_query(self):
        cluster = make_druid()
        handle, _ = default_registry().resolve_aggregate("count", [])
        native = NativeQuery(
            "events",
            grouping=("city",),
            aggregations=(
                AggregationFunction(handle, (), "cnt").to_dict(),
            ),
        )
        rows = cluster.query(native)
        assert sum(r[1] for r in rows) == 400
        assert len(rows) == 7

    def test_limit(self):
        cluster = make_druid()
        rows = cluster.query(NativeQuery("events", columns=("city",), limit=5))
        assert len(rows) == 5

    def test_indexed_filter_cheaper_than_scan(self):
        # Compare two filters of (near) identical selectivity — one served
        # by the inverted index, one requiring a column scan.
        clock = SimulatedClock()
        rows_per_segment = 50_000
        cluster = make_druid(rows_per_segment=rows_per_segment, clock=clock)
        start = clock.now_ms()
        cluster.query(
            NativeQuery("events", columns=("value",), filter=eq("status", "err").to_dict())
        )
        indexed_cost = clock.now_ms() - start

        handle, _ = default_registry().resolve_scalar("less_than", [DOUBLE, DOUBLE])
        scan_filter = CallExpression(
            "less_than",
            handle,
            handle.resolved_return_type(),
            (variable("value", DOUBLE), constant(rows_per_segment / 3.0, DOUBLE)),
        )
        start = clock.now_ms()
        cluster.query(
            NativeQuery("events", columns=("value",), filter=scan_filter.to_dict())
        )
        scan_cost = clock.now_ms() - start
        assert indexed_cost < scan_cost


class TestConnectorQueries:
    def test_scan_through_engine(self):
        engine = make_engine(make_druid())
        assert engine.execute("SELECT count(*) FROM events").rows == [(400,)]

    def test_filter_matches_native(self):
        cluster = make_druid()
        engine = make_engine(cluster)
        via_presto = engine.execute(
            "SELECT value FROM events WHERE status = 'err' ORDER BY value"
        ).rows
        native = sorted(
            cluster.query(
                NativeQuery("events", columns=("value",), filter=eq("status", "err").to_dict())
            )
        )
        assert via_presto == native

    def test_aggregation_pushdown_result_correct(self):
        cluster = make_druid()
        engine = make_engine(cluster)
        result = engine.execute(
            "SELECT city, count(*), sum(value) FROM events GROUP BY city ORDER BY city"
        )
        assert len(result.rows) == 7
        assert sum(r[1] for r in result.rows) == 400

    def test_aggregation_pushdown_in_plan(self):
        engine = make_engine(make_druid())
        plan = engine.plan("SELECT city, max(value) FROM events GROUP BY city")
        scans = [n for n in plan.walk() if isinstance(n, TableScanNode)]
        assert len(scans) == 1
        assert scans[0].handle.aggregation is not None
        aggs = [n for n in plan.walk() if isinstance(n, AggregationNode)]
        assert len(aggs) == 1
        assert aggs[0].step == "FINAL"  # engine merges per-segment partials

    def test_aggregation_pushdown_streams_fewer_rows(self):
        cluster = make_druid()
        engine = make_engine(cluster)
        pushed = engine.execute("SELECT city, count(*) FROM events GROUP BY city")
        assert pushed.stats.rows_scanned <= 7 * 4  # ≤ groups × segments

        from repro.planner.optimizer import Optimizer, OptimizerOptions

        engine._optimizer = Optimizer(
            engine.catalog, options=OptimizerOptions(aggregation_pushdown=False)
        )
        unpushed = engine.execute("SELECT city, count(*) FROM events GROUP BY city")
        assert unpushed.stats.rows_scanned == 400
        assert pushed.rows == unpushed.rows or sorted(pushed.rows) == sorted(unpushed.rows)

    def test_avg_not_pushed_down(self):
        # avg partials don't merge losslessly from finalized values.
        engine = make_engine(make_druid())
        plan = engine.plan("SELECT city, avg(value) FROM events GROUP BY city")
        scans = [n for n in plan.walk() if isinstance(n, TableScanNode)]
        assert scans[0].handle.aggregation is None

    def test_limit_pushdown(self):
        engine = make_engine(make_druid())
        plan = engine.plan("SELECT city FROM events LIMIT 3")
        scans = [n for n in plan.walk() if isinstance(n, TableScanNode)]
        assert scans[0].handle.limit == 3
        assert len(engine.execute("SELECT city FROM events LIMIT 3")) == 3

    def test_join_druid_with_druid(self):
        # "bridge the gap between sub-second query latency and full SQL":
        # joins run in Presto on top of connector streams.
        cluster = make_druid()
        engine = make_engine(cluster)
        result = engine.execute(
            "SELECT a.city, count(*) FROM events a JOIN events b ON a.ts = b.ts "
            "GROUP BY a.city ORDER BY a.city"
        )
        assert sum(r[1] for r in result.rows) == 400


class TestPinot:
    def test_pinot_connector_works(self):
        cluster = PinotCluster(nodes=10)
        cluster.create_datasource("metrics", [("name", VARCHAR), ("value", DOUBLE)])
        cluster.add_segment("metrics", [("m1", 1.0), ("m2", 2.0), ("m1", 3.0)])
        engine = make_engine(cluster, PinotConnector, catalog="pinot")
        result = engine.execute(
            "SELECT name, sum(value) FROM metrics GROUP BY name ORDER BY name"
        )
        assert result.rows == [("m1", 4.0), ("m2", 2.0)]

    def test_pinot_faster_aggregation_profile(self):
        assert PinotCluster().cost.aggregate_ns_per_value < DruidCluster().cost.aggregate_ns_per_value
