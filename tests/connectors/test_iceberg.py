"""Tests for the update-able data lake (Iceberg-style) connector."""

import pytest

from repro.common.errors import ConnectorError, SemanticError
from repro.connectors.lakehouse import IcebergConnector, IcebergTable
from repro.core.expressions import CallExpression, constant, variable
from repro.core.functions import default_registry
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.storage.hdfs import HdfsFileSystem


def eq(column, value, presto_type=VARCHAR):
    handle, _ = default_registry().resolve_scalar("equal", [presto_type, presto_type])
    return CallExpression(
        "equal",
        handle,
        handle.resolved_return_type(),
        (variable(column, presto_type), constant(value, presto_type)),
    )


@pytest.fixture
def table():
    fs = HdfsFileSystem()
    table = IcebergTable(
        fs,
        "/lake/orders",
        [("order_id", BIGINT), ("status", VARCHAR), ("amount", DOUBLE)],
    )
    table.append([(1, "open", 10.0), (2, "open", 20.0)])
    table.append([(3, "shipped", 30.0)])
    return table


@pytest.fixture
def engine(table):
    connector = IcebergConnector()
    connector.register_table("orders", table)
    engine = PrestoEngine(session=Session(catalog="iceberg", schema="lake"))
    engine.register_connector("iceberg", connector)
    return engine


class TestTableFormat:
    def test_append_creates_snapshots(self, table):
        assert table.current_snapshot().snapshot_id == 2
        assert table.current_snapshot().row_count == 3
        assert [s.operation for s in table.history()] == ["create", "append", "append"]

    def test_append_does_not_rewrite_existing_files(self, table):
        files_before = set(f.path for f in table.snapshot(1).files)
        assert files_before <= set(f.path for f in table.current_snapshot().files)

    def test_delete_where_rewrites_only_affected_files(self, table):
        untouched = table.snapshot(2).files[1]  # the shipped-order file
        table.delete_where(eq("status", "open"))
        current = table.current_snapshot()
        assert current.row_count == 1
        assert untouched in current.files  # copy-on-write spared it

    def test_update_where(self, table):
        table.update_where(
            eq("order_id", 2, BIGINT),
            lambda row: (row[0], "cancelled", row[2]),
        )
        rows = [
            r
            for f in table.current_snapshot().files
            for r in table.read_file_rows(f)
        ]
        assert (2, "cancelled", 20.0) in rows
        assert (1, "open", 10.0) in rows  # unmatched rows preserved

    def test_old_snapshots_remain_readable(self, table):
        table.delete_where(eq("status", "open"))
        old_snapshot, old_files = table.scan_files(snapshot_id=2)
        assert old_snapshot.row_count == 3  # time travel sees deleted rows

    def test_unknown_snapshot(self, table):
        with pytest.raises(ConnectorError):
            table.snapshot(99)


class TestIcebergQueries:
    def test_basic_scan(self, engine):
        assert engine.execute("SELECT count(*) FROM orders").rows == [(3,)]

    def test_filter_pushdown(self, engine):
        result = engine.execute("SELECT order_id FROM orders WHERE status = 'open'")
        assert sorted(r[0] for r in result.rows) == [1, 2]
        assert result.stats.rows_scanned == 2  # filtered in the reader

    def test_query_after_delete(self, engine, table):
        table.delete_where(eq("status", "open"))
        assert engine.execute("SELECT count(*) FROM orders").rows == [(1,)]

    def test_query_after_update(self, engine, table):
        table.update_where(
            eq("status", "open"), lambda row: (row[0], row[1], row[2] + 5.0)
        )
        result = engine.execute("SELECT sum(amount) FROM orders")
        assert result.rows == [(70.0,)]

    def test_time_travel_via_snapshot_suffix(self, engine, table):
        table.delete_where(eq("status", "open"))
        current = engine.execute("SELECT count(*) FROM orders")
        historical = engine.execute('SELECT count(*) FROM "orders$snapshot=2"')
        assert current.rows == [(1,)]
        assert historical.rows == [(3,)]

    def test_snapshot_isolation_for_repeat_queries(self, engine, table):
        # A dashboard pinned to snapshot 2 keeps its results stable while
        # the table evolves underneath.
        pinned_sql = 'SELECT sum(amount) FROM "orders$snapshot=2"'
        before = engine.execute(pinned_sql)
        table.append([(4, "open", 100.0)])
        table.delete_where(eq("order_id", 1, BIGINT))
        after = engine.execute(pinned_sql)
        assert before.rows == after.rows == [(60.0,)]

    def test_bad_snapshot_fails_at_analysis(self, engine):
        with pytest.raises((SemanticError, ConnectorError)):
            engine.execute('SELECT count(*) FROM "orders$snapshot=42"')

    def test_join_current_with_history(self, engine, table):
        table.update_where(
            eq("status", "open"), lambda row: (row[0], "closed", row[2])
        )
        result = engine.execute(
            "SELECT count(*) FROM orders o "
            'JOIN "orders$snapshot=2" h ON o.order_id = h.order_id '
            "WHERE o.status <> h.status"
        )
        assert result.rows == [(2,)]  # the two rows the update touched
