"""Tests for the MySQL and Elasticsearch connectors, incl. federation joins."""

import pytest

from repro.connectors.elasticsearch import ElasticsearchCluster, ElasticsearchConnector
from repro.connectors.mysql import MySqlConnector, MySqlServer
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.planner.plan import FilterNode, TableScanNode


def make_mysql():
    server = MySqlServer()
    server.create_table(
        "shop",
        "users",
        [("id", BIGINT), ("name", VARCHAR), ("city", VARCHAR)],
        [(1, "ann", "sf"), (2, "bob", "nyc"), (3, "cat", "sf")],
    )
    return server


class TestMySqlConnector:
    def setup_method(self):
        self.server = make_mysql()
        self.engine = PrestoEngine(session=Session(catalog="mysql", schema="shop"))
        self.engine.register_connector("mysql", MySqlConnector(self.server))

    def test_basic_query(self):
        result = self.engine.execute("SELECT name FROM users ORDER BY name")
        assert [r[0] for r in result.rows] == ["ann", "bob", "cat"]

    def test_qualified_name(self):
        result = self.engine.execute("SELECT count(*) FROM mysql.shop.users")
        assert result.rows == [(3,)]

    def test_filter_pushed_to_server(self):
        result = self.engine.execute("SELECT name FROM users WHERE city = 'sf'")
        assert sorted(r[0] for r in result.rows) == ["ann", "cat"]
        # Server returned only matching rows; engine scanned 2, not 3.
        assert result.stats.rows_scanned == 2
        assert self.server.stats.rows_returned == 2

    def test_no_engine_side_filter_remains(self):
        plan = self.engine.plan("SELECT name FROM users WHERE city = 'sf'")
        assert not [n for n in plan.walk() if isinstance(n, FilterNode)]

    def test_limit_pushdown(self):
        result = self.engine.execute("SELECT name FROM users LIMIT 1")
        assert self.server.stats.rows_returned == 1

    def test_insert_visible(self):
        self.server.insert("shop", "users", [(4, "dee", "chi")])
        assert self.engine.execute("SELECT count(*) FROM users").rows == [(4,)]


class TestElasticsearchConnector:
    def setup_method(self):
        self.cluster = ElasticsearchCluster(shards_per_index=2)
        self.cluster.create_index(
            "logs", [("service", VARCHAR), ("level", VARCHAR), ("latency", DOUBLE)]
        )
        self.cluster.index_documents(
            "logs",
            [
                {"service": "api", "level": "error", "latency": 120.0},
                {"service": "api", "level": "info", "latency": 10.0},
                {"service": "web", "level": "error", "latency": 300.0},
                {"service": "web", "level": "info", "latency": 20.0},
            ],
        )
        self.engine = PrestoEngine(session=Session(catalog="es", schema="default"))
        self.engine.register_connector("es", ElasticsearchConnector(self.cluster))

    def test_index_as_table(self):
        result = self.engine.execute("SELECT count(*) FROM logs")
        assert result.rows == [(4,)]

    def test_term_query_pushdown(self):
        result = self.engine.execute(
            "SELECT service FROM logs WHERE level = 'error' ORDER BY service"
        )
        assert [r[0] for r in result.rows] == ["api", "web"]
        assert result.stats.rows_scanned == 2  # only hits streamed

    def test_range_pushdown_inclusive(self):
        result = self.engine.execute(
            "SELECT service FROM logs WHERE latency >= 120"
        )
        assert sorted(r[0] for r in result.rows) == ["api", "web"]

    def test_strict_range_stays_in_engine(self):
        plan = self.engine.plan("SELECT service FROM logs WHERE latency > 120")
        filters = [n for n in plan.walk() if isinstance(n, FilterNode)]
        assert filters  # strict bound evaluated by the engine
        result = self.engine.execute("SELECT service FROM logs WHERE latency > 120")
        assert [r[0] for r in result.rows] == ["web"]

    def test_aggregation_over_documents(self):
        result = self.engine.execute(
            "SELECT level, count(*) FROM logs GROUP BY level ORDER BY level"
        )
        assert result.rows == [("error", 2), ("info", 2)]


class TestUnifiedSqlWithoutDataCopy:
    """Section IV: join data across systems with no copy pipelines."""

    def test_join_mysql_with_elasticsearch(self):
        server = make_mysql()
        cluster = ElasticsearchCluster()
        cluster.create_index("events", [("user_city", VARCHAR), ("clicks", BIGINT)])
        cluster.index_documents(
            "events",
            [
                {"user_city": "sf", "clicks": 10},
                {"user_city": "sf", "clicks": 5},
                {"user_city": "nyc", "clicks": 7},
            ],
        )
        engine = PrestoEngine(session=Session(catalog="mysql", schema="shop"))
        engine.register_connector("mysql", MySqlConnector(server))
        engine.register_connector("es", ElasticsearchConnector(cluster))
        result = engine.execute(
            "SELECT u.name, sum(e.clicks) FROM mysql.shop.users u "
            "JOIN es.default.events e ON u.city = e.user_city "
            "GROUP BY u.name ORDER BY u.name"
        )
        assert result.rows == [("ann", 15), ("bob", 7), ("cat", 15)]
