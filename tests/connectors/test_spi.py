"""Tests for the connector SPI primitives."""

import pytest

from repro.common.errors import ConnectorError
from repro.connectors.memory import MemoryConnector
from repro.connectors.spi import (
    AggregationFunction,
    Catalog,
    ColumnMetadata,
    ConnectorSplit,
    ConnectorTableHandle,
    TableMetadata,
)
from repro.core.functions import default_registry
from repro.core.types import BIGINT, VARCHAR


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        connector = MemoryConnector()
        catalog.register("Mem", connector)
        assert catalog.connector("mem") is connector  # case-insensitive
        assert catalog.has_catalog("MEM")
        assert catalog.catalog_names() == ["mem"]

    def test_unknown_catalog(self):
        with pytest.raises(ConnectorError):
            Catalog().connector("nope")


class TestTableHandle:
    def test_with_updates_immutably(self):
        handle = ConnectorTableHandle("s", "t")
        limited = handle.with_(limit=10)
        assert handle.limit is None
        assert limited.limit == 10
        assert limited.schema_name == "s"

    def test_stacked_pushdowns(self):
        handle = (
            ConnectorTableHandle("s", "t")
            .with_(limit=5)
            .with_(projected_columns=("a", "b.c"))
            .with_(constraint={"@type": "constant", "value": True, "type": "boolean"})
        )
        assert handle.limit == 5
        assert handle.projected_columns == ("a", "b.c")
        assert handle.constraint is not None


class TestTableMetadata:
    def test_column_lookup(self):
        metadata = TableMetadata(
            "s", "t", (ColumnMetadata("a", BIGINT), ColumnMetadata("b", VARCHAR))
        )
        assert metadata.column("b").type is VARCHAR
        assert metadata.column_names() == ["a", "b"]

    def test_missing_column(self):
        metadata = TableMetadata("s", "t", (ColumnMetadata("a", BIGINT),))
        with pytest.raises(ConnectorError):
            metadata.column("zzz")


class TestConnectorSplit:
    def test_info_dict(self):
        split = ConnectorSplit("id-1", info=(("path", "/x"), ("n", 3)))
        assert split.info_dict() == {"path": "/x", "n": 3}

    def test_addresses_default_empty(self):
        assert ConnectorSplit("id-2").addresses == ()


class TestAggregationFunction:
    def test_serialization_round_trip(self):
        handle, _ = default_registry().resolve_aggregate("sum", [BIGINT])
        fn = AggregationFunction(handle, ("v",), "total")
        restored = AggregationFunction.from_dict(fn.to_dict())
        assert restored == fn
        assert restored.function_handle.name == "sum"


class TestDefaultPushdownDeclines:
    def test_base_metadata_declines_everything(self):
        from repro.connectors.spi import ConnectorMetadata
        from repro.core.expressions import constant

        metadata = ConnectorMetadata()
        handle = ConnectorTableHandle("s", "t")
        from repro.core.types import BOOLEAN

        assert metadata.apply_filter(handle, constant(True, BOOLEAN)) is None
        assert metadata.apply_limit(handle, 10) is None
        assert metadata.apply_projection(handle, ["a"]) is None
        assert metadata.apply_aggregation(handle, [], []) is None
