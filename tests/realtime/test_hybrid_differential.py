"""Differential oracle: hybrid queries vs batch replay of the full log.

Every read surface of the streaming lakehouse — hybrid scans, pinned
time travel, substituted materialized views — must return exactly what a
batch engine returns over the *fully replayed* Kafka log cut at the same
watermark (``execute_direct`` over a memory table: the repo's standing
oracle).  And it must keep doing so under 10% task/split fault rates,
after seeded pipeline crash schedules, and with queries running through
the concurrent cluster event loop while ingestion and compaction keep
stepping underneath them.
"""

import pytest

from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.cluster import PrestoClusterSim
from repro.execution.faults import FaultInjector
from repro.realtime import (
    StreamingLakehouse,
    ViewAggregate,
    Watermark,
    oracle_engine,
    watermark_table_name,
)

FIELDS = [("order_id", BIGINT), ("city", VARCHAR), ("amount", DOUBLE)]

# Each template is formatted with the table name to query; the oracle
# runs the same template against the replayed log.
TEMPLATES = [
    'SELECT order_id, city, amount FROM "{table}" ORDER BY order_id',
    'SELECT city, count(*), sum(amount) FROM "{table}" GROUP BY city ORDER BY city',
    'SELECT count(*) FROM "{table}" WHERE amount > 5.0',
    'SELECT order_id, amount FROM "{table}" WHERE city = \'c1\' ORDER BY order_id',
    'SELECT max(_offset), count(*) FROM "{table}" WHERE _partition_id = 0',
]


def normalize(row):
    # Partial aggregates merge in a different order than the oracle's
    # sequential fold; compare floats at 10 significant digits (the
    # differential suites' standing convention).
    return tuple(
        float(f"{value:.10g}") if isinstance(value, float) else value for value in row
    )


def normalized(rows):
    return [normalize(row) for row in rows]


def build_lakehouse(fault_injector=None, produce=320):
    lh = StreamingLakehouse(
        fields=FIELDS,
        poll_interval_ms=150,
        compaction_interval_ms=900,
        fault_injector=fault_injector,
    )
    for i in range(produce):
        lh.produce((i, f"c{i % 4}", i / 7), timestamp_ms=i * 4)
    lh.pipeline.run_for(2000)
    # A second wave that stays (at least partly) in the tail.
    for i in range(produce, produce + 60):
        lh.produce((i, f"c{i % 4}", i / 7), timestamp_ms=2100 + i)
    lh.pipeline.run_for(300)
    return lh


def assert_matches_oracle(lh, engine, watermark, table_name):
    oracle = oracle_engine(lh.broker, lh.topic, watermark)
    for template in TEMPLATES:
        hybrid = engine.execute(template.format(table=table_name))
        expected = oracle.execute_direct(template.format(table=lh.topic))
        assert normalized(hybrid.rows) == normalized(expected.rows), template


class TestHybridScan:
    def test_fresh_scan_matches_oracle(self):
        lh = build_lakehouse()
        assert lh.table.tail_row_count() > 0, "tail empty; hybrid path untested"
        assert lh.table.sealed_watermark().total() > 0, "lake empty"
        assert_matches_oracle(lh, lh.make_engine(), lh.table.committed, lh.topic)

    def test_pinned_scan_matches_oracle(self):
        lh = build_lakehouse()
        pinned = watermark_table_name(lh.topic, lh.table.committed)
        assert_matches_oracle(lh, lh.make_engine(), lh.table.committed, pinned)


class TestTimeTravel:
    def test_read_at_sealed_watermark(self):
        lh = build_lakehouse()
        sealed = lh.table.sealed_watermark()
        name = watermark_table_name(lh.topic, sealed)
        assert_matches_oracle(lh, lh.make_engine(), sealed, name)

    def test_read_below_sealed_uses_lake_cut(self):
        lh = build_lakehouse()
        sealed = lh.table.sealed_watermark()
        halfway = Watermark.of(*(offset // 2 for offset in sealed.offsets))
        assert sealed.dominates(halfway) and halfway != sealed
        name = watermark_table_name(lh.topic, halfway)
        assert_matches_oracle(lh, lh.make_engine(), halfway, name)

    def test_future_watermark_rejected(self):
        lh = build_lakehouse()
        future = lh.table.committed.with_offset(
            0, lh.table.committed.offset(0) + 10
        )
        engine = lh.make_engine()
        with pytest.raises(Exception, match="future watermark"):
            engine.execute(
                f'SELECT * FROM "{watermark_table_name(lh.topic, future)}"'
            )


class TestMaterializedViews:
    def test_substituted_view_matches_oracle(self):
        lh = build_lakehouse()
        view = lh.create_materialized_view(
            "city_stats",
            ["city"],
            [
                ViewAggregate("count", None, "n"),
                ViewAggregate("sum", "amount", "total"),
            ],
        )
        view.refresh()
        engine = lh.make_engine()
        sql = 'SELECT city, count(*), sum(amount) FROM "{table}" GROUP BY city ORDER BY city'
        plan = "\n".join(
            r[0] for r in engine.execute("EXPLAIN " + sql.format(table=lh.topic)).rows
        )
        assert "city_stats" in plan, f"view not substituted:\n{plan}"
        oracle = oracle_engine(lh.broker, lh.topic, view.watermark)
        assert normalized(engine.execute(sql.format(table=lh.topic)).rows) == normalized(
            oracle.execute_direct(sql.format(table=lh.topic)).rows
        )

    def test_incremental_refresh_spans_compactions(self):
        # Refresh deltas straddle seal boundaries: fold some rows from the
        # tail, compact them into the lake, fold the next delta, repeat.
        lh = StreamingLakehouse(
            fields=FIELDS, poll_interval_ms=150, compaction_interval_ms=900
        )
        view = lh.create_materialized_view(
            "city_stats", ["city"], [ViewAggregate("count", None, "n")]
        )
        for wave in range(4):
            for i in range(wave * 50, (wave + 1) * 50):
                lh.produce((i, f"c{i % 4}", i / 7), timestamp_ms=i * 4)
            lh.pipeline.run_for(700 if wave % 2 == 0 else 1100)
            view.refresh()
        sql = 'SELECT city, count(*) FROM "{table}" GROUP BY city ORDER BY city'
        oracle = oracle_engine(lh.broker, lh.topic, view.watermark)
        expected = oracle.execute_direct(sql.format(table=lh.topic)).rows
        pinned = watermark_table_name(lh.topic, view.watermark)
        engine = lh.make_engine()
        plan = "\n".join(
            r[0] for r in engine.execute("EXPLAIN " + sql.format(table=pinned)).rows
        )
        assert "city_stats" in plan
        assert normalized(engine.execute(sql.format(table=pinned)).rows) == normalized(
            expected
        )


class TestUnderEngineFaults:
    def test_scan_matches_oracle_at_ten_percent_fault_rates(self):
        lh = build_lakehouse()
        injector = FaultInjector(seed=11, task_failure_rate=0.1, split_failure_rate=0.1)
        engine = lh.make_engine(fault_injector=injector)
        pinned = watermark_table_name(lh.topic, lh.table.committed)
        oracle = oracle_engine(lh.broker, lh.topic, lh.table.committed)
        retried = 0
        for template in TEMPLATES:
            result = engine.execute(template.format(table=pinned))
            retried += result.stats.tasks_retried
            assert normalized(result.rows) == normalized(
                oracle.execute_direct(template.format(table=lh.topic)).rows
            ), template
        assert retried > 0, "no retries happened; fault test is vacuous"

    def test_scan_matches_oracle_after_pipeline_crash_schedule(self):
        injector = FaultInjector(seed=3, pipeline_failure_rate=0.3)
        lh = build_lakehouse(fault_injector=injector)
        assert lh.pipeline.crashes > 0, "no crashes injected; test is vacuous"
        assert_matches_oracle(lh, lh.make_engine(), lh.table.committed, lh.topic)


class TestConcurrentWithLivePipeline:
    def test_pinned_queries_stable_while_pipeline_advances(self):
        """Queries run through the cluster loop *while* the pipeline steps.

        Tail splits pin their rows at split-generation time, so even with
        compaction sealing and pruning the very segments a query reads,
        every pinned-watermark query returns exactly the oracle's answer
        at its watermark.
        """
        lh = build_lakehouse()
        watermark = lh.table.committed
        pinned = watermark_table_name(lh.topic, watermark)
        engine = lh.make_engine()
        cluster = PrestoClusterSim(workers=4, slots_per_worker=2, clock=lh.clock)

        # Keep producing so the pipeline has real work mid-flight.
        for i in range(1000, 1120):
            lh.produce((i, f"c{i % 4}", i / 7), timestamp_ms=4000 + i)

        deadline = lh.clock.now_ms() + 3000

        def drive_pipeline():
            due = lh.pipeline.next_due_ms()
            if due > deadline:
                return
            def fire():
                lh.pipeline.step()
                drive_pipeline()
            cluster._at(due, fire)

        drive_pipeline()
        handles = [
            cluster.submit_engine_handle(engine, template.format(table=pinned))[0]
            for template in TEMPLATES
        ]
        sealed_before = lh.table.sealed_watermark()
        cluster.run_until_idle()

        assert cluster.max_concurrent_running() > 1, "nothing overlapped"
        assert lh.table.committed.total() > watermark.total(), (
            "pipeline did not advance during the queries"
        )
        assert lh.table.sealed_watermark() != sealed_before or (
            lh.compactor.snapshots_committed > 0
        )
        oracle = oracle_engine(lh.broker, lh.topic, watermark)
        for handle, template in zip(handles, TEMPLATES):
            assert normalized(handle.result().rows) == normalized(
                oracle.execute_direct(template.format(table=lh.topic)).rows
            ), template
