"""Unit tests for watermarks, the hybrid table, and the pipeline."""

import pytest

from repro.common.errors import ConnectorError
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.faults import FaultInjector
from repro.realtime import StreamingLakehouse, Watermark, assert_exactly_once

FIELDS = [("order_id", BIGINT), ("city", VARCHAR), ("amount", DOUBLE)]


def make_lakehouse(**kwargs):
    kwargs.setdefault("fields", FIELDS)
    kwargs.setdefault("poll_interval_ms", 200)
    kwargs.setdefault("compaction_interval_ms", 1000)
    return StreamingLakehouse(**kwargs)


def produce_n(lh, n, start=0):
    for i in range(start, start + n):
        lh.produce((i, f"c{i % 4}", i / 10), timestamp_ms=i * 3)


class TestWatermark:
    def test_covers_is_exclusive_high(self):
        wm = Watermark.of(5, 0, 2)
        assert wm.covers(0, 4)
        assert not wm.covers(0, 5)
        assert not wm.covers(1, 0)
        assert wm.covers(2, 1)

    def test_encode_decode_round_trip(self):
        wm = Watermark.of(5, 7, 3)
        assert wm.encode() == "5-7-3"
        assert Watermark.decode("5-7-3") == wm
        with pytest.raises(ValueError):
            Watermark.decode("5-x-3")

    def test_algebra(self):
        a, b = Watermark.of(5, 2), Watermark.of(3, 4)
        assert a.meet(b) == Watermark.of(3, 2)
        assert a.join(b) == Watermark.of(5, 4)
        assert a.join(b).dominates(a) and a.join(b).dominates(b)
        assert a.dominates(a.meet(b)) and b.dominates(a.meet(b))
        assert not a.dominates(b)

    def test_cannot_move_backwards(self):
        with pytest.raises(ValueError):
            Watermark.of(5, 2).with_offset(0, 4)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Watermark.of(1, 2).meet(Watermark.of(1, 2, 3))


class TestIngestion:
    def test_poll_ingests_and_commits(self):
        lh = make_lakehouse()
        produce_n(lh, 30)
        lh.pipeline.run_for(250)  # one poll
        assert lh.table.committed.total() == 30
        assert lh.table.tail_row_count() == 30
        assert lh.pipeline.records_ingested == 30

    def test_committed_rows_partition_the_log(self):
        lh = make_lakehouse()
        produce_n(lh, 50)
        lh.pipeline.run_for(250)
        assert_exactly_once(lh.connector, lh.broker, lh.topic)

    def test_append_gap_rejected(self):
        lh = make_lakehouse()
        produce_n(lh, 10)
        records = lh.broker.log_records(lh.topic, 0)
        with pytest.raises(ConnectorError, match="append gap"):
            lh.table.append_tail(0, records[1:])

    def test_redelivery_is_idempotent(self):
        lh = make_lakehouse()
        produce_n(lh, 20)
        lh.pipeline.run_for(250)
        committed = lh.table.committed
        # Re-deliver the whole log: already-committed records are dropped.
        for p in range(lh.table.partitions):
            lh.table.append_tail(p, lh.broker.log_records(lh.topic, p))
        assert lh.table.committed == committed
        assert lh.table.tail_row_count() == committed.total()


class TestCompaction:
    def test_compaction_moves_rows_to_the_lake(self):
        lh = make_lakehouse()
        produce_n(lh, 40)
        lh.pipeline.run_for(1200)  # past one compaction boundary
        sealed = lh.table.sealed_watermark()
        assert sealed.total() == 40
        assert lh.table.tail_row_count() == 0
        assert lh.lake.current_snapshot().row_count == 40
        assert_exactly_once(lh.connector, lh.broker, lh.topic)

    def test_sealed_watermark_is_in_snapshot_properties(self):
        lh = make_lakehouse()
        produce_n(lh, 40)
        lh.pipeline.run_for(1200)
        properties = lh.lake.current_snapshot().properties_dict()
        assert properties["sealed-watermark"] == lh.table.committed.encode()
        assert int(properties["max-sealed-timestamp-ms"]) == 39 * 3

    def test_empty_cycle_commits_nothing(self):
        lh = make_lakehouse()
        produce_n(lh, 10)
        lh.pipeline.run_for(1200)
        snapshots = len(lh.lake.history())
        lh.pipeline.run_for(2000)  # two more cycles, nothing new to seal
        assert len(lh.lake.history()) == snapshots

    def test_hybrid_read_spans_lake_and_tail(self):
        lh = make_lakehouse()
        produce_n(lh, 40)
        lh.pipeline.run_for(1200)  # 40 rows sealed
        produce_n(lh, 15, start=40)
        lh.pipeline.run_for(250)  # ingested but not compacted
        assert lh.table.sealed_watermark().total() == 40
        assert lh.table.tail_row_count() == 15
        assert_exactly_once(lh.connector, lh.broker, lh.topic)


class TestRecovery:
    def test_recover_drops_uncommitted_appends(self):
        lh = make_lakehouse()
        produce_n(lh, 12)
        records = lh.broker.log_records(lh.topic, 0)
        lh.table.append_tail(0, records)  # staged, never committed
        lh.table.recover()
        assert lh.table.tail_row_count() == 0
        assert lh.table.committed == Watermark.zero(3)

    def test_recover_prunes_already_sealed_segments(self):
        lh = make_lakehouse()
        produce_n(lh, 30)
        lh.pipeline.run_for(250)
        # Seal manually but crash before the prune: compact with a
        # fault-free compactor, then re-add what pruning removed.
        rows_before = lh.table.tail_row_count()
        lh.compactor.compact()
        assert lh.table.tail_row_count() == 0  # compact pruned
        produce_n(lh, 5, start=30)
        lh.pipeline.run_for(250)
        lh.table.recover()  # idempotent with nothing stale
        assert lh.table.tail_row_count() == 5
        assert_exactly_once(lh.connector, lh.broker, lh.topic)

    def test_lose_tail_rewinds_to_sealed_and_replays(self):
        lh = make_lakehouse()
        produce_n(lh, 40)
        lh.pipeline.run_for(1200)  # sealed: 40
        produce_n(lh, 20, start=40)
        lh.pipeline.run_for(250)  # tail: 20
        lh.table.lose_tail()
        assert lh.table.tail_row_count() == 0
        assert lh.table.committed == lh.table.sealed_watermark()
        # Replay from the durable log restores everything.
        lh.pipeline.run_for(250)
        assert lh.table.committed.total() == 60
        assert_exactly_once(lh.connector, lh.broker, lh.topic)

    def test_crashes_are_recovered_and_counted(self):
        injector = FaultInjector(seed=1, pipeline_failure_rate=0.5)
        lh = make_lakehouse(fault_injector=injector)
        produce_n(lh, 60)
        lh.pipeline.run_for(3000)
        assert lh.pipeline.crashes > 0
        assert lh.pipeline.crashes == injector.pipeline_crashes
        assert_exactly_once(lh.connector, lh.broker, lh.topic)

    def test_restart_charges_downtime(self):
        injector = FaultInjector(seed=1, pipeline_failure_rate=1.0)
        lh = make_lakehouse(fault_injector=injector)
        produce_n(lh, 10)
        before = lh.clock.now_ms()
        lh.pipeline.step()  # poll crashes, restart costs 500ms
        assert lh.clock.now_ms() >= before + lh.pipeline.restart_ms
        assert lh.table.tail_row_count() == 0  # nothing committed


class TestObservability:
    def test_gauges_and_counters(self):
        lh = make_lakehouse()
        produce_n(lh, 40)
        lh.pipeline.run_for(1200)
        snapshot = lh.metrics.snapshot()
        assert lh.metrics.total("streaming_records_ingested_total") == 40
        assert lh.metrics.total("streaming_compactions_total") >= 1
        assert lh.metrics.total("streaming_rows_sealed_total") == 40
        gauges = {name: series for name, series in snapshot["gauges"].items()}
        assert gauges["streaming_sealed_rows"][0]["value"] == 40
        assert gauges["streaming_consumer_lag_rows"][0]["value"] == 0

    def test_pipeline_spans(self):
        lh = make_lakehouse()
        produce_n(lh, 40)
        lh.pipeline.run_for(1200)
        names = {span.name for span in lh.pipeline_trace.spans}
        assert "ingest.poll" in names
        assert "compact.seal" in names

    def test_crash_spans(self):
        injector = FaultInjector(seed=1, pipeline_failure_rate=1.0)
        lh = make_lakehouse(fault_injector=injector)
        produce_n(lh, 10)
        lh.pipeline.step()
        assert lh.pipeline_trace.find("pipeline.restart")
