"""Property suite: exactly-once visibility under arbitrary crash schedules.

Hypothesis drives random event streams through random interleavings of
produce / poll / compact / lose-tail operations, under seeded pipeline
fault injection (including high crash rates), and asserts after every
operation that:

- the rows visible through the hybrid connector at the committed
  watermark are *exactly* the log prefix below it — as a multiset, so a
  duplicated row fails as loudly as a dropped one;
- the same holds at every lower watermark via pinned time-travel reads;
- the tail and the sealed snapshots *partition* the visible log: lake
  rows live strictly below the sealed watermark (each exactly once),
  committed tail rows live exactly in [sealed, committed).
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.common.errors import InjectedFaultError
from repro.core.types import BIGINT, VARCHAR
from repro.execution.faults import FaultInjector
from repro.realtime import (
    StreamingLakehouse,
    Watermark,
    expected_log_keys,
    visible_log_keys,
    watermark_table_name,
)

FIELDS = [("k", BIGINT), ("tag", VARCHAR)]

# One schedule step: produce a few records, run a poll, run a compaction
# cycle, or lose the whole in-memory tail (node loss).
operations = st.lists(
    st.one_of(
        st.integers(min_value=1, max_value=7).map(lambda n: ("produce", n)),
        st.just(("poll", 0)),
        st.just(("compact", 0)),
        st.just(("lose_tail", 0)),
    ),
    min_size=3,
    max_size=14,
)


def run_schedule(schedule, partitions, seed, failure_rate):
    injector = FaultInjector(seed=seed, pipeline_failure_rate=failure_rate)
    lh = StreamingLakehouse(
        fields=FIELDS,
        partitions=partitions,
        fault_injector=injector,
        poll_interval_ms=100,
        compaction_interval_ms=100_000,  # compaction only when scheduled
    )
    produced = 0
    for operation, argument in schedule:
        if operation == "produce":
            for _ in range(argument):
                lh.produce(
                    (produced, f"t{produced % 3}"),
                    partition=produced % partitions,
                    timestamp_ms=produced * 5,
                )
                produced += 1
        elif operation == "poll":
            try:
                lh.pipeline.poll()
            except InjectedFaultError:
                lh.table.recover()
        elif operation == "compact":
            try:
                lh.compactor.compact()
            except InjectedFaultError:
                lh.table.recover()
        elif operation == "lose_tail":
            lh.table.lose_tail()
        check_invariants(lh)
    return lh


def check_invariants(lh):
    table = lh.table
    committed = table.committed
    sealed = table.sealed_watermark()
    assert committed.dominates(sealed), (
        f"sealed {sealed.encode()} ran ahead of committed {committed.encode()}"
    )

    # Visible multiset at the committed watermark == the log prefix.
    visible = visible_log_keys(lh.connector, table.name)
    expected = expected_log_keys(lh.broker, lh.topic, committed)
    assert visible == expected, (
        f"visible != expected at {committed.encode()}: "
        f"dup={{k: n for k, n in visible.items() if n > 1}}, "
        f"missing={sorted(expected - visible)}, extra={sorted(visible - expected)}"
    )

    # The same at every lower per-partition cut (time travel).
    lower = Watermark.of(*(offset // 2 for offset in committed.offsets))
    if lower != committed:
        pinned = watermark_table_name(table.name, lower)
        assert visible_log_keys(lh.connector, pinned) == expected_log_keys(
            lh.broker, lh.topic, lower
        )

    # Tail XOR lake: lake rows strictly below sealed, each exactly once.
    lake_keys = Counter()
    partition_index = len(table.fields)
    for data_file in table.lake.current_snapshot().files:
        for row in table.lake.read_file_rows(data_file):
            lake_keys[(row[partition_index], row[partition_index + 1])] += 1
    assert all(n == 1 for n in lake_keys.values()), f"lake duplicates: {lake_keys}"
    assert lake_keys == expected_log_keys(lh.broker, lh.topic, sealed)

    # Committed tail rows cover exactly [sealed, committed).
    tail_keys = Counter(
        (row[partition_index], row[partition_index + 1])
        for row in table.visible_tail_rows(sealed, committed)
    )
    assert all(n == 1 for n in tail_keys.values()), f"tail duplicates: {tail_keys}"
    assert tail_keys == expected - lake_keys


@settings(max_examples=30, deadline=None)
@given(
    schedule=operations,
    partitions=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_exactly_once_without_faults(schedule, partitions, seed):
    run_schedule(schedule, partitions, seed, failure_rate=0.0)


@settings(max_examples=30, deadline=None)
@given(
    schedule=operations,
    partitions=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_exactly_once_under_crashes(schedule, partitions, seed):
    """Crash points fire at ~30% inside appends, commits, writes, prunes."""
    run_schedule(schedule, partitions, seed, failure_rate=0.3)


@settings(max_examples=15, deadline=None)
@given(
    schedule=operations,
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_exactly_once_under_heavy_crashes(schedule, seed):
    """Even at 60% crash rate no schedule duplicates or drops a row."""
    run_schedule(schedule, 2, seed, failure_rate=0.6)


@settings(max_examples=20, deadline=None)
@given(
    schedule=operations,
    partitions=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_replay_is_deterministic(schedule, partitions, seed):
    """The same schedule and seed reproduce byte-identical state."""

    def fingerprint(lh):
        return (
            lh.table.committed.encode(),
            lh.table.sealed_watermark().encode(),
            tuple(lh.table.tail_layout()),
            tuple(
                (f.path, f.row_count)
                for f in lh.table.lake.current_snapshot().files
            ),
            tuple(
                (s.snapshot_id, s.operation, s.properties)
                for s in lh.table.lake.history()
            ),
        )

    first = fingerprint(run_schedule(schedule, partitions, seed, 0.3))
    second = fingerprint(run_schedule(schedule, partitions, seed, 0.3))
    assert first == second
