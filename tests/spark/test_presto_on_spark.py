"""Tests for Presto-on-Spark translation and fallback (section XII.C)."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import InsufficientResourcesError
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.spark import BatchSqlEngine, FallbackQueryRunner, QueryTranslator
from repro.sql import parse_sql
from repro.sql.formatter import PRESTO, SPARK, format_query


def make_catalog_engine(max_build_rows=10_000_000, clock=None):
    connector = MemoryConnector()
    connector.create_table(
        "db",
        "facts",
        [("k", BIGINT), ("v", DOUBLE)],
        [(i % 50, float(i)) for i in range(2_000)],
    )
    connector.create_table(
        "db",
        "dim",
        [("k", BIGINT), ("label", VARCHAR)],
        [(i, f"label{i}") for i in range(50)],
    )
    engine = PrestoEngine(
        session=Session(catalog="memory", schema="db"),
        max_build_rows=max_build_rows,
        clock=clock,
    )
    engine.register_connector("memory", connector)
    return engine


class TestFormatter:
    def round_trip(self, sql):
        rendered = format_query(parse_sql(sql), PRESTO)
        assert parse_sql(rendered) == parse_sql(sql)
        return rendered

    def test_select_round_trip(self):
        self.round_trip("SELECT a, b AS x FROM t WHERE a > 1 ORDER BY b DESC LIMIT 3")

    def test_join_round_trip(self):
        self.round_trip(
            "SELECT count(*) FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id"
        )

    def test_aggregate_round_trip(self):
        self.round_trip(
            "SELECT k, count(DISTINCT v), sum(v) FROM t GROUP BY k HAVING count(*) > 2"
        )

    def test_predicates_round_trip(self):
        self.round_trip(
            "SELECT * FROM t WHERE a IN (1, 2) AND b NOT BETWEEN 1 AND 5 "
            "AND c LIKE 'x%' AND d IS NOT NULL AND NOT e"
        )

    def test_case_cast_round_trip(self):
        self.round_trip(
            "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END, CAST(a AS double) FROM t"
        )

    def test_string_escaping(self):
        rendered = self.round_trip("SELECT 'it''s' FROM t")
        assert "it''s" in rendered

    def test_subquery_round_trip(self):
        self.round_trip("SELECT x FROM (SELECT a AS x FROM t WHERE a > 1) s WHERE x < 9")


class TestTranslator:
    def test_function_renames(self):
        translator = QueryTranslator()
        spark_sql = translator.translate("SELECT approx_distinct(k) FROM facts")
        assert "approx_count_distinct(k)" in spark_sql
        assert translator.translated == 1

    def test_plain_queries_pass_through(self):
        translator = QueryTranslator()
        spark_sql = translator.translate("SELECT k, sum(v) FROM facts GROUP BY k")
        assert parse_sql(spark_sql) == parse_sql("SELECT k, sum(v) FROM facts GROUP BY k")


class TestBatchEngine:
    def test_same_results_as_presto(self):
        presto = make_catalog_engine()
        batch = BatchSqlEngine(presto.catalog, presto.session)
        sql = "SELECT k, sum(v) FROM facts GROUP BY k ORDER BY k LIMIT 5"
        assert batch.execute(sql).rows == presto.execute(sql).rows

    def test_batch_is_slower_on_simulated_clock(self):
        clock = SimulatedClock()
        presto = make_catalog_engine(clock=clock)
        batch = BatchSqlEngine(presto.catalog, presto.session, clock=clock)
        sql = "SELECT count(*) FROM facts"
        start = clock.now_ms()
        presto.execute(sql)
        presto_ms = clock.now_ms() - start
        start = clock.now_ms()
        batch.execute(sql)
        batch_ms = clock.now_ms() - start
        # Section XI: batch startup/shuffle latency makes it a poor fit for
        # interactive queries.
        assert batch_ms > 3 * presto_ms

    def test_big_join_succeeds_with_spill(self):
        presto = make_catalog_engine()
        batch = BatchSqlEngine(
            presto.catalog, presto.session, memory_budget_rows=100
        )
        result = batch.execute(
            "SELECT count(*) FROM facts a JOIN facts b ON a.k = b.k"
        )
        assert result.rows[0][0] > 0
        assert batch.spilled_rows > 0  # build side exceeded memory → spill

    def test_understands_spark_function_names(self):
        presto = make_catalog_engine()
        batch = BatchSqlEngine(presto.catalog, presto.session)
        result = batch.execute("SELECT approx_count_distinct(k) FROM facts")
        assert result.rows == [(50,)]


class TestFallbackRunner:
    def test_small_query_stays_on_presto(self):
        presto = make_catalog_engine()
        batch = BatchSqlEngine(presto.catalog, presto.session)
        runner = FallbackQueryRunner(presto, batch)
        routed = runner.execute("SELECT count(*) FROM facts")
        assert routed.engine == "presto"
        assert routed.result.rows == [(2000,)]
        assert runner.fallbacks == 0

    def test_big_join_falls_back_to_spark(self):
        # Presto's memory limit makes the self-join fail; the runner
        # translates and reruns on the batch engine automatically.
        presto = make_catalog_engine(max_build_rows=500)
        with pytest.raises(InsufficientResourcesError):
            presto.execute("SELECT count(*) FROM facts a JOIN facts b ON a.k = b.k")

        batch = BatchSqlEngine(presto.catalog, presto.session)
        runner = FallbackQueryRunner(presto, batch)
        routed = runner.execute(
            "SELECT count(*) FROM facts a JOIN facts b ON a.k = b.k"
        )
        assert routed.engine == "spark"
        assert routed.result.rows[0][0] == 2_000 * 40  # 50 keys x 40x40 matches
        assert routed.translated_sql  # the translated text is surfaced
        assert runner.fallbacks == 1

    def test_fallback_result_matches_unlimited_presto(self):
        sql = "SELECT a.k, count(*) FROM facts a JOIN facts b ON a.k = b.k GROUP BY a.k"
        reference = make_catalog_engine().execute(sql)
        presto = make_catalog_engine(max_build_rows=500)
        runner = FallbackQueryRunner(
            presto, BatchSqlEngine(presto.catalog, presto.session)
        )
        routed = runner.execute(sql)
        assert routed.engine == "spark"
        assert sorted(routed.result.rows) == sorted(reference.rows)
