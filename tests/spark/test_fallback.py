"""Direct unit tests for the automatic Presto → Spark fallback runner."""

import pytest

from repro.common.errors import InsufficientResourcesError, SemanticError
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.spark import BatchSqlEngine, FallbackQueryRunner
from repro.spark.fallback import RoutedResult

JOIN_SQL = "SELECT count(*) FROM facts f JOIN dim d ON f.k = d.k"


def make_runner(max_build_rows=10_000_000):
    connector = MemoryConnector()
    connector.create_table(
        "db",
        "facts",
        [("k", BIGINT), ("v", DOUBLE)],
        [(i % 50, float(i)) for i in range(2_000)],
    )
    connector.create_table(
        "db",
        "dim",
        [("k", BIGINT), ("label", VARCHAR)],
        [(i, f"label{i}") for i in range(50)],
    )
    presto = PrestoEngine(
        session=Session(catalog="memory", schema="db"),
        max_build_rows=max_build_rows,
    )
    presto.register_connector("memory", connector)
    batch = BatchSqlEngine(presto.catalog, presto.session)
    return FallbackQueryRunner(presto, batch)


class TestRoutedResult:
    def test_defaults(self):
        routed = RoutedResult(result=None, engine="presto")
        assert routed.translated_sql == ""


class TestFallbackRunner:
    def test_presto_serves_when_it_fits(self):
        runner = make_runner()
        routed = runner.execute(JOIN_SQL)
        assert routed.engine == "presto"
        assert routed.translated_sql == ""
        assert routed.result.rows == [(2_000,)]
        assert runner.fallbacks == 0
        assert runner.batch.jobs_run == 0

    def test_insufficient_resources_falls_back_to_spark(self):
        # A 10-row build budget dooms the join on Presto; the runner
        # translates and reruns on the batch engine transparently.
        runner = make_runner(max_build_rows=10)
        with pytest.raises(InsufficientResourcesError):
            runner.presto.execute(JOIN_SQL)
        routed = runner.execute(JOIN_SQL)
        assert routed.engine == "spark"
        assert routed.translated_sql  # the SQL really went through the translator
        assert routed.result.rows == [(2_000,)]
        assert runner.fallbacks == 1
        assert runner.batch.jobs_run == 1

    def test_fallback_result_matches_the_unconstrained_presto_result(self):
        sql = "SELECT k, sum(v) FROM facts GROUP BY k ORDER BY k LIMIT 5"
        oracle = make_runner().execute(sql)
        constrained = make_runner(max_build_rows=10)
        routed = constrained.execute(
            "SELECT f.k, sum(f.v) FROM facts f JOIN dim d ON f.k = d.k "
            "GROUP BY f.k ORDER BY f.k LIMIT 5"
        )
        assert routed.engine == "spark"
        assert routed.result.rows == oracle.result.rows

    def test_function_translation_applied_on_fallback(self):
        runner = make_runner(max_build_rows=10)
        routed = runner.execute(
            "SELECT approx_distinct(f.v) FROM facts f JOIN dim d ON f.k = d.k"
        )
        assert routed.engine == "spark"
        assert "approx_count_distinct" in routed.translated_sql

    def test_user_errors_are_not_swallowed(self):
        runner = make_runner()
        with pytest.raises(SemanticError):
            runner.execute("SELECT nope FROM facts")
        assert runner.fallbacks == 0

    def test_each_overflow_counts_a_fallback(self):
        runner = make_runner(max_build_rows=10)
        runner.execute(JOIN_SQL)
        runner.execute(JOIN_SQL)
        assert runner.fallbacks == 2
        assert runner.batch.jobs_run == 2
