"""ANALYZE statistics and cost-based optimization tests.

Covers the ANALYZE TABLE statement, the StatsProvider bridge from
connector statistics into plan-variable space (including staleness after
inserts), the self-gating cost-based join reorder (no statistics → the
plan is byte-identical to the rule-free pipeline), broadcast-vs-
partitioned selection, and EXPLAIN's estimated row counts.
"""

import pytest

from repro.common.errors import SemanticError
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.metastore.statistics import ColumnStatisticsEntry, TableStatistics
from repro.planner.analyzer import Session
from repro.planner.plan import JoinNode, PlanNode, TableScanNode
from repro.planner.stats import StatsProvider


def make_engine(session=None):
    connector = MemoryConnector(split_size=100)
    connector.create_table(
        "db",
        "big",
        [("k", BIGINT), ("v", BIGINT)],
        [(i % 40, i) for i in range(1000)],
    )
    connector.create_table(
        "db",
        "mid",
        [("k", BIGINT), ("label", VARCHAR)],
        [(i, f"m{i}") for i in range(100)],
    )
    connector.create_table(
        "db", "small", [("k", BIGINT)], [(i,) for i in range(10)]
    )
    engine = PrestoEngine(session=session or Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine, connector


def analyze_all(engine):
    for table in ("big", "mid", "small"):
        engine.execute(f"ANALYZE TABLE {table}")


def scan_order(plan: PlanNode) -> list[str]:
    """Table names in plan tree order (probe side first)."""
    names = []

    def walk(node):
        if isinstance(node, TableScanNode):
            names.append(node.handle.table_name)
        for source in node.sources():
            walk(source)

    walk(plan)
    return names


class TestAnalyzeStatement:
    def test_analyze_returns_summary_row(self):
        engine, _ = make_engine()
        result = engine.execute("ANALYZE TABLE big")
        assert result.column_names == ["Table", "Rows", "Columns Analyzed"]
        [(table, rows, columns)] = result.rows
        assert "big" in table and rows == 1000 and columns == 2

    def test_analyze_without_table_keyword(self):
        engine, _ = make_engine()
        assert engine.execute("ANALYZE small").rows[0][1] == 10

    def test_analyze_missing_table_raises(self):
        engine, _ = make_engine()
        with pytest.raises(SemanticError):
            engine.execute("ANALYZE TABLE no_such_table")

    def test_column_statistics_roundtrip(self):
        entry = ColumnStatisticsEntry(
            ndv=40, min_value=0, max_value=39, null_fraction=0.25
        )
        assert ColumnStatisticsEntry.from_dict(entry.to_dict()) == entry


class TestStatsProvider:
    def scan_for(self, engine, table):
        plan = engine.plan(f"SELECT * FROM {table}")
        [name] = [
            n for n in scan_order(plan)
        ]  # single-table plan: exactly one scan
        node = plan
        while not isinstance(node, TableScanNode):
            (node,) = node.sources()
        return node

    def test_unanalyzed_table_has_no_stats(self):
        engine, _ = make_engine()
        provider = StatsProvider(engine.catalog)
        assert provider.stats_for_scan(self.scan_for(engine, "big")) is None

    def test_analyzed_stats_keyed_by_variable(self):
        engine, _ = make_engine()
        engine.execute("ANALYZE TABLE big")
        provider = StatsProvider(engine.catalog)
        scan = self.scan_for(engine, "big")
        row_count, columns = provider.stats_for_scan(scan)
        assert row_count == 1000
        # Keys are plan variable names (e.g. "k$0"), not connector columns.
        [k_variable] = [v for v, column in scan.assignments if column == "k"]
        assert columns[k_variable].ndv == 40
        assert (columns[k_variable].min_value, columns[k_variable].max_value) == (0, 39)

    def test_insert_staleness_drops_stats(self):
        # The memory connector versions statistics by row count; inserts
        # after ANALYZE make them stale, and stale stats are dropped
        # rather than served (the paper's reason for not using a CBO).
        engine, connector = make_engine()
        engine.execute("ANALYZE TABLE small")
        provider = StatsProvider(engine.catalog)
        assert provider.stats_for_scan(self.scan_for(engine, "small")) is not None
        connector.insert("db", "small", [(99,)])
        fresh_provider = StatsProvider(engine.catalog)
        assert fresh_provider.stats_for_scan(self.scan_for(engine, "small")) is None

    def test_reanalyze_refreshes(self):
        engine, connector = make_engine()
        engine.execute("ANALYZE TABLE small")
        connector.insert("db", "small", [(99,)])
        engine.execute("ANALYZE TABLE small")
        provider = StatsProvider(engine.catalog)
        row_count, _ = provider.stats_for_scan(self.scan_for(engine, "small"))
        assert row_count == 11


THREE_WAY_SQL = (
    "SELECT count(*) FROM small s "
    "JOIN mid m ON s.k = m.k "
    "JOIN big b ON m.k = b.k"
)


class TestCostBasedJoinOrdering:
    def test_without_stats_plan_is_unchanged(self):
        # Self-gating: un-analyzed relations must produce the exact plan
        # the rule-free pipeline builds (SQL order preserved).
        engine, _ = make_engine()
        assert scan_order(engine.plan(THREE_WAY_SQL)) == ["small", "mid", "big"]

    def test_with_stats_largest_becomes_probe(self):
        engine, _ = make_engine()
        analyze_all(engine)
        order = scan_order(engine.plan(THREE_WAY_SQL))
        assert order[0] == "big", f"largest relation should stream first, got {order}"
        assert order[-1] == "small", f"smallest build should be innermost, got {order}"

    def test_reordered_results_match_unordered(self):
        plain_engine, _ = make_engine()
        cbo_engine, _ = make_engine()
        analyze_all(cbo_engine)
        assert (
            cbo_engine.execute(THREE_WAY_SQL).rows
            == plain_engine.execute(THREE_WAY_SQL).rows
        )

    def test_outer_joins_are_not_reordered(self):
        engine, _ = make_engine()
        analyze_all(engine)
        sql = "SELECT count(*) FROM small s LEFT JOIN big b ON s.k = b.k"
        assert scan_order(engine.plan(sql)) == ["small", "big"]


class TestBroadcastSelection:
    def join_node(self, plan):
        node = plan
        while not isinstance(node, JoinNode):
            (node,) = node.sources()
        return node

    def test_automatic_with_small_analyzed_build_broadcasts(self):
        session = Session(
            catalog="memory",
            schema="db",
            properties={"join_distribution_type": "automatic"},
        )
        engine, _ = make_engine(session)
        analyze_all(engine)
        plan = engine.plan("SELECT count(*) FROM big b JOIN small s ON b.k = s.k")
        assert self.join_node(plan).distribution == "broadcast"

    def test_automatic_without_stats_stays_partitioned(self):
        session = Session(
            catalog="memory",
            schema="db",
            properties={"join_distribution_type": "automatic"},
        )
        engine, _ = make_engine(session)
        plan = engine.plan("SELECT count(*) FROM big b JOIN small s ON b.k = s.k")
        assert self.join_node(plan).distribution == "partitioned"

    def test_threshold_property_forces_partitioned(self):
        session = Session(
            catalog="memory",
            schema="db",
            properties={
                "join_distribution_type": "automatic",
                "broadcast_join_threshold_rows": 5,
            },
        )
        engine, _ = make_engine(session)
        analyze_all(engine)
        plan = engine.plan("SELECT count(*) FROM big b JOIN small s ON b.k = s.k")
        assert self.join_node(plan).distribution == "partitioned"

    def test_broadcast_results_match_partitioned(self):
        sql = "SELECT count(*) FROM big b JOIN small s ON b.k = s.k"
        partitioned_engine, _ = make_engine()
        auto = Session(
            catalog="memory",
            schema="db",
            properties={"join_distribution_type": "automatic"},
        )
        broadcast_engine, _ = make_engine(auto)
        analyze_all(broadcast_engine)
        assert (
            broadcast_engine.execute(sql).rows == partitioned_engine.execute(sql).rows
        )


class TestExplainEstimates:
    def test_unanalyzed_explain_has_no_estimates(self):
        engine, _ = make_engine()
        assert "{rows:" not in engine.explain("SELECT * FROM big")

    def test_analyzed_explain_annotates_rows(self):
        engine, _ = make_engine()
        engine.execute("ANALYZE TABLE big")
        text = engine.explain("SELECT * FROM big WHERE k = 3")
        assert "{rows:" in text

    def test_scan_estimate_is_exact_row_count(self):
        engine, _ = make_engine()
        engine.execute("ANALYZE TABLE small")
        text = engine.explain("SELECT * FROM small")
        assert "{rows: 10}" in text
