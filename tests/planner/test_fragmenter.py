"""Fragmenter tests: plans divide into the stages of section III."""

import pytest

from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.planner.fragmenter import ExchangeKind, Fragmenter


@pytest.fixture
def engine():
    connector = MemoryConnector()
    connector.create_table(
        "db", "facts", [("k", BIGINT), ("v", DOUBLE)], [(1, 1.0), (2, 2.0)]
    )
    connector.create_table(
        "db", "dim", [("k", BIGINT), ("name", VARCHAR)], [(1, "a"), (2, "b")]
    )
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


def fragment(engine, sql):
    return Fragmenter().fragment(engine.plan(sql))


class TestFragmentation:
    def test_simple_scan_has_two_stages(self, engine):
        # Source stage + coordinator output stage.
        plan = fragment(engine, "SELECT v FROM facts WHERE v > 1")
        assert plan.stage_count() == 2
        assert plan.fragments[0].distribution == "source"
        assert plan.root_fragment.distribution == "single"
        assert plan.fragments[-1].inputs[0].kind == ExchangeKind.GATHER

    def test_group_by_splits_partial_and_final(self, engine):
        plan = fragment(engine, "SELECT k, sum(v) FROM facts GROUP BY k")
        # source (partial agg) → hash (final agg) → single (output)
        assert plan.stage_count() == 3
        repartitions = [
            e
            for f in plan.fragments
            for e in f.inputs
            if e.kind == ExchangeKind.REPARTITION
        ]
        assert len(repartitions) == 1
        assert len(repartitions[0].partition_keys) == 1

    def test_global_aggregation_gathers(self, engine):
        plan = fragment(engine, "SELECT count(*) FROM facts")
        kinds = [e.kind for f in plan.fragments for e in f.inputs]
        assert ExchangeKind.GATHER in kinds
        assert ExchangeKind.REPARTITION not in kinds

    def test_partitioned_join_repartitions_build_side(self, engine):
        plan = fragment(
            engine, "SELECT count(*) FROM facts f JOIN dim d ON f.k = d.k"
        )
        kinds = [e.kind for f in plan.fragments for e in f.inputs]
        assert ExchangeKind.REPARTITION in kinds

    def test_broadcast_join_replicates_build_side(self, engine):
        engine.session.properties["join_distribution_type"] = "broadcast"
        plan = fragment(
            engine, "SELECT count(*) FROM facts f JOIN dim d ON f.k = d.k"
        )
        kinds = [e.kind for f in plan.fragments for e in f.inputs]
        assert ExchangeKind.REPLICATE in kinds
        assert ExchangeKind.REPARTITION not in kinds
        engine.session.properties.clear()

    def test_order_by_gathers_before_sort(self, engine):
        plan = fragment(engine, "SELECT v FROM facts ORDER BY v")
        gathers = [
            e for f in plan.fragments for e in f.inputs if e.kind == ExchangeKind.GATHER
        ]
        assert gathers  # the sort runs single-node after a gather

    def test_describe_renders_all_fragments(self, engine):
        text = engine.explain_distributed(
            "SELECT k, sum(v) FROM facts GROUP BY k ORDER BY 2 DESC LIMIT 3"
        )
        assert "Fragment 0" in text
        assert "RemoteSource" in text
        assert "Output" in text

    def test_fragment_ids_unique_and_root_last(self, engine):
        plan = fragment(engine, "SELECT k, count(*) FROM facts GROUP BY k")
        ids = [f.fragment_id for f in plan.fragments]
        assert ids == sorted(set(ids))
        assert plan.root_fragment.fragment_id == max(ids)

    def test_union_all_fragments_each_branch(self, engine):
        # Regression: UnionNode used to fall through to the generic case
        # and crash the fragmenter.  Each branch becomes its own fragment,
        # gathered in order.
        plan = fragment(engine, "SELECT k FROM facts UNION ALL SELECT k FROM dim")
        assert plan.stage_count() == 3  # two branches + output
        union_inputs = plan.root_fragment.inputs
        assert [e.kind for e in union_inputs] == [
            ExchangeKind.GATHER,
            ExchangeKind.GATHER,
        ]
        assert len({e.source_fragment for e in union_inputs}) == 2

    def test_union_all_distributed_explain(self, engine):
        text = engine.execute(
            "EXPLAIN (TYPE DISTRIBUTED) SELECT k FROM facts UNION ALL SELECT k FROM dim"
        ).rows
        rendered = "\n".join(r[0] for r in text)
        assert "Union" in rendered
        assert rendered.count("RemoteSource[GATHER") >= 2

    def test_union_of_aggregations_fragments(self, engine):
        plan = fragment(
            engine,
            "SELECT count(*) FROM facts UNION ALL SELECT count(*) FROM dim",
        )
        assert plan.stage_count() >= 3

    def test_exchanges_mark_partitioned_consumers(self, engine):
        plan = fragment(engine, "SELECT k, sum(v) FROM facts GROUP BY k")
        repartition = [
            e
            for f in plan.fragments
            for e in f.inputs
            if e.kind == ExchangeKind.REPARTITION
        ][0]
        assert repartition.partitioned
        # Join build-side repartitions are read whole by every probe task.
        join_plan = fragment(
            engine, "SELECT count(*) FROM facts f JOIN dim d ON f.k = d.k"
        )
        build = [
            e
            for f in join_plan.fragments
            for e in f.inputs
            if e.kind == ExchangeKind.REPARTITION
        ][0]
        assert not build.partitioned
