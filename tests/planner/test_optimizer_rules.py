"""Direct plan-shape tests for individual optimizer rules."""

import pytest

from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, DOUBLE, GEOMETRY, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.planner.plan import (
    FilterNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    SortNode,
    SpatialJoinNode,
    TableScanNode,
    TopNNode,
)


@pytest.fixture
def engine():
    connector = MemoryConnector()
    connector.create_table(
        "db", "t", [("a", BIGINT), ("b", BIGINT), ("s", VARCHAR)], [(1, 2, "x")]
    )
    connector.create_table("db", "u", [("a", BIGINT), ("r", VARCHAR)], [(1, "y")])
    connector.create_table(
        "db",
        "geo_t",
        [("lng", DOUBLE), ("lat", DOUBLE)],
        [(0.5, 0.5)],
    )
    connector.create_table("db", "fences", [("shape", GEOMETRY)], [])
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"))
    engine.register_connector("memory", connector)
    return engine


def nodes(plan, kind):
    return [n for n in plan.walk() if isinstance(n, kind)]


class TestPredicatePushdown:
    def test_filter_sinks_below_projection(self, engine):
        plan = engine.plan("SELECT a + b AS c FROM t WHERE a > 1")
        # Memory connector declines filters, so the Filter sits directly on
        # the scan — below the projection computing c.
        filters = nodes(plan, FilterNode)
        assert len(filters) == 1
        assert isinstance(filters[0].source, TableScanNode)

    def test_join_sides_filtered_independently(self, engine):
        plan = engine.plan(
            "SELECT count(*) FROM t JOIN u ON t.a = u.a WHERE t.b > 1 AND u.r = 'y'"
        )
        join = nodes(plan, JoinNode)[0]
        # Each conjunct moved to its own side of the join.
        left_filters = nodes(join.left, FilterNode)
        right_filters = nodes(join.right, FilterNode)
        assert left_filters and right_filters
        assert not isinstance(plan.source, FilterNode)

    def test_cross_side_conjunct_stays_above_join(self, engine):
        plan = engine.plan(
            "SELECT count(*) FROM t JOIN u ON t.a = u.a WHERE t.b > u.a"
        )
        join = nodes(plan, JoinNode)[0]
        above = [
            f for f in nodes(plan, FilterNode) if join in list(f.walk())
        ]
        assert above  # the two-sided conjunct could not be pushed


class TestLimitRules:
    def test_sort_limit_becomes_topn(self, engine):
        plan = engine.plan("SELECT a FROM t ORDER BY a LIMIT 3")
        assert nodes(plan, TopNNode)
        assert not nodes(plan, SortNode)
        assert not nodes(plan, LimitNode)

    def test_limit_passes_through_projection(self, engine):
        plan = engine.plan("SELECT a + 1 FROM t LIMIT 3")
        limits = nodes(plan, LimitNode)
        assert limits
        assert isinstance(limits[0].source, TableScanNode)

    def test_limit_does_not_cross_filter(self, engine):
        plan = engine.plan("SELECT a FROM t WHERE b > 0 LIMIT 3")
        limits = nodes(plan, LimitNode)
        assert isinstance(limits[0].source, FilterNode)

    def test_stacked_limits_collapse(self, engine):
        plan = engine.plan(
            "SELECT x FROM (SELECT a AS x FROM t LIMIT 10) s LIMIT 3"
        )
        limits = nodes(plan, LimitNode)
        assert len(limits) == 1
        assert limits[0].count == 3


class TestColumnPruning:
    def test_unused_columns_dropped_from_scan(self, engine):
        plan = engine.plan("SELECT a FROM t WHERE b > 0")
        scan = nodes(plan, TableScanNode)[0]
        read = {c for _, c in scan.assignments}
        assert read == {"a", "b"}  # s was pruned

    def test_count_star_keeps_one_column(self, engine):
        plan = engine.plan("SELECT count(*) FROM t")
        scan = nodes(plan, TableScanNode)[0]
        assert len(scan.assignments) == 1

    def test_projection_pushdown_reaches_handle(self, engine):
        plan = engine.plan("SELECT s FROM t")
        scan = nodes(plan, TableScanNode)[0]
        assert scan.handle.projected_columns == ("s",)


class TestGeoRewrite:
    def test_st_contains_join_becomes_spatial_join(self, engine):
        plan = engine.plan(
            "SELECT count(*) FROM geo_t g JOIN fences f "
            "ON st_contains(f.shape, st_point(g.lng, g.lat))"
        )
        assert nodes(plan, SpatialJoinNode)
        assert not nodes(plan, JoinNode)

    def test_residual_condition_preserved(self, engine):
        plan = engine.plan(
            "SELECT count(*) FROM geo_t g JOIN fences f "
            "ON st_contains(f.shape, st_point(g.lng, g.lat)) AND g.lng > 0"
        )
        spatial = nodes(plan, SpatialJoinNode)[0]
        # The non-spatial conjunct survives as a filter (pushed to the
        # probe side by the follow-up predicate pushdown pass).
        assert nodes(plan, FilterNode)

    def test_session_property_disables_index(self, engine):
        engine.session.properties["geo_index_enabled"] = False
        plan = engine.plan(
            "SELECT count(*) FROM geo_t g JOIN fences f "
            "ON st_contains(f.shape, st_point(g.lng, g.lat))"
        )
        assert not nodes(plan, SpatialJoinNode)[0].use_index
        engine.session.properties.clear()


class TestCleanupRules:
    def test_no_identity_projections_survive(self, engine):
        plan = engine.plan("SELECT a, b, s FROM t")
        for project in nodes(plan, ProjectNode):
            assert not project.is_identity()

    def test_adjacent_filters_merged(self, engine):
        plan = engine.plan(
            "SELECT x FROM (SELECT a AS x FROM t WHERE b > 0) s WHERE x < 5"
        )
        # Both predicates over the same scan end up in a single Filter.
        assert len(nodes(plan, FilterNode)) == 1
