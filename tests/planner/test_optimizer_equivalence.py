"""Property: the optimizer never changes query results.

Runs a corpus of generated queries against the same data twice — once with
every optimizer rule enabled, once with the optimizer disabled entirely —
and asserts identical results.  This guards the whole rule set (predicate/
limit/aggregation pushdown, column pruning, TopN, geo rewrite) at once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectors.memory import MemoryConnector
from repro.connectors.realtime.druid import DruidCluster, DruidConnector
from repro.core.types import BIGINT, BOOLEAN, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session


def build_engines():
    connector = MemoryConnector(split_size=7)
    rows = [
        (i, f"name{i % 5}", float(i % 13) * 1.5, i % 3 == 0)
        for i in range(60)
    ]
    connector.create_table(
        "db",
        "t",
        [("id", BIGINT), ("name", VARCHAR), ("score", DOUBLE), ("flag", BOOLEAN)],
        rows,
    )
    connector.create_table(
        "db",
        "names",
        [("name", VARCHAR), ("category", VARCHAR)],
        [(f"name{i}", f"cat{i % 2}") for i in range(5)],
    )
    druid = DruidCluster(nodes=2)
    druid.create_datasource("events", [("name", VARCHAR), ("value", DOUBLE)])
    druid.add_segment("events", [(f"name{i % 5}", float(i)) for i in range(40)])
    druid.add_segment("events", [(f"name{i % 3}", float(i) * 2) for i in range(40)])

    engines = []
    for enabled in (True, False):
        engine = PrestoEngine(
            session=Session(catalog="memory", schema="db"),
            enable_optimizer=enabled,
        )
        engine.register_connector("memory", connector)
        engine.register_connector("druid", DruidConnector(druid))
        engines.append(engine)
    return engines


OPTIMIZED, UNOPTIMIZED = build_engines()

# A hand-built corpus hitting every rule.
CORPUS = [
    "SELECT id FROM t WHERE score > 5 AND name = 'name2'",
    "SELECT name, count(*), sum(score) FROM t GROUP BY name",
    "SELECT id, score FROM t ORDER BY score DESC LIMIT 4",
    "SELECT DISTINCT name FROM t WHERE flag",
    "SELECT count(*) FROM t WHERE id BETWEEN 10 AND 30",
    "SELECT t.id, n.category FROM t JOIN names n ON t.name = n.name WHERE t.score > 3",
    "SELECT n.category, avg(t.score) FROM t JOIN names n ON t.name = n.name GROUP BY n.category",
    "SELECT name FROM t WHERE id IN (1, 2, 3) OR score < 1",
    "SELECT sub.name, sub.c FROM (SELECT name, count(*) AS c FROM t GROUP BY name) sub WHERE sub.c > 10",
    "SELECT id FROM t WHERE NOT flag ORDER BY id LIMIT 100",
    "SELECT name, max(value) FROM druid.druid.events GROUP BY name",
    "SELECT value FROM druid.druid.events WHERE name = 'name1' LIMIT 5",
    "SELECT count(*) FROM druid.druid.events WHERE value >= 10",
    "SELECT t.name, count(*) FROM t LEFT JOIN names n ON t.name = n.name GROUP BY t.name HAVING count(*) > 5",
    "SELECT CASE WHEN score > 10 THEN 'hi' ELSE 'lo' END AS bucket, count(*) FROM t GROUP BY 1",
    "SELECT id + 1, score * 2 FROM t WHERE flag AND score > 2 ORDER BY 1",
    "SELECT count(DISTINCT name) FROM t",
    "SELECT name FROM t GROUP BY name ORDER BY count(*) DESC LIMIT 2",
]


@pytest.mark.parametrize("sql", CORPUS)
def test_corpus_query_equivalence(sql):
    optimized = OPTIMIZED.execute(sql)
    unoptimized = UNOPTIMIZED.execute(sql)
    assert optimized.column_names == unoptimized.column_names
    if "ORDER BY" in sql and "LIMIT" not in sql:
        assert optimized.rows == unoptimized.rows
    else:
        assert sorted(map(repr, optimized.rows)) == sorted(map(repr, unoptimized.rows))


# -- generated filter expressions over the same table ------------------------

comparisons = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
numeric_column = st.sampled_from(["id", "score"])


@st.composite
def predicates(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            column = draw(numeric_column)
            op = draw(comparisons)
            value = draw(st.integers(-5, 70))
            return f"{column} {op} {value}"
        if kind == 1:
            values = draw(st.lists(st.integers(0, 6), min_size=1, max_size=3))
            names = ", ".join(f"'name{v}'" for v in values)
            return f"name IN ({names})"
        if kind == 2:
            low = draw(st.integers(0, 30))
            high = draw(st.integers(20, 70))
            return f"id BETWEEN {low} AND {high}"
        return "flag"
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    connective = draw(st.sampled_from(["AND", "OR"]))
    negate = draw(st.booleans())
    combined = f"({left} {connective} {right})"
    return f"NOT {combined}" if negate else combined


@given(predicates())
@settings(max_examples=120, deadline=None)
def test_generated_filter_equivalence(predicate):
    sql = f"SELECT id FROM t WHERE {predicate}"
    optimized = OPTIMIZED.execute(sql)
    unoptimized = UNOPTIMIZED.execute(sql)
    assert sorted(optimized.rows) == sorted(unoptimized.rows)


@given(predicates(), st.sampled_from(["name", "flag"]), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_generated_aggregation_equivalence(predicate, group_column, limit):
    sql = (
        f"SELECT {group_column}, count(*), sum(score) FROM t "
        f"WHERE {predicate} GROUP BY {group_column} "
        f"ORDER BY 2 DESC, 1 LIMIT {limit}"
    )
    optimized = OPTIMIZED.execute(sql)
    unoptimized = UNOPTIMIZED.execute(sql)
    assert sorted(map(repr, optimized.rows)) == sorted(map(repr, unoptimized.rows))
