"""Tiered worker-local data cache: tiers, policies, shadow, observability."""

import pytest

from repro.cache.data_cache import (
    CacheTier,
    DataCacheConfig,
    FrequencySketch,
    LfuPolicy,
    LruPolicy,
    ShadowCache,
    TieredDataCache,
    TinyLfuPolicy,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import QueryTrace, activate


def make_cache(**overrides) -> TieredDataCache:
    defaults = dict(hot_bytes=100, ssd_bytes=300, default_entry_bytes=10)
    defaults.update(overrides)
    return TieredDataCache(DataCacheConfig(**defaults))


class TestConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown data-cache policy"):
            DataCacheConfig(policy="clairvoyant")

    def test_known_policies_accepted(self):
        for policy in ("lru", "lfu", "tinylfu"):
            assert DataCacheConfig(policy=policy).policy == policy


class TestTieredReads:
    def test_miss_then_hot_hit(self):
        cache = make_cache()
        first = cache.read("a")
        assert first.tier == "miss" and not first.hit
        second = cache.read("a")
        assert second.tier == "hot" and second.hit
        assert second.latency_ms == cache.config.hot_read_ms
        assert cache.tier_of("a") == "hot"

    def test_hot_eviction_demotes_to_ssd(self):
        cache = make_cache(hot_bytes=20, ssd_bytes=100, default_entry_bytes=10)
        cache.read("a")
        cache.read("b")
        cache.read("c")  # hot full: "a" (LRU) demotes to ssd
        assert cache.tier_of("a") == "ssd"
        assert cache.tier_of("b") == "hot"
        assert cache.tier_of("c") == "hot"
        assert cache.stats.evictions_hot == 1

    def test_ssd_hit_promotes_back_to_hot(self):
        cache = make_cache(hot_bytes=20, ssd_bytes=100, default_entry_bytes=10)
        cache.read("a")
        cache.read("b")
        cache.read("c")  # "a" now on ssd
        read = cache.read("a")
        assert read.tier == "ssd"
        assert read.latency_ms == cache.config.ssd_read_ms
        assert cache.tier_of("a") == "hot"  # promoted
        assert cache.tier_of("b") == "ssd"  # displaced by the promotion

    def test_ssd_eviction_leaves_the_cache(self):
        cache = make_cache(hot_bytes=10, ssd_bytes=20, default_entry_bytes=10)
        for key in ("a", "b", "c", "d"):
            cache.read(key)
        # 4 entries into 10+20 bytes of capacity: someone is gone for good.
        assert len(cache) == 3
        assert cache.stats.evictions_ssd >= 1

    def test_entry_larger_than_both_tiers_never_cached(self):
        cache = make_cache(hot_bytes=10, ssd_bytes=10)
        cache.read("huge", size_bytes=1000)
        assert cache.tier_of("huge") is None
        assert cache.read("huge", size_bytes=1000).tier == "miss"

    def test_loader_runs_only_on_miss_and_value_is_cached(self):
        cache = make_cache()
        calls = []

        def load():
            calls.append(1)
            return b"payload"

        first = cache.read("seg", size_bytes=10, loader=load)
        second = cache.read("seg", size_bytes=10, loader=load)
        assert first.value == b"payload"
        assert second.value == b"payload"
        assert second.tier == "hot"
        assert len(calls) == 1

    def test_clear_drops_both_tiers(self):
        cache = make_cache(hot_bytes=20, default_entry_bytes=10)
        for key in ("a", "b", "c"):
            cache.read(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.keys() == set()

    def test_hit_ratio_accounting(self):
        cache = make_cache()
        cache.read("a")
        cache.read("a")
        cache.read("b")
        cache.read("a")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.hit_ratio() == pytest.approx(0.5)


class TestPolicies:
    def test_lru_evicts_least_recent(self):
        tier = CacheTier("t", 30, LruPolicy())
        for key in ("a", "b", "c"):
            tier.put(key, 10)
        tier.get("a")  # refresh "a": "b" is now LRU
        _, evicted, _ = tier.put("d", 10)
        assert [e[0] for e in evicted] == ["b"]

    def test_lfu_evicts_least_frequent(self):
        tier = CacheTier("t", 30, LfuPolicy())
        for key in ("a", "b", "c"):
            tier.put(key, 10)
        tier.get("a")
        tier.get("a")
        tier.get("c")
        _, evicted, _ = tier.put("d", 10)
        assert [e[0] for e in evicted] == ["b"]  # never re-read

    def test_lfu_ties_break_on_recency(self):
        tier = CacheTier("t", 30, LfuPolicy())
        for key in ("a", "b", "c"):
            tier.put(key, 10)  # all count 1
        _, evicted, _ = tier.put("d", 10)
        assert [e[0] for e in evicted] == ["a"]  # least recent among ties

    def test_tinylfu_rejects_one_hit_wonder(self):
        sketch = FrequencySketch()
        tier = CacheTier("t", 20, TinyLfuPolicy(sketch))
        for _ in range(3):
            sketch.increment("hot1")
            sketch.increment("hot2")
        tier.put("hot1", 10)
        tier.put("hot2", 10)
        sketch.increment("scan")  # seen once: colder than any victim
        admitted, evicted, rejected = tier.put("scan", 10)
        assert not admitted and rejected and evicted == []
        assert "hot1" in tier and "hot2" in tier

    def test_tinylfu_admits_hotter_candidate(self):
        sketch = FrequencySketch()
        tier = CacheTier("t", 10, TinyLfuPolicy(sketch))
        sketch.increment("cold")
        tier.put("cold", 10)
        for _ in range(5):
            sketch.increment("hot")
        admitted, evicted, rejected = tier.put("hot", 10)
        assert admitted and not rejected
        assert [e[0] for e in evicted] == ["cold"]

    def test_tiered_cache_counts_admission_rejects(self):
        cache = make_cache(policy="tinylfu", hot_bytes=10, ssd_bytes=10,
                           default_entry_bytes=10)
        for _ in range(4):
            cache.read("popular")
        cache.read("scan-once")
        assert cache.stats.admission_rejects_hot >= 1
        assert cache.tier_of("popular") == "hot"
        # Rejected from hot by the filter, but the (empty) SSD tier had
        # room — no victim to protect, so the candidate lands there.
        assert cache.tier_of("scan-once") == "ssd"


class TestFrequencySketch:
    def test_estimate_tracks_increments(self):
        sketch = FrequencySketch()
        for _ in range(5):
            sketch.increment("k")
        assert sketch.estimate("k") >= 5
        assert sketch.estimate("never-seen") == 0

    def test_counters_saturate_at_15(self):
        sketch = FrequencySketch(sample_size=10_000)
        for _ in range(100):
            sketch.increment("k")
        assert sketch.estimate("k") == 15

    def test_aging_halves_counts(self):
        sketch = FrequencySketch(sample_size=8)
        for _ in range(8):  # the 8th increment triggers aging
            sketch.increment("k")
        assert sketch.estimate("k") == 4


class TestShadowCache:
    def test_estimates_larger_cache_hit_ratio(self):
        shadow = ShadowCache(capacity_bytes=1000)
        for _ in range(3):
            for i in range(10):
                shadow.access(f"k{i}", 10)
        # All 10 keys fit: every access after the first round hits.
        assert shadow.hits == 20
        assert shadow.estimated_hit_ratio() == pytest.approx(20 / 30)

    def test_bounded_at_capacity(self):
        shadow = ShadowCache(capacity_bytes=20)
        for i in range(10):
            shadow.access(f"k{i}", 10)
        assert len(shadow._entries) == 2

    def test_oversized_entry_not_admitted(self):
        shadow = ShadowCache(capacity_bytes=10)
        assert shadow.access("big", 100) is False
        assert shadow.access("big", 100) is False  # still a miss

    def test_shadow_survives_cache_clear(self):
        cache = make_cache()
        cache.read("a")
        cache.clear()
        cache.read("a")
        # Real cache restarted cold (miss), but the shadow remembers.
        assert cache.stats.misses == 2
        assert cache.shadow.hits == 1


class TestObservability:
    def test_labeled_metrics_series(self):
        metrics = MetricsRegistry()
        config = DataCacheConfig(hot_bytes=20, ssd_bytes=40, default_entry_bytes=10)
        cache = TieredDataCache(config, worker="w0", metrics=metrics)
        for key in ("a", "b", "c"):
            cache.read(key)
        cache.read("a")  # ssd hit (demoted) -> promotion
        cache.read("c")  # hot hit
        assert metrics.total("data_cache_misses_total", worker="w0") == 3.0
        assert metrics.total(
            "data_cache_hits_total", worker="w0", tier="hot", policy="lru"
        ) == 1.0
        assert metrics.total("data_cache_hits_total", worker="w0", tier="ssd") == 1.0
        assert metrics.total("data_cache_evictions_total", worker="w0") >= 1.0

    def test_used_bytes_gauge_tracks_tiers(self):
        metrics = MetricsRegistry()
        config = DataCacheConfig(hot_bytes=20, ssd_bytes=40, default_entry_bytes=10)
        cache = TieredDataCache(config, worker="w0", metrics=metrics)
        for key in ("a", "b", "c"):
            cache.read(key)
        assert metrics.gauge(
            "data_cache_used_bytes", worker="w0", policy="lru", tier="hot"
        ).value == cache.hot.used_bytes
        assert metrics.gauge(
            "data_cache_used_bytes", worker="w0", policy="lru", tier="ssd"
        ).value == cache.ssd.used_bytes

    def test_trace_instants_emitted_when_tracer_active(self):
        cache = make_cache()
        trace = QueryTrace()
        with activate(trace), trace.span("query"):
            cache.read("a")
            cache.read("a")
        instants = trace.find("data_cache")
        assert [i.attributes["tier"] for i in instants] == ["miss", "hot"]
        assert all(i.attributes["worker"] == "worker" for i in instants)

    def test_no_tracer_no_instants(self):
        cache = make_cache()
        cache.read("a")  # must not blow up without an active tracer
