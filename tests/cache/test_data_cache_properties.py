"""Property tests for the data-cache policies and the shadow cache.

Reference models are deliberately naive (ordered lists, dict counters);
the properties pin the *semantics* — LRU recency order, LFU
frequency-then-recency victims, TinyLFU admission comparisons, and the
shadow cache's upper-bound guarantee for LRU (uniform entry sizes, where
the LRU inclusion property holds).
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.cache.data_cache import (
    CacheTier,
    DataCacheConfig,
    FrequencySketch,
    LfuPolicy,
    LruPolicy,
    TieredDataCache,
    TinyLfuPolicy,
)

KEYS = [f"k{i}" for i in range(12)]
accesses = st.lists(st.sampled_from(KEYS), min_size=1, max_size=200)


def replay(tier: CacheTier, trace: list[str], size: int = 1) -> None:
    for key in trace:
        if key in tier:
            tier.get(key)
        else:
            tier.put(key, size)


class TestLruInvariants:
    @given(trace=accesses, slots=st.integers(min_value=1, max_value=8))
    def test_contents_match_reference_lru(self, trace, slots):
        tier = CacheTier("t", slots, LruPolicy())
        model: "OrderedDict[str, None]" = OrderedDict()
        for key in trace:
            if key in tier:
                tier.get(key)
                model.move_to_end(key)
            else:
                tier.put(key, 1)
                model[key] = None
                if len(model) > slots:
                    model.popitem(last=False)
        assert set(tier.keys()) == set(model)
        if len(tier) == slots:
            # The next victim is the least recently used key.
            assert tier.policy.victim() == next(iter(model))

    @given(trace=accesses, slots=st.integers(min_value=1, max_value=8))
    def test_used_bytes_never_exceeds_capacity(self, trace, slots):
        tier = CacheTier("t", slots, LruPolicy())
        for key in trace:
            if key in tier:
                tier.get(key)
            else:
                tier.put(key, 1)
            assert 0 <= tier.used_bytes <= slots
            assert tier.used_bytes == len(tier)


class TestLfuInvariants:
    @given(trace=accesses, slots=st.integers(min_value=1, max_value=8))
    def test_victim_is_least_frequent_then_least_recent(self, trace, slots):
        tier = CacheTier("t", slots, LfuPolicy())
        counts: dict[str, int] = {}
        recency: "OrderedDict[str, None]" = OrderedDict()
        for key in trace:
            if key in tier:
                tier.get(key)
                counts[key] += 1
                recency.move_to_end(key)
            else:
                evicted = tier.put(key, 1)[1]
                for victim, _, _ in evicted:
                    del counts[victim]
                    del recency[victim]
                counts[key] = 1
                recency[key] = None
        assert set(tier.keys()) == set(counts)
        if len(tier) > 0:
            expected = min(recency, key=lambda k: counts[k])
            assert tier.policy.victim() == expected


class TestTinyLfuInvariants:
    @given(
        increments=st.lists(st.sampled_from(KEYS), min_size=0, max_size=100),
        candidate=st.sampled_from(KEYS),
        victim=st.sampled_from(KEYS),
    )
    def test_admission_is_estimate_comparison(self, increments, candidate, victim):
        sketch = FrequencySketch()
        policy = TinyLfuPolicy(sketch)
        for key in increments:
            sketch.increment(key)
        assert policy.admit(candidate, victim) == (
            sketch.estimate(candidate) > sketch.estimate(victim)
        )

    @given(increments=st.lists(st.sampled_from(KEYS), min_size=0, max_size=100))
    def test_estimate_upper_bounds_true_count_below_saturation(self, increments):
        # Count-min never undercounts below the saturation point (15) and
        # the aging threshold (sample_size=4096), both out of reach at
        # <= 100 total increments.
        sketch = FrequencySketch()
        true_counts: dict[str, int] = {}
        for key in increments:
            sketch.increment(key)
            true_counts[key] = true_counts.get(key, 0) + 1
        for key, count in true_counts.items():
            assert sketch.estimate(key) >= min(count, 15)


class TestShadowCacheBound:
    @given(
        trace=st.lists(st.sampled_from(KEYS), min_size=1, max_size=300),
        hot_slots=st.integers(min_value=1, max_value=4),
        ssd_slots=st.integers(min_value=1, max_value=8),
        shadow_factor=st.integers(min_value=1, max_value=4),
        entry_bytes=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60)
    def test_estimate_bounds_actual_lru_hit_ratio(
        self, trace, hot_slots, ssd_slots, shadow_factor, entry_bytes
    ):
        # Uniform entry sizes: the two-tier LRU (hot holds the most
        # recent keys, SSD the next-recent, evictions in global recency
        # order) is equivalent to one LRU of hot+ssd slots, and the
        # K x larger shadow LRU holds a superset (inclusion property) —
        # so its estimate is a true upper bound.
        config = DataCacheConfig(
            policy="lru",
            hot_bytes=hot_slots * entry_bytes,
            ssd_bytes=ssd_slots * entry_bytes,
            shadow_factor=shadow_factor,
            default_entry_bytes=entry_bytes,
        )
        cache = TieredDataCache(config)
        for key in trace:
            cache.read(key)
        estimate = cache.shadow.estimated_hit_ratio()
        assert cache.hit_ratio() <= estimate <= 1.0
