"""Tests for the cache layer (section VII)."""

import pytest

from repro.cache.file_list_cache import FileListCache
from repro.cache.footer_cache import FileHandleAndFooterCache
from repro.cache.fragment_result_cache import FragmentResultCache
from repro.cache.lru import LruCache
from repro.cache.metastore_cache import VersionedMetastoreCache
from repro.core.page import Page
from repro.core.types import BIGINT, VARCHAR
from repro.formats.parquet.schema import ParquetSchema
from repro.formats.parquet.writer_native import NativeParquetWriter
from repro.metastore.metastore import HiveMetastore
from repro.storage.hdfs import HdfsFileSystem


class TestLru:
    def test_hit_miss_accounting(self):
        cache = LruCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_order(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "b" not in cache
        assert "a" in cache
        assert cache.stats.evictions == 1

    def test_get_or_load_loads_once(self):
        cache = LruCache()
        loads = []
        for _ in range(3):
            cache.get_or_load("k", lambda: loads.append(1) or "v")
        assert len(loads) == 1

    def test_invalidate(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.invalidate("a")
        assert cache.get("a") is None

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_invalidating_cached_none_counts(self):
        # Regression: invalidate() tested truthiness, so a cached None (a
        # legitimate value: file with no footer, metastore miss) was
        # popped without counting the invalidation.
        cache = LruCache()
        cache.put("a", None)
        cache.invalidate("a")
        assert cache.stats.invalidations == 1
        assert "a" not in cache

    def test_invalidating_absent_key_does_not_count(self):
        cache = LruCache()
        cache.invalidate("never-cached")
        assert cache.stats.invalidations == 0

    def test_get_or_load_caches_none(self):
        cache = LruCache()
        loads = []
        for _ in range(3):
            assert cache.get_or_load("k", lambda: loads.append(1)) is None
        assert len(loads) == 1  # None is an ordinary cacheable value
        assert cache.stats.hits == 2

    def test_get_accepts_default(self):
        cache = LruCache()
        sentinel = object()
        assert cache.get("missing", sentinel) is sentinel
        cache.put("present", None)
        assert cache.get("present", sentinel) is None


class TestFileListCache:
    def setup_method(self):
        self.fs = HdfsFileSystem()
        self.fs.create("/t/sealed/f1", b"x")
        self.fs.create("/t/open/f1", b"y")
        self.cache = FileListCache(self.fs)

    def test_sealed_directory_cached(self):
        before = self.fs.namenode.stats.list_files_calls
        self.cache.list_files("/t/sealed", sealed=True)
        self.cache.list_files("/t/sealed", sealed=True)
        self.cache.list_files("/t/sealed", sealed=True)
        assert self.fs.namenode.stats.list_files_calls == before + 1
        assert self.cache.stats.hits == 2

    def test_open_partition_always_remote(self):
        # Freshness: an open partition is being written by ingestion.
        before = self.fs.namenode.stats.list_files_calls
        self.cache.list_files("/t/open", sealed=False)
        self.fs.create("/t/open/f2", b"new data")
        files = self.cache.list_files("/t/open", sealed=False)
        assert self.fs.namenode.stats.list_files_calls == before + 2
        assert [f.path for f in files] == ["/t/open/f1", "/t/open/f2"]
        assert self.cache.open_partition_bypasses == 2

    def test_invalidate(self):
        self.cache.list_files("/t/sealed", sealed=True)
        self.cache.invalidate("/t/sealed")
        before = self.fs.namenode.stats.list_files_calls
        self.cache.list_files("/t/sealed", sealed=True)
        assert self.fs.namenode.stats.list_files_calls == before + 1


class TestFooterCache:
    def setup_method(self):
        self.fs = HdfsFileSystem()
        schema = ParquetSchema([("x", BIGINT)])
        blob = NativeParquetWriter(schema).write_pages(
            [Page.from_rows([BIGINT], [(i,) for i in range(10)])]
        )
        self.fs.create("/data/f.parquet", blob)
        self.cache = FileHandleAndFooterCache(self.fs)

    def test_get_file_info_cached(self):
        before = self.fs.namenode.stats.get_file_info_calls
        for _ in range(5):
            self.cache.get_file_info("/data/f.parquet")
        assert self.fs.namenode.stats.get_file_info_calls == before + 1
        assert self.cache.handle_stats.hits == 4

    def test_footer_cached(self):
        first = self.cache.get_footer("/data/f.parquet")
        second = self.cache.get_footer("/data/f.parquet")
        assert first is second
        assert self.cache.footer_stats.hits == 1

    def test_rewritten_file_not_served_stale(self):
        self.cache.get_footer("/data/f.parquet")
        # Rewrite with different contents and a new modification time.
        self.fs.clock.advance(1000)
        schema = ParquetSchema([("x", BIGINT)])
        blob = NativeParquetWriter(schema).write_pages(
            [Page.from_rows([BIGINT], [(99,)])]
        )
        self.fs.create("/data/f.parquet", blob)
        self.cache.invalidate("/data/f.parquet")  # handle refresh
        footer = self.cache.get_footer("/data/f.parquet")
        assert footer.num_rows == 1

    def test_open_parquet_uses_cached_footer(self):
        self.cache.get_footer("/data/f.parquet")
        file = self.cache.open_parquet("/data/f.parquet")
        assert file.metadata.num_rows == 10
        assert self.cache.footer_stats.hits >= 1


class TestMetastoreCache:
    def test_version_keyed_invalidation(self):
        metastore = HiveMetastore()
        metastore.create_table("db", "t", [("x", BIGINT)], [("p", VARCHAR)])
        cache = VersionedMetastoreCache(metastore)
        cache.get_table("db", "t")
        cache.get_table("db", "t")
        assert cache.stats.hits == 1
        # Mutation bumps the version: next read misses (fresh data).
        metastore.add_partition("db", "t", ["a"])
        table = cache.get_table("db", "t")
        assert ("a",) in table.partitions
        assert cache.stats.misses == 2


class TestFragmentResultCache:
    def test_caches_by_plan_split_and_version(self):
        cache = FragmentResultCache()
        computed = []

        def compute():
            computed.append(1)
            return [Page.from_rows([BIGINT], [(1,)])]

        key = cache.fragment_key("Scan(t)->Agg(count)", "split-1", data_version=5)
        cache.get_or_compute(key, compute)
        cache.get_or_compute(key, compute)
        assert len(computed) == 1
        # New data version → recompute.
        key2 = cache.fragment_key("Scan(t)->Agg(count)", "split-1", data_version=6)
        cache.get_or_compute(key2, compute)
        assert len(computed) == 2
