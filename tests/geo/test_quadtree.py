"""QuadTree and GeoIndex tests (section VI.D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.geometry import BoundingBox, Point, Polygon
from repro.geo.quadtree import GeoIndex, QuadTree


def square(x, y, size=1.0):
    return Polygon([(x, y), (x + size, y), (x + size, y + size), (x, y + size), (x, y)])


class TestQuadTree:
    def test_point_query_finds_containing_boxes(self):
        tree = QuadTree(BoundingBox(0, 0, 16, 16))
        tree.insert(1, BoundingBox(0, 0, 4, 4))
        tree.insert(2, BoundingBox(8, 8, 12, 12))
        tree.insert(3, BoundingBox(2, 2, 10, 10))
        assert sorted(tree.query_point(3, 3)) == [1, 3]
        assert sorted(tree.query_point(9, 9)) == [2, 3]
        assert tree.query_point(15, 1) == []

    def test_splits_past_capacity(self):
        tree = QuadTree(BoundingBox(0, 0, 16, 16), capacity=4)
        for i in range(40):
            x = (i % 8) * 2
            y = (i // 8) * 2
            tree.insert(i, BoundingBox(x, y, x + 0.5, y + 0.5))
        assert tree.depth() > 0
        assert len(tree) == 40

    def test_box_query(self):
        tree = QuadTree(BoundingBox(0, 0, 16, 16))
        tree.insert(1, BoundingBox(0, 0, 4, 4))
        tree.insert(2, BoundingBox(10, 10, 12, 12))
        assert tree.query_box(BoundingBox(3, 3, 11, 11)) == [1, 2]
        assert tree.query_box(BoundingBox(5, 5, 6, 6)) == []

    def test_straddling_boxes_stay_at_parent(self):
        # A box crossing the midline cannot descend into a child quadrant.
        tree = QuadTree(BoundingBox(0, 0, 16, 16), capacity=1)
        tree.insert(1, BoundingBox(7, 7, 9, 9))  # straddles the center
        tree.insert(2, BoundingBox(1, 1, 2, 2))
        tree.insert(3, BoundingBox(14, 14, 15, 15))
        assert 1 in tree.query_point(8, 8)

    def test_paper_figure11_grid(self):
        # Figure 11 indexes a 4x4 square space.
        tree = QuadTree(BoundingBox(0, 0, 4, 4), capacity=2)
        for i in range(4):
            for j in range(4):
                tree.insert(i * 4 + j, BoundingBox(j, i, j + 1, i + 1))
        hits = tree.query_point(2.5, 1.5)
        assert 4 * 1 + 2 in hits  # cell at row 1, column 2


class TestGeoIndex:
    def test_candidates_superset_of_containing(self):
        cities = [(i, square(i * 3, 0)) for i in range(10)]
        index = GeoIndex.build(cities)
        point = Point(4.5, 0.5)  # inside city 1's square (x in [3,4])? no: [3,4] -> 4.5 outside
        candidates = set(index.candidates(point))
        containing = set(index.containing(point))
        assert containing <= candidates

    def test_containing_exact(self):
        cities = [(i, square(i * 3, 0)) for i in range(5)]
        index = GeoIndex.build(cities)
        assert index.containing(Point(3.5, 0.5)) == [1]
        assert index.containing(Point(2.0, 0.5)) == []  # gap between squares

    def test_none_geometries_skipped(self):
        index = GeoIndex.build([(0, square(0, 0)), (1, None)])
        assert len(index) == 1

    def test_empty_index(self):
        index = GeoIndex.build([])
        assert index.candidates(Point(0, 0)) == []

    def test_geometry_accessor(self):
        s = square(0, 0)
        index = GeoIndex.build([(7, s)])
        assert index.geometry(7) is s


# -- property tests: the index agrees with brute force -------------------------

boxes = st.tuples(
    st.floats(0, 90, allow_nan=False),
    st.floats(0, 90, allow_nan=False),
    st.floats(0.1, 10, allow_nan=False),
    st.floats(0.1, 10, allow_nan=False),
).map(lambda t: BoundingBox(t[0], t[1], t[0] + t[2], t[1] + t[3]))


@given(st.lists(boxes, min_size=1, max_size=60), st.floats(0, 100), st.floats(0, 100))
@settings(max_examples=150, deadline=None)
def test_quadtree_matches_brute_force_property(box_list, x, y):
    bounds = box_list[0]
    for box in box_list[1:]:
        bounds = bounds.union(box)
    tree = QuadTree(bounds, capacity=4, max_depth=8)
    for i, box in enumerate(box_list):
        tree.insert(i, box)
    expected = sorted(i for i, box in enumerate(box_list) if box.contains(x, y))
    assert sorted(tree.query_point(x, y)) == expected


@given(st.lists(boxes, min_size=1, max_size=40), boxes)
@settings(max_examples=100, deadline=None)
def test_quadtree_box_query_matches_brute_force(box_list, probe):
    bounds = box_list[0]
    for box in box_list[1:]:
        bounds = bounds.union(box)
    tree = QuadTree(bounds, capacity=4, max_depth=8)
    for i, box in enumerate(box_list):
        tree.insert(i, box)
    expected = sorted(i for i, box in enumerate(box_list) if box.intersects(probe))
    assert sorted(tree.query_box(probe)) == expected
