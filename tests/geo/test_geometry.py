"""Geometry and WKT tests (section VI.A)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.geometry import BoundingBox, MultiPolygon, Point, Polygon
from repro.geo.wkt import format_wkt, parse_wkt

SQUARE = Polygon([(0, 0), (4, 0), (4, 4), (0, 4), (0, 0)])


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance(Point(3, 4)) == 5.0

    def test_bounding_box_degenerate(self):
        box = Point(2, 3).bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (2, 3, 2, 3)


class TestBoundingBox:
    def test_contains(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains(1, 1)
        assert box.contains(0, 0)  # boundary inclusive
        assert not box.contains(3, 1)

    def test_intersects(self):
        a = BoundingBox(0, 0, 2, 2)
        assert a.intersects(BoundingBox(1, 1, 3, 3))
        assert a.intersects(BoundingBox(2, 2, 3, 3))  # touching counts
        assert not a.intersects(BoundingBox(2.1, 2.1, 3, 3))

    def test_union(self):
        u = BoundingBox(0, 0, 1, 1).union(BoundingBox(2, -1, 3, 0.5))
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0, -1, 3, 1)


class TestPolygon:
    def test_interior_point(self):
        assert SQUARE.contains_point(Point(2, 2))

    def test_exterior_point(self):
        assert not SQUARE.contains_point(Point(5, 2))
        assert not SQUARE.contains_point(Point(-1, -1))

    def test_boundary_point_counts_inside(self):
        assert SQUARE.contains_point(Point(0, 2))
        assert SQUARE.contains_point(Point(4, 4))

    def test_vertex_count(self):
        assert SQUARE.vertex_count() == 4

    def test_concave_polygon(self):
        # A "C" shape: point inside the notch is outside the polygon.
        c_shape = Polygon(
            [(0, 0), (4, 0), (4, 1), (1, 1), (1, 3), (4, 3), (4, 4), (0, 4), (0, 0)]
        )
        assert c_shape.contains_point(Point(0.5, 2))
        assert not c_shape.contains_point(Point(2.5, 2))  # in the notch

    def test_unclosed_ring_rejected(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1), (0, 0)])

    def test_ray_cast_matches_contains_inside_bbox(self):
        for point in [Point(2, 2), Point(5, 2), Point(0.1, 3.9)]:
            if SQUARE.bounding_box().contains(point.x, point.y):
                assert SQUARE.ray_cast(point) == SQUARE.contains_point(point)


class TestMultiPolygon:
    def test_contains_in_any_member(self):
        other = Polygon([(10, 10), (12, 10), (12, 12), (10, 12), (10, 10)])
        multi = MultiPolygon([SQUARE, other])
        assert multi.contains_point(Point(2, 2))
        assert multi.contains_point(Point(11, 11))
        assert not multi.contains_point(Point(7, 7))

    def test_vertex_count_sums(self):
        other = Polygon([(10, 10), (12, 10), (12, 12), (10, 12), (10, 10)])
        assert MultiPolygon([SQUARE, other]).vertex_count() == 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiPolygon([])


class TestWkt:
    def test_paper_point_example(self):
        geometry = parse_wkt("POINT (77.3548351 28.6973627)")
        assert geometry == Point(77.3548351, 28.6973627)

    def test_paper_polygon_example(self):
        wkt = (
            "POLYGON ((36.814155579 -1.3174386070000002, "
            "36.814863682 -1.317545867, "
            "36.814863682 -1.318221605, "
            "36.813973188 -1.317910551, "
            "36.814155579 -1.3174386070000002))"
        )
        polygon = parse_wkt(wkt)
        assert polygon.vertex_count() == 4

    def test_multipolygon(self):
        geometry = parse_wkt(
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))"
        )
        assert isinstance(geometry, MultiPolygon)
        assert len(geometry.polygons) == 2

    def test_format_round_trip(self):
        for geometry in [Point(1.5, -2.25), SQUARE]:
            assert parse_wkt(format_wkt(geometry)) == geometry

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_wkt("LINESTRING (0 0, 1 1)")
        with pytest.raises(ValueError):
            parse_wkt("POINT (1)")
        with pytest.raises(ValueError):
            parse_wkt("POINT (1 2) extra")

    def test_interior_rings_rejected(self):
        with pytest.raises(ValueError):
            parse_wkt("POLYGON ((0 0, 4 0, 4 4, 0 0), (1 1, 2 1, 2 2, 1 1))")


# -- property tests -----------------------------------------------------------

coords = st.floats(min_value=-180, max_value=180, allow_nan=False).map(
    lambda v: round(v, 6)
)


@given(coords, coords)
@settings(max_examples=100, deadline=None)
def test_point_wkt_round_trip_property(x, y):
    assert parse_wkt(format_wkt(Point(x, y))) == Point(x, y)


@st.composite
def regular_polygons(draw):
    cx = draw(st.floats(-50, 50, allow_nan=False))
    cy = draw(st.floats(-50, 50, allow_nan=False))
    radius = draw(st.floats(0.5, 10, allow_nan=False))
    vertices = draw(st.integers(3, 40))
    ring = [
        (
            round(cx + radius * math.cos(2 * math.pi * i / vertices), 9),
            round(cy + radius * math.sin(2 * math.pi * i / vertices), 9),
        )
        for i in range(vertices)
    ]
    ring.append(ring[0])
    return Polygon(ring), (cx, cy), radius


@given(regular_polygons())
@settings(max_examples=100, deadline=None)
def test_regular_polygon_contains_center(polygon_center_radius):
    polygon, (cx, cy), _ = polygon_center_radius
    assert polygon.contains_point(Point(cx, cy))


@given(regular_polygons(), st.floats(1.5, 4, allow_nan=False), st.floats(0, 2 * math.pi))
@settings(max_examples=100, deadline=None)
def test_regular_polygon_excludes_far_points(polygon_center_radius, factor, angle):
    polygon, (cx, cy), radius = polygon_center_radius
    outside = Point(cx + factor * radius * math.cos(angle), cy + factor * radius * math.sin(angle))
    assert not polygon.contains_point(outside)


@given(regular_polygons())
@settings(max_examples=60, deadline=None)
def test_polygon_wkt_round_trip_property(polygon_center_radius):
    polygon, _, _ = polygon_center_radius
    assert parse_wkt(format_wkt(polygon)) == polygon
