"""Direct unit tests for the AST → SQL formatter and its dialects.

The Hypothesis round-trip suite (test_formatter_roundtrip) checks
parse(format(q)) == q; these tests pin the exact rendered text, dialect
quoting, and function-name translation the Presto-on-Spark translator
depends on.
"""

import pytest

from repro.sql import ast, parse_sql
from repro.sql.formatter import PRESTO, SPARK, Dialect, format_query


def render(sql, dialect=PRESTO):
    return format_query(parse_sql(sql), dialect)


class TestDialect:
    def test_function_translation_is_case_insensitive(self):
        assert SPARK.function("APPROX_DISTINCT") == "approx_count_distinct"
        assert SPARK.function("strpos") == "instr"

    def test_unknown_functions_pass_through(self):
        assert SPARK.function("sum") == "sum"
        assert PRESTO.function("approx_distinct") == "approx_distinct"

    def test_custom_dialect(self):
        dialect = Dialect(name="x", quote_char="'", function_names={"f": "g"})
        assert dialect.function("F") == "g"


class TestPrestoRendering:
    def test_select_where(self):
        assert (
            render("SELECT a, b AS x FROM t WHERE a > 1 AND b < 2")
            == "SELECT a, b AS x FROM t WHERE ((a > 1) AND (b < 2))"
        )

    def test_group_order_limit(self):
        assert (
            render("SELECT count(*), count(DISTINCT k) FROM t GROUP BY k "
                   "ORDER BY k DESC LIMIT 3")
            == "SELECT count(*), count(DISTINCT k) FROM t "
               "GROUP BY k ORDER BY k DESC LIMIT 3"
        )

    def test_join_condition_parenthesized(self):
        assert (
            render("SELECT * FROM a JOIN b ON a.id = b.id")
            == "SELECT * FROM a JOIN b ON (a.id = b.id)"
        )

    def test_predicates(self):
        assert (
            render("SELECT * FROM t WHERE a IN (1, 2)")
            == "SELECT * FROM t WHERE (a IN (1, 2))"
        )
        assert (
            render("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5")
            == "SELECT * FROM t WHERE (a NOT BETWEEN 1 AND 5)"
        )
        assert (
            render("SELECT * FROM t WHERE s LIKE 'x%'")
            == "SELECT * FROM t WHERE (s LIKE 'x%')"
        )
        assert (
            render("SELECT * FROM t WHERE s IS NOT NULL")
            == "SELECT * FROM t WHERE (s IS NOT NULL)"
        )

    def test_case_cast_subscript_lambda(self):
        assert (
            render("SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t")
            == "SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t"
        )
        assert render("SELECT CAST(a AS double) FROM t") == (
            "SELECT CAST(a AS double) FROM t"
        )
        assert render("SELECT x[1], (a, b) -> a FROM t") == (
            "SELECT x[1], (a, b) -> a FROM t"
        )

    def test_union_all(self):
        assert (
            render("SELECT a FROM t UNION ALL SELECT b FROM u")
            == "SELECT a FROM t UNION ALL SELECT b FROM u"
        )

    def test_literals(self):
        assert (
            render("SELECT 'it''s', NULL, TRUE, 1.5 FROM t")
            == "SELECT 'it''s', NULL, TRUE, 1.5 FROM t"
        )


class TestIdentifierQuoting:
    def test_plain_lowercase_names_unquoted(self):
        assert render("SELECT abc_1 FROM t") == "SELECT abc_1 FROM t"

    def test_non_plain_names_quoted_with_dialect_char(self):
        sql = 'SELECT "Weird Name" FROM "My Table"'
        assert render(sql) == 'SELECT "Weird Name" FROM "My Table"'
        assert render(sql, SPARK) == "SELECT `Weird Name` FROM `My Table`"

    def test_keywords_quoted(self):
        # "select" as a column name must come back out quoted.
        query = ast.Query(
            select_items=[ast.SelectItem(ast.Identifier(("select",)))],
            from_relation=ast.TableReference(("t",)),
        )
        assert format_query(query) == 'SELECT "select" FROM t'


class TestSparkTranslation:
    def test_function_names_rewritten(self):
        assert (
            render("SELECT approx_distinct(k), strpos(s, 'x') FROM facts", SPARK)
            == "SELECT approx_count_distinct(k), instr(s, 'x') FROM facts"
        )

    def test_presto_dialect_keeps_names(self):
        assert (
            render("SELECT approx_distinct(k) FROM facts")
            == "SELECT approx_distinct(k) FROM facts"
        )

    def test_spark_output_reparses(self):
        rendered = render(
            "SELECT k, approx_distinct(v) FROM facts GROUP BY k", SPARK
        )
        assert parse_sql(rendered)  # valid SQL in our grammar


class TestErrors:
    def test_unknown_relation_type_rejected(self):
        class FakeRelation(ast.Relation):
            pass

        query = ast.Query(
            select_items=[ast.SelectItem(ast.Star())],
            from_relation=FakeRelation(),
        )
        with pytest.raises(ValueError):
            format_query(query)
