"""Parser unit tests, including the paper's example queries."""

import pytest

from repro.common.errors import SyntaxError_
from repro.sql import ast, parse_sql


class TestBasicSelect:
    def test_select_columns(self):
        q = parse_sql("SELECT a, b FROM t")
        assert len(q.select_items) == 2
        assert q.select_items[0].expression == ast.Identifier(("a",))
        assert q.from_relation == ast.TableReference(("t",))

    def test_select_star(self):
        q = parse_sql("SELECT * FROM t")
        assert isinstance(q.select_items[0].expression, ast.Star)

    def test_qualified_table_name(self):
        q = parse_sql("SELECT x FROM mysql.mydb.users")
        assert q.from_relation.parts == ("mysql", "mydb", "users")

    def test_aliases(self):
        q = parse_sql("SELECT a AS x, b y FROM t z")
        assert q.select_items[0].alias == "x"
        assert q.select_items[1].alias == "y"
        assert q.from_relation.alias == "z"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_limit(self):
        assert parse_sql("SELECT a FROM t LIMIT 10").limit == 10

    def test_no_from(self):
        q = parse_sql("SELECT 1 + 1")
        assert q.from_relation is None


class TestPaperQueries:
    def test_uber_trips_query(self):
        # Section V.C: the nested-data example query.
        q = parse_sql(
            "SELECT base.driver_uuid FROM rawdata.schemaless_mezzanine_trips_rows "
            "WHERE datestr = '2017-03-02' AND base.city_id in (12)"
        )
        assert q.select_items[0].expression == ast.Identifier(("base", "driver_uuid"))
        where = q.where
        assert isinstance(where, ast.BinaryOp)
        assert where.operator == "and"
        assert isinstance(where.right, ast.InPredicate)

    def test_geospatial_query(self):
        # Section VI.C: the trips-per-city geospatial join.
        q = parse_sql(
            "SELECT c.city_id, count(*) FROM trips_table as t "
            "JOIN city_table as c "
            "ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat)) "
            "WHERE datestr = '2017-08-01' GROUP BY 1"
        )
        join = q.from_relation
        assert isinstance(join, ast.Join)
        assert join.join_type == "inner"
        assert isinstance(join.condition, ast.FunctionCall)
        assert join.condition.name == "st_contains"
        assert q.group_by == (ast.Literal(1),)

    def test_druid_style_aggregation(self):
        # Figure 2: SELECT columnA, max(columnB) FROM T WHERE pred GROUP BY columnA
        q = parse_sql(
            "SELECT columnA, max(columnB) FROM T WHERE columnA > 5 GROUP BY columnA"
        )
        agg = q.select_items[1].expression
        assert isinstance(agg, ast.FunctionCall)
        assert agg.name == "max"


class TestExpressions:
    def expr(self, text):
        return parse_sql(f"SELECT {text}").select_items[0].expression

    def test_precedence(self):
        e = self.expr("1 + 2 * 3")
        assert isinstance(e, ast.BinaryOp) and e.operator == "+"
        assert isinstance(e.right, ast.BinaryOp) and e.right.operator == "*"

    def test_and_or_precedence(self):
        e = self.expr("a or b and c")
        assert e.operator == "or"
        assert e.right.operator == "and"

    def test_parentheses(self):
        e = self.expr("(1 + 2) * 3")
        assert e.operator == "*"
        assert e.left.operator == "+"

    def test_not(self):
        e = self.expr("not a")
        assert isinstance(e, ast.UnaryOp) and e.operator == "not"

    def test_unary_minus(self):
        e = self.expr("-x")
        assert isinstance(e, ast.UnaryOp) and e.operator == "-"

    def test_between(self):
        e = self.expr("x between 1 and 10")
        assert isinstance(e, ast.BetweenPredicate)
        assert not e.negated

    def test_not_between(self):
        e = self.expr("x not between 1 and 10")
        assert isinstance(e, ast.BetweenPredicate)
        assert e.negated

    def test_in_list(self):
        e = self.expr("city_id in (1, 2, 3)")
        assert isinstance(e, ast.InPredicate)
        assert len(e.candidates) == 3

    def test_not_in(self):
        e = self.expr("x not in (1)")
        assert e.negated

    def test_like(self):
        e = self.expr("name like 'SF%'")
        assert isinstance(e, ast.LikePredicate)

    def test_is_null_and_is_not_null(self):
        assert not self.expr("x is null").negated
        assert self.expr("x is not null").negated

    def test_cast(self):
        e = self.expr("cast(x as bigint)")
        assert isinstance(e, ast.Cast)
        assert e.target_type == "bigint"

    def test_cast_parametric_type(self):
        e = self.expr("cast(x as map(varchar, double))")
        assert e.target_type == "map(varchar, double)"

    def test_case(self):
        e = self.expr("case when x > 1 then 'big' else 'small' end")
        assert isinstance(e, ast.CaseExpression)
        assert len(e.when_clauses) == 1
        assert e.default == ast.Literal("small")

    def test_lambda_single_param(self):
        e = self.expr("transform(arr, x -> x + 1)")
        lam = e.arguments[1]
        assert isinstance(lam, ast.LambdaExpression)
        assert lam.parameters == ("x",)

    def test_lambda_multi_param(self):
        e = self.expr("reduce(arr, 0, (s, x) -> s + x, s -> s)")
        lam = e.arguments[2]
        assert isinstance(lam, ast.LambdaExpression)
        assert lam.parameters == ("s", "x")

    def test_subscript(self):
        e = self.expr("m['key']")
        assert isinstance(e, ast.SubscriptExpression)

    def test_nested_dereference_identifier(self):
        e = self.expr("t.base.city_id")
        assert e == ast.Identifier(("t", "base", "city_id"))

    def test_count_star(self):
        e = self.expr("count(*)")
        assert isinstance(e, ast.FunctionCall)
        assert e.arguments == ()

    def test_count_distinct(self):
        e = self.expr("count(distinct x)")
        assert e.distinct

    def test_string_concat_operator(self):
        e = self.expr("a || b")
        assert e.operator == "||"


class TestJoins:
    def test_left_join(self):
        q = parse_sql("SELECT * FROM a LEFT JOIN b ON a.id = b.id")
        assert q.from_relation.join_type == "left"

    def test_left_outer_join(self):
        q = parse_sql("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id")
        assert q.from_relation.join_type == "left"

    def test_cross_join(self):
        q = parse_sql("SELECT * FROM a CROSS JOIN b")
        assert q.from_relation.join_type == "cross"
        assert q.from_relation.condition is None

    def test_chained_joins(self):
        q = parse_sql(
            "SELECT * FROM a JOIN b ON a.id = b.id JOIN c ON b.id = c.id"
        )
        outer = q.from_relation
        assert isinstance(outer.left, ast.Join)

    def test_subquery_relation(self):
        q = parse_sql("SELECT x FROM (SELECT y AS x FROM t) sub")
        assert isinstance(q.from_relation, ast.SubqueryRelation)
        assert q.from_relation.alias == "sub"


class TestOrderGroupHaving:
    def test_group_by_multiple(self):
        q = parse_sql("SELECT a, b, count(*) FROM t GROUP BY a, b")
        assert len(q.group_by) == 2

    def test_having(self):
        q = parse_sql("SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 5")
        assert isinstance(q.having, ast.BinaryOp)

    def test_order_by_desc(self):
        q = parse_sql("SELECT a FROM t ORDER BY a DESC, b")
        assert not q.order_by[0].ascending
        assert q.order_by[1].ascending


class TestParserErrors:
    def test_missing_from_table(self):
        with pytest.raises(SyntaxError_):
            parse_sql("SELECT a FROM")

    def test_trailing_garbage(self):
        with pytest.raises(SyntaxError_):
            parse_sql("SELECT a FROM t extra garbage here")

    def test_bad_limit(self):
        with pytest.raises(SyntaxError_):
            parse_sql("SELECT a FROM t LIMIT 'x'")

    def test_unbalanced_parens(self):
        with pytest.raises(SyntaxError_):
            parse_sql("SELECT (1 + 2 FROM t")

    def test_empty_case(self):
        with pytest.raises(SyntaxError_):
            parse_sql("SELECT case else 1 end")
