"""Identifier quoting through the parser, formatter, and translator."""

import pytest

from repro.sql import parse_sql
from repro.sql.formatter import PRESTO, SPARK, format_query
from repro.spark.translator import QueryTranslator


class TestQuoting:
    def test_quoted_table_round_trips(self):
        sql = 'SELECT count(*) FROM "orders$snapshot=2"'
        rendered = format_query(parse_sql(sql), PRESTO)
        assert '"orders$snapshot=2"' in rendered
        assert parse_sql(rendered) == parse_sql(sql)

    def test_mixed_case_column_round_trips(self):
        sql = 'SELECT "MixedCase" FROM t'
        rendered = format_query(parse_sql(sql), PRESTO)
        assert '"MixedCase"' in rendered
        assert parse_sql(rendered) == parse_sql(sql)

    def test_keyword_as_identifier_gets_quoted(self):
        sql = 'SELECT "end" FROM t'
        rendered = format_query(parse_sql(sql), PRESTO)
        assert '"end"' in rendered
        assert parse_sql(rendered) == parse_sql(sql)

    def test_plain_names_stay_unquoted(self):
        rendered = format_query(parse_sql("SELECT city_id FROM trips t"), PRESTO)
        assert '"' not in rendered

    def test_spark_uses_backticks(self):
        rendered = format_query(
            parse_sql('SELECT count(*) FROM "orders$snapshot=2"'), SPARK
        )
        assert "`orders$snapshot=2`" in rendered

    def test_backtick_sql_parses(self):
        # The batch engine must parse the Spark dialect it is handed.
        assert parse_sql("SELECT `x` FROM `weird$name`") == parse_sql(
            'SELECT "x" FROM "weird$name"'
        )

    def test_translator_round_trip_through_batch_parser(self):
        translator = QueryTranslator()
        spark_sql = translator.translate(
            'SELECT approx_distinct(k) FROM "orders$snapshot=1" WHERE k > 2'
        )
        # The produced text parses with the same frontend the batch engine uses.
        parsed = parse_sql(spark_sql)
        assert parsed.from_relation.parts == ("orders$snapshot=1",)
