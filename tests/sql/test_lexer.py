"""Lexer unit tests."""

import pytest

from repro.common.errors import SyntaxError_
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)][:-1]  # drop END


def texts(sql):
    return [t.value for t in tokenize(sql)][:-1]


class TestTokenKinds:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])
        assert [t.value for t in tokens[:-1]] == ["select"] * 3

    def test_identifiers(self):
        tokens = tokenize("city_id base$col Trips")
        assert all(t.type is TokenType.IDENTIFIER for t in tokens[:-1])
        assert tokens[2].value == "trips"  # normalized lowercase

    def test_quoted_identifier_preserves_case(self):
        tokens = tokenize('"MixedCase"')
        assert tokens[0].type is TokenType.QUOTED_IDENTIFIER
        assert tokens[0].value == "MixedCase"

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e6 2.5E-3")
        assert tokens[0].type is TokenType.INTEGER
        assert tokens[1].type is TokenType.DECIMAL
        assert tokens[2].type is TokenType.DECIMAL
        assert tokens[3].type is TokenType.DECIMAL

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].text == "it's"

    def test_operators(self):
        assert texts("a <> b <= c != d -> e") == ["a", "<>", "b", "<=", "c", "!=", "d", "->", "e"]

    def test_comments_skipped(self):
        sql = """
        SELECT x -- line comment
        /* block
           comment */ FROM t
        """
        assert texts(sql) == ["select", "x", "from", "t"]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.END


class TestLexerErrors:
    def test_unterminated_string(self):
        with pytest.raises(SyntaxError_):
            tokenize("SELECT 'oops")

    def test_unterminated_comment(self):
        with pytest.raises(SyntaxError_):
            tokenize("SELECT /* oops")

    def test_unexpected_character(self):
        with pytest.raises(SyntaxError_):
            tokenize("SELECT @")

    def test_error_carries_position(self):
        with pytest.raises(SyntaxError_) as info:
            tokenize("SELECT\n  @")
        assert info.value.line == 2


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT\n  x")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3
