"""Property: parse → format → parse is the identity on the AST."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import parse_sql
from repro.sql.formatter import PRESTO, format_query

identifiers = st.sampled_from(["a", "b", "c", "city_id", "base"])
literals = st.one_of(
    st.integers(-100, 100),
    st.sampled_from(["'x'", "'it''s'", "TRUE", "FALSE", "NULL", "1.5"]),
)


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        if draw(st.booleans()):
            return draw(identifiers)
        value = draw(literals)
        return str(value)
    kind = draw(st.integers(0, 7))
    if kind == 0:
        left = draw(expressions(depth=depth - 1))
        right = draw(expressions(depth=depth - 1))
        op = draw(st.sampled_from(["+", "-", "*", "=", "<", ">=", "AND", "OR"]))
        return f"({left} {op} {right})"
    if kind == 1:
        inner = draw(expressions(depth=depth - 1))
        return f"(NOT {inner})"
    if kind == 2:
        inner = draw(expressions(depth=depth - 1))
        return f"({inner} IS NULL)"
    if kind == 3:
        inner = draw(identifiers)
        values = draw(st.lists(st.integers(0, 9), min_size=1, max_size=3))
        return f"({inner} IN ({', '.join(map(str, values))}))"
    if kind == 4:
        inner = draw(identifiers)
        return f"({inner} BETWEEN 1 AND 10)"
    if kind == 5:
        inner = draw(expressions(depth=depth - 1))
        return f"lower(cast({inner} AS varchar))"
    if kind == 6:
        cond = draw(expressions(depth=depth - 1))
        return f"CASE WHEN {cond} THEN 1 ELSE 2 END"
    inner = draw(identifiers)
    return f"({inner} LIKE 'x%')"


@st.composite
def queries(draw):
    select = ", ".join(
        draw(st.lists(expressions(), min_size=1, max_size=3))
    )
    sql = f"SELECT {select} FROM t"
    if draw(st.booleans()):
        sql += f" WHERE {draw(expressions())}"
    if draw(st.booleans()):
        sql += f" GROUP BY {draw(identifiers)}"
    if draw(st.booleans()):
        sql += f" ORDER BY 1 DESC"
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(1, 100))}"
    return sql


@given(queries())
@settings(max_examples=250, deadline=None)
def test_parse_format_parse_identity(sql):
    first = parse_sql(sql)
    rendered = format_query(first, PRESTO)
    second = parse_sql(rendered)
    assert first == second


@given(queries())
@settings(max_examples=100, deadline=None)
def test_format_is_idempotent(sql):
    once = format_query(parse_sql(sql), PRESTO)
    twice = format_query(parse_sql(once), PRESTO)
    assert once == twice
