"""Traffic storm: tail latency and goodput vs serving concurrency.

Replays a deterministic zipfian multi-user storm (thousands of queries
in full mode) against one simulated cluster at several resource-group
concurrency caps, reproducing the paper's serving-layer claim: what
separates a production engine is tail latency under concurrent
multi-tenant load, not single-query speed.  Every query executes for
real through the steppable engine path — the cluster event loop
interleaves their tasks on the shared simulated clock — and queries
whose estimated queue wait breaches the admission SLO are shed with
retry-after, so *goodput* (completed queries per simulated second) is
what scales with concurrency.

All latencies are simulated milliseconds, so results are deterministic
per seed and safe to regression-guard across commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_traffic_storm.py            # full
    PYTHONPATH=src python benchmarks/bench_traffic_storm.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json

from _harness import (
    assert_no_regression,
    load_committed_baseline,
    percentile,
    print_table,
)
from repro.common.clock import SimulatedClock
from repro.common.errors import AdmissionRejectedError
from repro.execution.cluster import PrestoClusterSim
from repro.obs.metrics import MetricsRegistry
from repro.workloads.traffic_storm import TrafficStorm, build_traffic_storm, make_storm_engine

QUEUE_SLO_MS = 30_000.0


def replay_storm(
    storm: TrafficStorm,
    max_running: int,
    rows: int,
    workers: int = 8,
    slots_per_worker: int = 4,
    queue_slo_ms: float = QUEUE_SLO_MS,
    tracing: bool = False,
) -> tuple[dict, PrestoClusterSim]:
    """Replay the storm at one concurrency cap; returns (report, cluster)."""
    metrics = MetricsRegistry()
    clock = SimulatedClock()
    cluster = PrestoClusterSim(
        workers=workers,
        slots_per_worker=slots_per_worker,
        clock=clock,
        metrics=metrics,
        name=f"storm-c{max_running}",
    )
    cluster.resource_group("storm", max_running=max_running, queue_slo_ms=queue_slo_ms)
    engine = make_storm_engine(rows=rows, tracing=tracing, metrics=metrics)

    finished: list[tuple] = []  # (StormQuery, QueryHandle, QueryExecution)
    shed: list[tuple] = []  # (StormQuery, retry_after_ms)
    failed: list[tuple] = []

    def submit(query) -> None:
        try:
            handle, execution = cluster.submit_engine_handle(
                engine,
                query.sql,
                user=query.user,
                resource_group=f"storm.{query.user}",
            )
        except AdmissionRejectedError as rejection:
            shed.append((query, rejection.retry_after_ms))
            return
        finished.append((query, handle, execution))

    for query in storm.queries:
        cluster._at(query.arrival_ms, lambda q=query: submit(q))
    cluster.run_until_idle(max_events=10_000_000)

    completed = [(q, h, ex) for q, h, ex in finished if h.state == "finished"]
    failed = [(q, h, ex) for q, h, ex in finished if h.state != "finished"]
    latencies = [ex.latency_ms for _, _, ex in completed]
    queued = [ex.queued_ms for _, _, ex in completed]
    makespan_ms = clock.now_ms()
    report = {
        "concurrency": max_running,
        "queries": len(storm.queries),
        "completed": len(completed),
        "shed": len(shed),
        "failed": len(failed),
        "makespan_ms": round(makespan_ms, 3),
        "p50_ms": round(percentile(latencies, 50), 3),
        "p95_ms": round(percentile(latencies, 95), 3),
        "p99_ms": round(percentile(latencies, 99), 3),
        "queued_p95_ms": round(percentile(queued, 95), 3),
        "goodput_qps": round(len(completed) / makespan_ms * 1000.0, 3)
        if makespan_ms > 0
        else 0.0,
        "max_in_flight": cluster.max_concurrent_running(),
    }
    return report, cluster


def run(smoke: bool) -> dict:
    if smoke:
        storm = build_traffic_storm(queries=40, users=6, seed=11)
        rows = 120
        levels = [1, 4, 16]
    else:
        storm = build_traffic_storm(queries=2000, users=40, seed=11)
        rows = 250
        levels = [1, 8, 64]
    results = []
    for level in levels:
        report, _ = replay_storm(storm, level, rows)
        results.append(report)
    top_user = max(storm.arrivals_by_user().items(), key=lambda item: item[1])
    return {
        "benchmark": "traffic_storm",
        "paper_section": "VIII (gateway/serving) + resource management",
        "smoke": smoke,
        "queries": len(storm.queries),
        "users": len(storm.users),
        "rows": rows,
        "seed": storm.seed,
        "zipf_top_user": {"user": top_user[0], "queries": top_user[1]},
        "queue_slo_ms": QUEUE_SLO_MS,
        "levels": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny storm + skip gates (CI)"
    )
    parser.add_argument(
        "--output", default="BENCH_traffic_storm.json", help="result JSON path"
    )
    args = parser.parse_args()

    # Load the committed baseline *before* the run overwrites it.
    baseline = load_committed_baseline("BENCH_traffic_storm.json")

    report = run(args.smoke)
    print_table(
        "Traffic storm: latency and goodput vs concurrency cap",
        [
            "concurrency",
            "completed",
            "shed",
            "failed",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "queued p95",
            "goodput q/s",
            "max in flight",
        ],
        [
            [
                level["concurrency"],
                level["completed"],
                level["shed"],
                level["failed"],
                level["p50_ms"],
                level["p95_ms"],
                level["p99_ms"],
                level["queued_p95_ms"],
                level["goodput_qps"],
                level["max_in_flight"],
            ]
            for level in report["levels"]
        ],
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.output}")

    levels = report["levels"]
    top = levels[-1]
    serial = levels[0]
    # The acceptance bar: >1 query genuinely in flight at once.
    assert top["max_in_flight"] > 1, "no query overlap at the top concurrency cap"
    assert serial["max_in_flight"] <= 1, "cap=1 must serialize queries"
    assert all(level["failed"] == 0 for level in levels), "queries failed"
    if not args.smoke:
        assert top["goodput_qps"] >= serial["goodput_qps"], (
            "goodput did not improve with concurrency"
        )
        assert top["p95_ms"] <= serial["p95_ms"], (
            "tail latency did not improve with concurrency"
        )
        assert_no_regression(
            baseline, report, "goodput_qps", key="concurrency", section="levels"
        )
        print(
            "targets met: overlap proven, goodput and p95 improve with "
            "concurrency, no goodput regression vs committed baseline"
        )


if __name__ == "__main__":
    main()
