"""Section IX: Presto on cloud — S3 optimizations and graceful elasticity.

Paper claims, each exercised here on the simulated S3/cluster:

1. Lazy seek "saves unnecessary seeks in Amazon S3";
2. Exponential backoff absorbs S3 unavailability;
3. S3 Select pushdown gets "optimal performance" by moving projection
   into S3;
4. Multipart upload "improves uploading throughput";
5. Graceful expansion/shrink lets the cluster ride load without losing
   queries.
"""

from __future__ import annotations

import itertools

import pytest

from _harness import print_table
from repro.common.clock import SimulatedClock
from repro.execution.cluster import PrestoClusterSim, WorkerState
from repro.storage.s3 import S3Client
from repro.storage.s3_filesystem import PrestoS3FileSystem


def footer_style_read(fs, path):
    """A Parquet-reader-like access pattern: footer, then two chunks."""
    stream = fs.open(path)
    size = stream.size()
    stream.seek(size - 16)
    stream.read(16)
    stream.seek(size - 4096)
    stream.read(4096)
    # Planner decides only one chunk is needed; several seeks never read.
    stream.seek(0)
    stream.seek(1_000_000)
    stream.seek(2_000_000)
    stream.read(4096)


def test_sec9_lazy_seek_saves_requests(benchmark):
    def run():
        results = {}
        for lazy in (False, True):
            client = S3Client(clock=SimulatedClock())
            client.put_object("warehouse", "data.parquet", b"x" * 8_000_000)
            fs = PrestoS3FileSystem(client, "warehouse", lazy_seek=lazy)
            client.stats.reset()
            start = client.clock.now_ms()
            for _ in range(20):
                footer_style_read(fs, "/data.parquet")
            results[lazy] = (client.stats.get_requests, client.clock.now_ms() - start)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section IX.1: lazy seek (20 Parquet-style reads)",
        ["mode", "GET requests", "simulated_ms"],
        [
            ("eager seek", results[False][0], f"{results[False][1]:.0f}"),
            ("lazy seek", results[True][0], f"{results[True][1]:.0f}"),
        ],
    )
    assert results[True][0] < results[False][0] * 0.7
    assert results[True][1] < results[False][1]


def test_sec9_exponential_backoff_rides_through_outage(benchmark):
    def run():
        # Ten consecutive failures, then S3 recovers.
        failures = itertools.chain([True] * 10, itertools.repeat(False))
        client = S3Client(
            clock=SimulatedClock(), failure_injector=lambda op: next(failures)
        )
        fs = PrestoS3FileSystem(
            client, "warehouse", max_retries=12, backoff_base_ms=50
        )
        fs.create("/resilient", b"payload")
        return fs.stats.retries, fs.stats.backoff_ms_total, client.get_object("warehouse", "resilient")

    retries, backoff_ms, data = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"survived outage with {retries} retries, {backoff_ms:.0f}ms total backoff "
        "(exponential: 50, 100, 200, ... capped at 10s)"
    )
    assert data == b"payload"
    assert retries == 10
    # Exponential growth capped at backoff_max_ms (default 10 s).
    assert backoff_ms == sum(min(50 * 2**i, 10_000) for i in range(10))


def test_sec9_s3_select_pushdown(benchmark):
    def run():
        client = S3Client(clock=SimulatedClock())
        payload = "\n".join(
            f"{i},city{i % 50},{i * 3}" for i in range(30_000)
        ).encode()
        client.put_object("warehouse", "events.csv", payload)

        client.stats.reset()
        full = client.get_object("warehouse", "events.csv")
        rows_engine_side = [
            line.split(",")[2]
            for line in full.decode().splitlines()
            if line.split(",")[1] == "city7"
        ]
        full_bytes = client.stats.bytes_downloaded

        client.stats.reset()
        fs = PrestoS3FileSystem(client, "warehouse")
        rows_pushed = fs.select(
            "/events.csv", projection=[2], predicate=lambda f: f[1] == "city7"
        )
        select_bytes = client.stats.bytes_downloaded
        assert [r[0] for r in rows_pushed] == rows_engine_side
        return full_bytes, select_bytes

    full_bytes, select_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section IX.3: S3 Select projection pushdown",
        ["strategy", "bytes off S3"],
        [
            ("GET whole object, filter in engine", full_bytes),
            ("SelectObjectContent pushdown", select_bytes),
        ],
    )
    assert select_bytes < full_bytes / 20


def test_sec9_multipart_upload_throughput(benchmark):
    def run():
        payload = b"z" * 64_000_000
        results = {}
        for multipart in (False, True):
            client = S3Client(clock=SimulatedClock())
            fs = PrestoS3FileSystem(
                client,
                "warehouse",
                multipart_threshold=(16_000_000 if multipart else 10**9),
                multipart_part_size=8_000_000,
            )
            start = client.clock.now_ms()
            fs.create("/big-object", payload)
            elapsed = client.clock.now_ms() - start
            results[multipart] = elapsed
            assert client.get_object("warehouse", "big-object") == payload
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    throughput = {
        k: 64_000_000 / (v / 1000.0) / 1_000_000 for k, v in results.items()
    }
    print_table(
        "Section IX.4: multipart upload (64 MB object)",
        ["strategy", "simulated_ms", "MB/s"],
        [
            ("single PUT", f"{results[False]:.0f}", f"{throughput[False]:.0f}"),
            ("multipart (8 MB parts, parallel)", f"{results[True]:.0f}", f"{throughput[True]:.0f}"),
        ],
    )
    assert results[True] < results[False] / 2


def test_sec9_graceful_shrink_drill(benchmark):
    """Shrink half the fleet mid-workload; nothing is lost and the drained
    workers exit via SHUTTING_DOWN → drain → SHUT_DOWN."""

    def run():
        cluster = PrestoClusterSim(workers=8, slots_per_worker=2, clock=SimulatedClock())
        executions = [cluster.submit_query([300.0] * 4) for _ in range(10)]
        victims = list(cluster.workers)[:4]
        for worker_id in victims:
            cluster.request_graceful_shutdown(worker_id, grace_period_ms=500.0)
        late = [cluster.submit_query([300.0] * 4) for _ in range(5)]
        cluster.run_until_idle()
        return cluster, executions + late, victims

    cluster, executions, victims = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(e.finished_at is not None for e in executions)
    assert all(
        cluster.workers[w].state is WorkerState.SHUT_DOWN for w in victims
    )
    survivors = [w for w in cluster.workers.values() if w.state is WorkerState.ACTIVE]
    assert len(survivors) == 4
    print(
        f"drained {len(victims)} workers mid-workload; "
        f"{len(executions)} queries all completed; "
        f"{len(survivors)} workers remain active"
    )
