"""Operator-kernel microbenchmark: vectorized vs row-at-a-time hot path.

Section III's engine claim — column values are processed "vectorized,
instead of row by row" — only pays off if the relational operators keep
data columnar.  This bench measures the two operators that dominate
analytics CPU time, grouped aggregation and hash join, through both the
vectorized kernel layer (``repro.execution.kernels``) and the retained
row-at-a-time reference implementations, asserts the outputs are
identical, and records the speedup trajectory in ``BENCH_operators.json``
for later PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_operator_kernels.py            # full
    PYTHONPATH=src python benchmarks/bench_operator_kernels.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from _harness import print_table
from repro.core.blocks import PrimitiveBlock
from repro.core.expressions import variable
from repro.core.functions import default_registry
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.context import ExecutionContext
from repro.execution.operators.aggregation import (
    execute_aggregation,
    execute_aggregation_rows,
)
from repro.execution.operators.joins import _hash_join_rows, execute_join
from repro.planner.plan import Aggregation, AggregationNode, JoinNode, ValuesNode

PAGE_SIZE = 8192


def _source(names_and_types) -> ValuesNode:
    return ValuesNode(
        output_variables=tuple(variable(n, t) for n, t in names_and_types),
        rows=(),
    )


def _paged(blocks_fn, total: int) -> list[Page]:
    pages = []
    for start in range(0, total, PAGE_SIZE):
        end = min(start + PAGE_SIZE, total)
        pages.append(Page(blocks_fn(start, end)))
    return pages


def make_aggregation_input(rows: int, groups: int, seed: int = 7) -> list[Page]:
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, groups, size=rows).astype(np.int64)
    values = rng.uniform(-100.0, 100.0, size=rows)
    null_mask = rng.random(rows) < 0.05

    def blocks(start, end):
        nulls = null_mask[start:end]
        return [
            PrimitiveBlock(BIGINT, keys[start:end]),
            PrimitiveBlock(DOUBLE, values[start:end], nulls.copy() if nulls.any() else None),
        ]

    return _paged(blocks, rows)


def make_aggregation_node() -> AggregationNode:
    registry = default_registry()
    key = variable("k", BIGINT)
    value = variable("v", DOUBLE)
    aggs = []
    for func, out in (("sum", "s"), ("count", "c"), ("avg", "a")):
        handle, _ = registry.resolve_aggregate(func, [DOUBLE])
        aggs.append(
            Aggregation(
                output=variable(out, handle.resolved_return_type()),
                function_handle=handle,
                arguments=(value,),
            )
        )
    return AggregationNode(
        source=_source([("k", BIGINT), ("v", DOUBLE)]),
        group_keys=(key,),
        aggregations=tuple(aggs),
    )


def make_join_inputs(probe_rows: int, build_rows: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    probe_keys = rng.integers(0, build_rows, size=probe_rows).astype(np.int64)
    probe_values = rng.integers(0, 1000, size=probe_rows).astype(np.int64)
    build_keys = np.arange(build_rows, dtype=np.int64)
    build_values = rng.uniform(0, 1, size=build_rows)

    def probe_blocks(start, end):
        return [
            PrimitiveBlock(BIGINT, probe_keys[start:end]),
            PrimitiveBlock(BIGINT, probe_values[start:end]),
        ]

    def build_blocks(start, end):
        return [
            PrimitiveBlock(BIGINT, build_keys[start:end]),
            PrimitiveBlock(DOUBLE, build_values[start:end]),
        ]

    return _paged(probe_blocks, probe_rows), _paged(build_blocks, build_rows)


def make_join_node() -> JoinNode:
    left = _source([("lk", BIGINT), ("lv", BIGINT)])
    right = _source([("rk", BIGINT), ("rv", DOUBLE)])
    return JoinNode(
        join_type="inner",
        left=left,
        right=right,
        criteria=((left.outputs[0], right.outputs[0]),),
    )


def _time(fn) -> tuple[float, list[Page]]:
    """Time draining an operator into pages (rows are materialized later).

    Both paths produce fully realized blocks, so ``list`` captures the
    operator cost without charging either side for ``to_rows`` — the
    row conversion is only needed for the identical-output check.
    """
    start = time.perf_counter()
    result = list(fn())
    return (time.perf_counter() - start) * 1000.0, result


def _rows(pages: list[Page]) -> list[tuple]:
    rows: list[tuple] = []
    for page in pages:
        rows.extend(page.to_rows())
    return rows


def bench_aggregation(rows: int, groups: int, compare: bool) -> dict:
    node = make_aggregation_node()
    pages = make_aggregation_input(rows, groups)
    vec_ms, vec_pages = _time(
        lambda: execute_aggregation(node, ExecutionContext(catalog=None), iter(pages))
    )
    entry = {
        "name": "grouped_aggregation",
        "rows": rows,
        "groups": groups,
        "aggregates": ["sum", "count", "avg"],
        "vectorized_ms": round(vec_ms, 3),
        "rows_per_sec": round(rows / (vec_ms / 1000.0)) if vec_ms else None,
        "reference_ms": None,
        "speedup": None,
        "identical": None,
    }
    if compare:
        ref_ms, ref_pages = _time(
            lambda: execute_aggregation_rows(
                node, ExecutionContext(catalog=None), iter(pages)
            )
        )
        entry["reference_ms"] = round(ref_ms, 3)
        entry["speedup"] = round(ref_ms / vec_ms, 2) if vec_ms else None
        entry["identical"] = _rows(vec_pages) == _rows(ref_pages)
    return entry


def bench_join(probe_rows: int, build_rows: int, compare: bool) -> dict:
    node = make_join_node()
    probe_pages, build_pages = make_join_inputs(probe_rows, build_rows)
    vec_ms, vec_pages = _time(
        lambda: execute_join(
            node, ExecutionContext(catalog=None), iter(probe_pages), iter(build_pages)
        )
    )
    entry = {
        "name": "hash_join",
        "rows": probe_rows,
        "build_rows": build_rows,
        "vectorized_ms": round(vec_ms, 3),
        "rows_per_sec": round(probe_rows / (vec_ms / 1000.0)) if vec_ms else None,
        "reference_ms": None,
        "speedup": None,
        "identical": None,
    }
    if compare:
        ref_ms, ref_pages = _time(
            lambda: _hash_join_rows(
                node,
                ExecutionContext(catalog=None),
                iter(probe_pages),
                iter(build_pages),
            )
        )
        entry["reference_ms"] = round(ref_ms, 3)
        entry["speedup"] = round(ref_ms / vec_ms, 2) if vec_ms else None
        entry["identical"] = _rows(vec_pages) == _rows(ref_pages)
    return entry


def run(smoke: bool) -> dict:
    if smoke:
        agg_cases = [(5_000, 100, True)]
        join_cases = [(5_000, 500, True)]
    else:
        # Reference timed at 100k (the acceptance comparison); the 1M-row
        # case tracks vectorized throughput only, to keep the bench quick.
        agg_cases = [(100_000, 1_000, True), (1_000_000, 1_000, False)]
        join_cases = [(100_000, 10_000, True), (1_000_000, 10_000, False)]
    benchmarks = [bench_aggregation(r, g, c) for r, g, c in agg_cases]
    benchmarks += [bench_join(p, b, c) for p, b, c in join_cases]
    return {
        "benchmark": "operator_kernels",
        "paper_section": "III (vectorized engine)",
        "smoke": smoke,
        "benchmarks": benchmarks,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes + skip speedup gate (CI)"
    )
    parser.add_argument(
        "--output", default="BENCH_operators.json", help="result JSON path"
    )
    args = parser.parse_args()

    report = run(args.smoke)
    rows = [
        [
            b["name"],
            b["rows"],
            b.get("groups") or b.get("build_rows"),
            b["vectorized_ms"],
            b["reference_ms"] if b["reference_ms"] is not None else "-",
            b["speedup"] if b["speedup"] is not None else "-",
            b["identical"] if b["identical"] is not None else "-",
        ]
        for b in report["benchmarks"]
    ]
    print_table(
        "Operator kernels: vectorized vs row-at-a-time",
        ["operator", "rows", "groups/build", "vec ms", "ref ms", "speedup", "identical"],
        rows,
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.output}")

    compared = [b for b in report["benchmarks"] if b["speedup"] is not None]
    assert all(b["identical"] for b in compared), "vectorized output diverged"
    if not args.smoke:
        for b in compared:
            assert b["speedup"] >= 5.0, (
                f"{b['name']}: speedup {b['speedup']}x below the 5x target"
            )
        print("speedup target met: >=5x on all compared operators")


if __name__ == "__main__":
    main()
