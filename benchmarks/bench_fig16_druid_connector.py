"""Figure 16: Druid vs Presto-Druid connector latency.

Paper setup: 100-node Druid cluster, 100 TB of production data, a 100-node
Presto cluster, and 20 production queries (14 with predicates, 5 with
limits, 12 aggregations).  Paper result: "with predicate pushdown, limit
pushdown, and aggregation pushdown, Presto-Druid connector adds less than
15% overhead, compared with Druid query latency.  Most of the queries
complete within 1 second."

Here both sides run on the simulated Druid cluster with a shared
deterministic clock: the native path queries the cluster directly; the
connector path goes through the full engine (parse → plan → pushdown →
per-segment splits → final merge), with engine CPU time added to the
simulated latency.  An ablation run disables the pushdowns to show why
they are what makes the connector viable.
"""

from __future__ import annotations

import time

import pytest

from _harness import geometric_mean, percentile, print_table
from repro.common.clock import SimulatedClock
from repro.connectors.realtime.druid import DruidConnector
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.planner.optimizer import Optimizer, OptimizerOptions
from repro.workloads.druid_queries import build_druid_workload

SEGMENTS = 16
ROWS_PER_SEGMENT = 12_000
NODES = 100


@pytest.fixture(scope="module")
def workload():
    clock = SimulatedClock()
    return build_druid_workload(
        segments=SEGMENTS, rows_per_segment=ROWS_PER_SEGMENT, nodes=NODES, clock=clock
    )


def make_engine(workload, options=None):
    engine = PrestoEngine(
        session=Session(catalog="druid", schema="druid"),
        clock=workload.cluster.clock,
    )
    engine.register_connector("druid", DruidConnector(workload.cluster))
    if options is not None:
        engine._optimizer = Optimizer(engine.catalog, options=options)
    return engine


def run_query_simulated_ms(workload, fn) -> float:
    """Run ``fn`` and return simulated + engine wall time in ms."""
    clock = workload.cluster.clock
    start_simulated = clock.now_ms()
    start_wall = time.perf_counter()
    fn()
    wall_ms = (time.perf_counter() - start_wall) * 1000.0
    return (clock.now_ms() - start_simulated) + wall_ms


def run_figure16(workload, options=None):
    engine = make_engine(workload, options)
    rows = []
    for query in workload.queries:
        druid_ms = run_query_simulated_ms(
            workload, lambda: workload.cluster.query(query.native)
        )
        presto_ms = run_query_simulated_ms(
            workload, lambda: engine.execute(query.sql)
        )
        rows.append((query.query_id, druid_ms, presto_ms, presto_ms / druid_ms))
    return rows


def test_fig16_druid_vs_presto_druid_connector(workload, benchmark):
    rows = benchmark.pedantic(
        lambda: run_figure16(workload), rounds=1, iterations=1
    )
    print_table(
        "Figure 16: Druid and Presto-Druid connector performance comparison",
        ["query", "druid_ms", "presto_druid_ms", "ratio"],
        [(q, f"{d:.1f}", f"{p:.1f}", f"{r:.3f}") for q, d, p, r in rows],
    )
    ratios = [r for _, _, _, r in rows]
    overhead = geometric_mean(ratios) - 1.0
    presto_latencies = [p for _, _, p, _ in rows]
    print(
        f"geomean connector overhead: {overhead * 100.0:.1f}%  "
        f"(paper: <15%); queries under 1s: "
        f"{sum(1 for p in presto_latencies if p < 1000)}/{len(presto_latencies)}"
    )
    benchmark.extra_info["geomean_overhead_pct"] = overhead * 100.0

    # Paper shape: <15% aggregate overhead, most queries sub-second.
    assert overhead < 0.15
    assert sum(1 for p in presto_latencies if p < 1000.0) >= len(presto_latencies) * 0.7


def test_fig16_ablation_without_pushdown(workload, benchmark):
    """Without pushdown, raw rows stream into the engine and the connector
    stops being competitive — the motivation for section IV.B."""
    options = OptimizerOptions(
        predicate_pushdown=False, limit_pushdown=False, aggregation_pushdown=False
    )
    rows = benchmark.pedantic(
        lambda: run_figure16(workload, options), rounds=1, iterations=1
    )
    ratios = [r for _, _, _, r in rows]
    overhead = geometric_mean(ratios) - 1.0
    print(
        f"geomean connector overhead WITHOUT pushdowns: {overhead * 100.0:.1f}% "
        "(paper motivation: pushdown is what makes the connector real-time)"
    )
    benchmark.extra_info["geomean_overhead_pct"] = overhead * 100.0
    assert overhead > 0.5  # dramatically worse than the <15% pushdown run
