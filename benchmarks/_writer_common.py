"""Shared driver for the writer throughput benchmarks (figures 18-20).

Paper setup: 100-node cluster on AWS r5.8xlarge, "writing a list of pages
with millions of rows" per dataset, reporting MB/s for Snappy, Gzip, and
no compression.  Paper result: "our native Parquet writer could
consistently achieve more than 20% throughput" improvement; bigint with
Gzip improves most; all-LINEITEM gains ≈50%.

Throughput here = logical (in-memory) bytes written per second of writer
wall-clock time, on deterministically generated datasets scaled to run in
seconds instead of hours.
"""

from __future__ import annotations

from _harness import print_table, wall_time_ms
from repro.formats.parquet.writer_native import NativeParquetWriter
from repro.formats.parquet.writer_old import OldParquetWriter

FLAT_ROWS = 60_000
NESTED_ROWS = 6_000

_NESTED = ("Map", "Array", "Lineitem")


def dataset_rows(name: str) -> int:
    """Nested datasets shred per-value; scale them down to stay snappy."""
    if any(tag in name for tag in ("Map", "Array")):
        return NESTED_ROWS
    if "Lineitem" in name:
        return NESTED_ROWS * 2
    return FLAT_ROWS


def run_writer_comparison(codec: str):
    """Return [(dataset, old MB/s, native MB/s, gain)] for one codec."""
    from repro.workloads.tpch import WRITER_DATASET_NAMES, writer_benchmark_dataset

    import gc

    results = []
    for name in WRITER_DATASET_NAMES:
        _, schema, page = writer_benchmark_dataset(name, dataset_rows(name))
        logical_mb = page.size_in_bytes() / 1_000_000
        gc.collect()
        old_ms, old_blob = wall_time_ms(
            lambda: OldParquetWriter(schema, codec=codec).write_pages([page]),
            repeat=2,
        )
        gc.collect()
        native_ms, native_blob = wall_time_ms(
            lambda: NativeParquetWriter(schema, codec=codec).write_pages([page]),
            repeat=2,
        )
        assert old_blob == native_blob  # identical files, different cost
        old_mbs = logical_mb / (old_ms / 1000.0)
        native_mbs = logical_mb / (native_ms / 1000.0)
        results.append((name, old_mbs, native_mbs, native_mbs / old_mbs))
    return results


def report_and_assert(results, codec: str, benchmark) -> None:
    print_table(
        f"Writer throughput comparison: {codec}",
        ["dataset", "old MB/s", "native MB/s", "gain"],
        [(n, f"{o:.1f}", f"{v:.1f}", f"{g:.2f}x") for n, o, v, g in results],
    )
    gains = {name: gain for name, _, _, gain in results}
    benchmark.extra_info["gains"] = {k: round(v, 2) for k, v in gains.items()}

    # Paper shape: native consistently ≥20% faster on every dataset.
    assert all(gain > 1.2 for gain in gains.values()), gains
    # Bigint is among the biggest winners (the paper's standout was
    # bigint+Gzip at +650%).
    assert gains["Bigint Sequential"] > 2.0
    assert gains["Bigint Random"] > 2.0
