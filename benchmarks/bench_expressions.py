"""Expression-compiler microbenchmark: compiled kernels vs interpreter.

Expression evaluation sits under every WHERE clause, projection, and
connector predicate, so this bench measures the three paths the compiler
changes: null-bearing numeric filters (the old "any null ⇒ Python loop"
bail-out), string-heavy predicates (the old object-dtype bail-out), and
dictionary-encoded columns (O(rows) → O(distinct) evaluation, paper §V).
Each suite runs the identical expression through the compiled lane and
the retained interpreter oracle, asserts byte-identical output, and
records the speedups in ``BENCH_expressions.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_expressions.py            # full
    PYTHONPATH=src python benchmarks/bench_expressions.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from _harness import print_table
from repro.core.blocks import DictionaryBlock, PrimitiveBlock
from repro.core.compiler import INTERPRETED, EvaluatorOptions
from repro.core.evaluator import Evaluator
from repro.core.expressions import (
    CallExpression,
    SpecialForm,
    SpecialFormExpression,
    and_,
    constant,
    variable,
)
from repro.core.functions import default_registry
from repro.core.types import BIGINT, DOUBLE, VARCHAR

PAGE_SIZE = 8192
REGISTRY = default_registry()


def call(name, args, arg_types):
    handle, _ = REGISTRY.resolve_scalar(name, arg_types)
    return CallExpression(name, handle, handle.resolved_return_type(), tuple(args))


def _paged(bindings_fn, total: int) -> list[tuple[dict, int]]:
    pages = []
    for start in range(0, total, PAGE_SIZE):
        end = min(start + PAGE_SIZE, total)
        pages.append((bindings_fn(start, end), end - start))
    return pages


# -- suites ------------------------------------------------------------------


def null_filter_suite(rows: int, seed: int = 7):
    """Numeric filter over null-bearing columns (the old Python-loop path)."""
    rng = np.random.default_rng(seed)
    quantity = rng.integers(1, 50, size=rows).astype(np.int64)
    price = rng.uniform(1.0, 1000.0, size=rows)
    discount = rng.uniform(0.0, 0.1, size=rows)
    nulls = rng.random(rows) < 0.05

    def bindings(start, end):
        page_nulls = nulls[start:end]
        return {
            "quantity": PrimitiveBlock(
                BIGINT, quantity[start:end], page_nulls.copy() if page_nulls.any() else None
            ),
            "price": PrimitiveBlock(DOUBLE, price[start:end]),
            "discount": PrimitiveBlock(DOUBLE, discount[start:end]),
        }

    # quantity < 24 AND price * (1 - discount) > 500.0
    predicate = and_(
        call("less_than", [variable("quantity", BIGINT), constant(24, BIGINT)], [BIGINT, BIGINT]),
        call(
            "greater_than",
            [
                call(
                    "multiply",
                    [
                        variable("price", DOUBLE),
                        call(
                            "subtract",
                            [constant(1.0, DOUBLE), variable("discount", DOUBLE)],
                            [DOUBLE, DOUBLE],
                        ),
                    ],
                    [DOUBLE, DOUBLE],
                ),
                constant(500.0, DOUBLE),
            ],
            [DOUBLE, DOUBLE],
        ),
    )
    return predicate, _paged(bindings, rows)


def string_filter_suite(rows: int, seed: int = 11):
    """String-heavy predicate (the old object-dtype bail-out)."""
    rng = np.random.default_rng(seed)
    words = np.array(
        ["airplane", "AIR CARGO", "shipping", "rail", "air freight", "truck", None],
        dtype=object,
    )
    modes = words[rng.integers(0, len(words), size=rows)]

    def bindings(start, end):
        return {"mode": PrimitiveBlock.from_values(VARCHAR, list(modes[start:end]))}

    # lower(mode) LIKE 'air%' AND length(mode) > 3
    predicate = and_(
        call(
            "like",
            [
                call("lower", [variable("mode", VARCHAR)], [VARCHAR]),
                constant("air%", VARCHAR),
            ],
            [VARCHAR, VARCHAR],
        ),
        call(
            "greater_than",
            [call("length", [variable("mode", VARCHAR)], [VARCHAR]), constant(3, BIGINT)],
            [BIGINT, BIGINT],
        ),
    )
    return predicate, _paged(bindings, rows)


def dictionary_suite(rows: int, distinct: int = 200, seed: int = 13):
    """Dictionary-encoded varchar column: evaluate per distinct, not per row."""
    rng = np.random.default_rng(seed)
    pool = [f"warehouse-region-{i:04d}" for i in range(distinct)]
    dictionary = PrimitiveBlock.from_values(VARCHAR, pool)
    ids = rng.integers(0, distinct, size=rows).astype(np.int64)

    def bindings(start, end):
        return {"region": DictionaryBlock(dictionary, ids[start:end])}

    # upper(substr(region, 11, 6)) LIKE 'REGION%'
    predicate = call(
        "like",
        [
            call(
                "upper",
                [
                    call(
                        "substr",
                        [variable("region", VARCHAR), constant(11, BIGINT), constant(6, BIGINT)],
                        [VARCHAR, BIGINT, BIGINT],
                    )
                ],
                [VARCHAR],
            ),
            constant("REGION%", VARCHAR),
        ],
        [VARCHAR, VARCHAR],
    )
    return predicate, _paged(bindings, rows)


# -- measurement -------------------------------------------------------------


def _run_lane(evaluator: Evaluator, predicate, pages) -> tuple[float, list]:
    start = time.perf_counter()
    masks = [
        evaluator.filter_mask(predicate, bindings, count) for bindings, count in pages
    ]
    elapsed = (time.perf_counter() - start) * 1000.0
    return elapsed, masks


def bench_suite(name: str, predicate, pages, rows: int) -> dict:
    compiled_evaluator = Evaluator(REGISTRY)
    interpreted_evaluator = Evaluator(REGISTRY, options=EvaluatorOptions(mode=INTERPRETED))
    # Warm the compile cache so the measured loop shows steady-state cost.
    if pages:
        compiled_evaluator.filter_mask(predicate, pages[0][0], pages[0][1])
    compiled_ms, compiled_masks = _run_lane(compiled_evaluator, predicate, pages)
    interpreted_ms, interpreted_masks = _run_lane(interpreted_evaluator, predicate, pages)
    identical = all(
        np.array_equal(a, b) for a, b in zip(compiled_masks, interpreted_masks)
    )
    return {
        "name": name,
        "rows": rows,
        "compiled_ms": round(compiled_ms, 3),
        "interpreted_ms": round(interpreted_ms, 3),
        "speedup": round(interpreted_ms / compiled_ms, 2) if compiled_ms else None,
        "rows_per_sec": round(rows / (compiled_ms / 1000.0)) if compiled_ms else None,
        "identical": identical,
    }


def run(smoke: bool) -> dict:
    rows = 5_000 if smoke else 200_000
    dict_rows = 5_000 if smoke else 100_000
    suites = [
        ("null_filter", *null_filter_suite(rows), rows),
        ("string_filter", *string_filter_suite(rows), rows),
        ("dictionary", *dictionary_suite(dict_rows), dict_rows),
    ]
    benchmarks = [
        bench_suite(name, predicate, pages, total)
        for name, predicate, pages, total in suites
    ]
    return {
        "benchmark": "expressions",
        "paper_section": "III (vectorized engine) / V (dictionary optimizations)",
        "smoke": smoke,
        "benchmarks": benchmarks,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes + skip speedup gates (CI)"
    )
    parser.add_argument(
        "--output", default="BENCH_expressions.json", help="result JSON path"
    )
    args = parser.parse_args()

    report = run(args.smoke)
    print_table(
        "Expression evaluation: compiled kernels vs interpreter",
        ["suite", "rows", "compiled ms", "interpreted ms", "speedup", "identical"],
        [
            [
                b["name"],
                b["rows"],
                b["compiled_ms"],
                b["interpreted_ms"],
                b["speedup"],
                b["identical"],
            ]
            for b in report["benchmarks"]
        ],
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.output}")

    assert all(b["identical"] for b in report["benchmarks"]), "compiled lane diverged"
    if not args.smoke:
        gates = {"null_filter": 5.0, "dictionary": 10.0}
        for b in report["benchmarks"]:
            gate = gates.get(b["name"])
            if gate is not None:
                assert b["speedup"] >= gate, (
                    f"{b['name']}: speedup {b['speedup']}x below the {gate}x target"
                )
        print("speedup targets met: >=5x null_filter, >=10x dictionary")


if __name__ == "__main__":
    main()
