"""Section VII: file list cache and file handle/footer cache.

Paper results: "With file list cache enabled for 5 of our most popular
tables, our production traffic shows overall listFile calls is reduced to
less than 40%."  "With file handle and footer cache, our production
traffic shows almost 90% of getFileInfo calls could be reduced."

The replay models production traffic: repeated queries over 5 hot tables
(sealed partitions) plus a stream of queries over open, still-ingesting
partitions that must stay cache-bypassing for freshness.
"""

from __future__ import annotations

import pytest

from _harness import print_table
from repro.cache.file_list_cache import FileListCache
from repro.cache.footer_cache import FileHandleAndFooterCache
from repro.connectors.hive import HiveConnector, write_hive_partition
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.metastore.metastore import HiveMetastore
from repro.planner.analyzer import Session
from repro.storage.hdfs import HdfsFileSystem

HOT_TABLES = [f"hot_table_{i}" for i in range(5)]
DATES = ["2024-01-01", "2024-01-02"]
QUERIES_PER_TABLE = 20


def build_warehouse():
    metastore = HiveMetastore()
    fs = HdfsFileSystem()
    for table in HOT_TABLES:
        metastore.create_table(
            "warehouse",
            table,
            [("k", BIGINT), ("v", DOUBLE)],
            partition_keys=[("ds", VARCHAR)],
        )
        for date in DATES:
            rows = [(i, float(i)) for i in range(200)]
            write_hive_partition(
                metastore, fs, "warehouse", table, [date],
                [Page.from_rows([BIGINT, DOUBLE], rows)], files=3,
            )
        # One open partition per table receives streaming ingestion.
        write_hive_partition(
            metastore, fs, "warehouse", table, ["2024-01-03"],
            [Page.from_rows([BIGINT, DOUBLE], [(1, 1.0)])], sealed=False,
        )
    return metastore, fs


def replay(metastore, fs, use_caches: bool):
    connector = HiveConnector(
        metastore,
        fs,
        file_list_cache=FileListCache(fs) if use_caches else None,
        footer_cache=FileHandleAndFooterCache(fs) if use_caches else None,
    )
    engine = PrestoEngine(
        session=Session(catalog="hive", schema="warehouse"), clock=fs.clock
    )
    engine.register_connector("hive", connector)
    fs.namenode.stats.reset()
    start_ms = fs.clock.now_ms()
    for _ in range(QUERIES_PER_TABLE):
        for table in HOT_TABLES:
            engine.execute(f"SELECT sum(v) FROM {table} WHERE ds = '2024-01-01'")
            engine.execute(f"SELECT count(*) FROM {table}")
    elapsed_ms = fs.clock.now_ms() - start_ms
    return (
        fs.namenode.stats.list_files_calls,
        fs.namenode.stats.get_file_info_calls,
        elapsed_ms,
    )


def test_sec7_file_list_and_footer_caches(benchmark):
    def run():
        metastore, fs = build_warehouse()
        baseline = replay(metastore, fs, use_caches=False)
        cached = replay(metastore, fs, use_caches=True)
        return baseline, cached

    (baseline, cached) = benchmark.pedantic(run, rounds=1, iterations=1)
    list_ratio = cached[0] / baseline[0]
    info_reduction = 1.0 - cached[1] / baseline[1]
    print_table(
        "Section VII: cache effect on NameNode traffic (5 hot tables replay)",
        ["configuration", "listFiles calls", "getFileInfo calls", "simulated_ms"],
        [
            ("no caches", baseline[0], baseline[1], f"{baseline[2]:.0f}"),
            ("file list + footer cache", cached[0], cached[1], f"{cached[2]:.0f}"),
        ],
    )
    print(
        f"listFiles reduced to {list_ratio * 100:.0f}% (paper: <40%); "
        f"getFileInfo reduced by {info_reduction * 100:.0f}% (paper: ~90%)"
    )
    benchmark.extra_info["list_files_ratio"] = list_ratio
    benchmark.extra_info["get_file_info_reduction"] = info_reduction

    assert list_ratio < 0.40
    assert info_reduction > 0.85
    assert cached[2] < baseline[2]  # caches shorten simulated latency


def test_sec7_open_partitions_stay_fresh_under_cache(benchmark):
    """Freshness guarantee: open partitions bypass the cache every query."""
    metastore, fs = build_warehouse()
    connector = HiveConnector(
        metastore, fs,
        file_list_cache=FileListCache(fs),
        footer_cache=FileHandleAndFooterCache(fs),
    )
    engine = PrestoEngine(session=Session(catalog="hive", schema="warehouse"))
    engine.register_connector("hive", connector)

    def run():
        counts = []
        for round_index in range(3):
            # Micro-batch ingestion appends a file to the open partition.
            partition = metastore.get_partition(
                "warehouse", HOT_TABLES[0], ["2024-01-03"]
            )
            from repro.formats.parquet.schema import ParquetSchema
            from repro.formats.parquet.writer_native import NativeParquetWriter

            schema = ParquetSchema([("k", BIGINT), ("v", DOUBLE)])
            blob = NativeParquetWriter(schema).write_pages(
                [Page.from_rows([BIGINT, DOUBLE], [(round_index, 1.0)])]
            )
            fs.create(f"{partition.location}/micro-{round_index}.parquet", blob)
            result = engine.execute(
                f"SELECT count(*) FROM {HOT_TABLES[0]} WHERE ds = '2024-01-03'"
            )
            counts.append(result.rows[0][0])
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every round sees the newly ingested file immediately: 2, 3, 4 rows.
    assert counts == [2, 3, 4]
    assert connector.file_list_cache.open_partition_bypasses >= 3
