"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one table/figure of the paper: it runs
the workload, prints the same rows/series the paper reports, and asserts
the qualitative *shape* of the result (who wins, by roughly what factor).
Absolute numbers differ — the substrate is a simulator, not the authors'
testbed — and that is expected.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    """Render a paper-style results table to stdout."""
    widths = [
        max(len(str(h)), *(len(_fmt(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "+".join("-" * (w + 2) for w in widths)
    print()
    print(f"=== {title} ===")
    print(line)
    print(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print(line)
    for row in rows:
        print(" | ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
    print(line)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def wall_time_ms(fn: Callable[[], Any], repeat: int = 1) -> tuple[float, Any]:
    """Best-of-``repeat`` wall-clock milliseconds plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best, result


def percentile(values: Sequence[float], p: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(int(round(p / 100.0 * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[index]


def geometric_mean(values: Sequence[float]) -> float:
    import math

    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
