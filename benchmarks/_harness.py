"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one table/figure of the paper: it runs
the workload, prints the same rows/series the paper reports, and asserts
the qualitative *shape* of the result (who wins, by roughly what factor).
Absolute numbers differ — the substrate is a simulator, not the authors'
testbed — and that is expected.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    """Render a paper-style results table to stdout."""
    widths = [
        max(len(str(h)), *(len(_fmt(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "+".join("-" * (w + 2) for w in widths)
    print()
    print(f"=== {title} ===")
    print(line)
    print(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print(line)
    for row in rows:
        print(" | ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
    print(line)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def wall_time_ms(fn: Callable[[], Any], repeat: int = 1) -> tuple[float, Any]:
    """Best-of-``repeat`` wall-clock milliseconds plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best, result


def percentile(values: Sequence[float], p: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(int(round(p / 100.0 * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[index]


def geometric_mean(values: Sequence[float]) -> float:
    import math

    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


# -- committed-baseline regression guard --------------------------------------
#
# Each bench commits its full-mode BENCH_*.json at the repo root; the next
# full-mode run loads that file *before* overwriting it and fails when a
# tracked throughput metric regressed by more than the tolerance.  Smoke
# runs (CI) skip the guard — their sizes are incomparable.


def load_committed_baseline(path: str):
    """The committed BENCH_*.json, or None when absent/unreadable."""
    import json
    import os

    if not os.path.exists(path):
        return None
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def assert_no_regression(
    baseline,
    report: dict,
    metric: str,
    tolerance: float = 0.15,
    key: str = "name",
    section: str = "benchmarks",
) -> None:
    """Fail when any suite's ``metric`` dropped more than ``tolerance``.

    Joins ``report[section]`` against ``baseline[section]`` on ``key``
    and compares bigger-is-better metrics (rows/sec, goodput).  A None
    or smoke-mode baseline, and suites present on only one side, are
    skipped — the guard never blocks a brand-new benchmark.
    """
    if baseline is None or baseline.get("smoke") or report.get("smoke"):
        return
    by_key = {entry[key]: entry for entry in baseline.get(section, [])}
    failures = []
    for entry in report.get(section, []):
        base = by_key.get(entry.get(key))
        if base is None or metric not in base or metric not in entry:
            continue
        old, new = base[metric], entry[metric]
        if old > 0 and new < old * (1.0 - tolerance):
            drop = (1.0 - new / old) * 100.0
            failures.append(
                f"{entry[key]}: {metric} {new:,.2f} vs committed {old:,.2f} "
                f"(-{drop:.1f}%)"
            )
    assert not failures, (
        f"regression beyond {tolerance:.0%} against the committed baseline:\n  "
        + "\n  ".join(failures)
    )


def assert_no_ratio_regression(
    baseline,
    report: dict,
    metric: str = "hit_ratio",
    tolerance_points: float = 0.03,
    key: str = "name",
    section: str = "benchmarks",
) -> None:
    """Fail when a [0, 1] ratio ``metric`` dropped by more than
    ``tolerance_points`` *absolute* against the committed baseline.

    Relative tolerances misbehave near zero (a 0.02 -> 0.01 hit ratio is
    a 50% "regression" nobody cares about, while 0.90 -> 0.80 sails under
    a 15% bar); ratios are compared in absolute points instead.  The
    skip rules match :func:`assert_no_regression`.
    """
    if baseline is None or baseline.get("smoke") or report.get("smoke"):
        return
    by_key = {entry[key]: entry for entry in baseline.get(section, [])}
    failures = []
    for entry in report.get(section, []):
        base = by_key.get(entry.get(key))
        if base is None or metric not in base or metric not in entry:
            continue
        old, new = base[metric], entry[metric]
        if new < old - tolerance_points:
            failures.append(
                f"{entry[key]}: {metric} {new:.4f} vs committed {old:.4f} "
                f"(-{(old - new):.4f} points)"
            )
    assert not failures, (
        f"ratio regression beyond {tolerance_points:.2f} points against the "
        "committed baseline:\n  " + "\n  ".join(failures)
    )
