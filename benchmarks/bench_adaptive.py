"""Adaptive execution: statistics-fed join ordering + runtime dynamic filters.

The paper's production optimizer is rule-based — "ignoring statistics"
(section XII.A) — because metastore statistics could not be kept fresh.
This bench measures what the adaptive counterpoint buys on a warehouse-
shaped join: a large sorted-key hive fact table probed through a small
selective dimension, with the SQL deliberately written so the naive plan
hashes the *fact* side.

Three configs run the same queries and must return identical rows:

1. **off**      — no statistics, no dynamic filters, fixed partitioning;
                  the plan is exactly what the rule-based pipeline builds.
2. **cbo**      — ANALYZE statistics feed cost-based join reordering and
                  broadcast selection; dynamic filters stay off.
3. **cbo+df**   — the full adaptive stack: reordering plus runtime dynamic
                  filters (split, row-group, and row tiers) plus adaptive
                  exchange partition counts.

Full-mode gates: the dynamic filter must skip >= 50% of probe-side row
groups, the full stack must beat config (1) by >= 2x simulated time, a
repeat run must reproduce rows and stats exactly, and per-config
throughput must not regress against the committed baseline.

All times are simulated milliseconds; results are deterministic per seed.

Usage::

    PYTHONPATH=src python benchmarks/bench_adaptive.py            # full
    PYTHONPATH=src python benchmarks/bench_adaptive.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json

from _harness import assert_no_regression, load_committed_baseline, print_table
from repro.connectors.hive import HiveConnector, write_hive_partition
from repro.connectors.memory import MemoryConnector
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.metastore.metastore import HiveMetastore
from repro.planner.analyzer import Session
from repro.storage.hdfs import HdfsFileSystem


def make_environment(rows_per_partition: int, row_group_size: int, **engine_kwargs):
    """Sorted-key hive fact table + small memory dimension tables."""
    metastore = HiveMetastore()
    fs = HdfsFileSystem()
    metastore.create_table(
        "wh",
        "fact",
        [("sk", BIGINT), ("v", DOUBLE)],
        partition_keys=[("region", VARCHAR)],
    )
    for index, region in enumerate(["east", "west"]):
        start = index * rows_per_partition
        rows = [(start + i, float(start + i)) for i in range(rows_per_partition)]
        write_hive_partition(
            metastore,
            fs,
            "wh",
            "fact",
            [region],
            [Page.from_rows([BIGINT, DOUBLE], rows)],
            files=2,
            row_group_size=row_group_size,
        )
    hive = HiveConnector(metastore, fs, reader="new")

    # The dimension selects a narrow slice of the fact key space, so the
    # dynamic filter's [min, max] range kills most sorted row groups.
    dim_keys = range(rows_per_partition // 4, rows_per_partition // 4 + 64)
    memory = MemoryConnector()
    memory.create_table(
        "db",
        "dim",
        [("k", BIGINT), ("bucket", VARCHAR)],
        [(k, f"b{k % 4}") for k in dim_keys],
    )
    engine = PrestoEngine(
        session=Session(catalog="hive", schema="wh"),
        hash_partitions=8,
        **engine_kwargs,
    )
    engine.register_connector("hive", hive)
    engine.register_connector("memory", memory)
    return engine


# SQL order puts the fact table on the right: the rule-based plan builds
# its hash table over the fact side.  CBO (once ANALYZE ran) flips it.
QUERIES = [
    "SELECT count(*), sum(f.v) FROM memory.db.dim d "
    "JOIN fact f ON f.sk = d.k",
    "SELECT d.bucket, count(*), sum(f.v) FROM memory.db.dim d "
    "JOIN fact f ON f.sk = d.k GROUP BY d.bucket",
]

CONFIGS = [
    ("off", {"enable_dynamic_filtering": False}, False),
    ("cbo", {"enable_dynamic_filtering": False}, True),
    (
        "cbo+df",
        {"adaptive_partitioning": True, "target_partition_rows": 4_096},
        True,
    ),
]


def run_config(name, engine_kwargs, analyzed, rows_per_partition, row_group_size):
    engine = make_environment(rows_per_partition, row_group_size, **engine_kwargs)
    if analyzed:
        engine.execute("ANALYZE TABLE fact")
        engine.execute("ANALYZE TABLE memory.db.dim")
    entry = {
        "name": name,
        "simulated_ms": 0.0,
        "rows_scanned": 0,
        "rows_exchanged": 0,
        "tasks_total": 0,
        "row_groups_total": 0,
        "row_groups_skipped_by_dynamic_filter": 0,
        "dynamic_filter_rows_pruned": 0,
    }
    rows = []
    for sql in QUERIES:
        result = engine.execute(sql)
        rows.append(sorted(result.rows))
        stats = result.stats
        entry["simulated_ms"] += stats.simulated_ms
        for field in (
            "rows_scanned",
            "rows_exchanged",
            "tasks_total",
            "row_groups_total",
            "row_groups_skipped_by_dynamic_filter",
            "dynamic_filter_rows_pruned",
        ):
            entry[field] += getattr(stats, field)
    entry["simulated_ms"] = round(entry["simulated_ms"], 4)
    total = entry["row_groups_total"]
    entry["row_group_skip_fraction"] = round(
        entry["row_groups_skipped_by_dynamic_filter"] / total, 4
    ) if total else 0.0
    # Bigger-is-better speed for the committed-baseline guard (rows
    # scanned per ms would punish a *better* filter for scanning less).
    entry["query_sets_per_sim_sec"] = round(1000.0 / entry["simulated_ms"], 3)
    return entry, rows


def run(smoke: bool) -> dict:
    rows_per_partition = 500 if smoke else 4_000
    row_group_size = 50 if smoke else 100
    report = {"smoke": smoke, "benchmarks": []}
    results_by_config = {}
    for name, engine_kwargs, analyzed in CONFIGS:
        entry, rows = run_config(
            name, engine_kwargs, analyzed, rows_per_partition, row_group_size
        )
        report["benchmarks"].append(entry)
        results_by_config[name] = rows

    # Every config must return identical rows — adaptivity is a pure
    # performance layer, never a semantic one.
    baseline_rows = results_by_config["off"]
    for name, rows in results_by_config.items():
        assert rows == baseline_rows, f"config {name!r} changed query results"

    # Determinism: an identical rerun reproduces rows and every counter.
    name, engine_kwargs, analyzed = CONFIGS[-1]
    repeat_entry, repeat_rows = run_config(
        name, engine_kwargs, analyzed, rows_per_partition, row_group_size
    )
    assert repeat_rows == results_by_config[name], "rerun changed rows"
    assert repeat_entry == report["benchmarks"][-1], "rerun changed stats"
    report["determinism"] = "rerun reproduced rows and stats exactly"
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny tables + skip gates (CI)"
    )
    parser.add_argument(
        "--output", default="BENCH_adaptive.json", help="result JSON path"
    )
    args = parser.parse_args()

    # Load the committed baseline *before* the run overwrites it.
    baseline = load_committed_baseline("BENCH_adaptive.json")

    report = run(args.smoke)
    print_table(
        "Adaptive execution: rule-based vs statistics-fed vs full stack",
        [
            "config",
            "sim ms",
            "rows scanned",
            "tasks",
            "row groups",
            "skipped (df)",
            "skip %",
            "rows pruned",
        ],
        [
            [
                e["name"],
                e["simulated_ms"],
                e["rows_scanned"],
                e["tasks_total"],
                e["row_groups_total"],
                e["row_groups_skipped_by_dynamic_filter"],
                e["row_group_skip_fraction"] * 100.0,
                e["dynamic_filter_rows_pruned"],
            ]
            for e in report["benchmarks"]
        ],
    )
    print(report["determinism"])

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.output}")

    by_name = {e["name"]: e for e in report["benchmarks"]}
    off, full = by_name["off"], by_name["cbo+df"]
    if not args.smoke:
        assert full["row_group_skip_fraction"] >= 0.5, (
            f"dynamic filter skipped only "
            f"{full['row_group_skip_fraction']:.0%} of probe row groups"
        )
        speedup = off["simulated_ms"] / full["simulated_ms"]
        assert speedup >= 2.0, (
            f"full adaptive stack only {speedup:.2f}x vs rule-based baseline"
        )
        assert_no_regression(baseline, report, metric="query_sets_per_sim_sec")
        print(
            f"targets met: {full['row_group_skip_fraction']:.0%} probe row "
            f"groups skipped (>= 50%), {speedup:.2f}x vs adaptive-off "
            f"(>= 2x), deterministic rerun, no throughput regression"
        )


if __name__ == "__main__":
    main()
