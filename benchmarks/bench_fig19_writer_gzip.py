"""Figure 19: writer throughput comparison, Gzip compression.

Paper result: ≥20% gains everywhere; "for bigint type with Gzip
compression, our native parquet writer performs best, with more than 650%
throughput improvements."
"""

from _writer_common import report_and_assert, run_writer_comparison
from repro.formats.parquet.compression import GZIP


def test_fig19_writer_throughput_gzip(benchmark):
    results = benchmark.pedantic(
        lambda: run_writer_comparison(GZIP), rounds=1, iterations=1
    )
    report_and_assert(results, "Gzip", benchmark)
    gains = {name: gain for name, _, _, gain in results}
    # Paper highlight: bigint is the standout under Gzip.
    assert max(gains["Bigint Sequential"], gains["Bigint Random"]) == max(gains.values()) or (
        max(gains["Bigint Sequential"], gains["Bigint Random"]) > 2.5
    )
