"""Streaming lakehouse: freshness vs query latency across compaction cadences.

The paper's realtime pipeline (section XI) trades data freshness against
commit churn: a short compaction interval keeps the sealed lake within
seconds of the log head and the in-memory tail near-empty, at the cost
of many small snapshots and files (the lakehouse small-file problem); a
long interval amortizes commits into few large files but leaves the
lake-only lane seconds-to-minutes stale and grows the tail's memory
residency.

This bench sweeps the compaction interval over the same deterministic
event stream (``repro.workloads.streaming_events``), produced in small
ticks interleaved with pipeline steps so ingestion is genuinely
incremental.  The produce/poll schedule is identical across
configurations, so every cadence commits the *same* watermark — only
where the rows live differs.  Per interval it reports sealed-lane
freshness lag, tail residency, snapshot/file counts, and the simulated
cost of the hybrid query set.

Gates (full mode): every interval returns byte-identical query rows and
matches the batch oracle over the replayed log at the committed
watermark; sealed freshness lag and tail residency grow monotonically
with the interval; an identical rerun reproduces rows and stats exactly;
per-interval query throughput must not regress against the committed
baseline.

All times are simulated milliseconds; results are deterministic per seed.

Usage::

    PYTHONPATH=src python benchmarks/bench_lakehouse_freshness.py            # full
    PYTHONPATH=src python benchmarks/bench_lakehouse_freshness.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json

from _harness import assert_no_regression, load_committed_baseline, print_table
from repro.realtime import StreamingLakehouse, oracle_engine
from repro.workloads.streaming_events import EVENT_FIELDS, produce_events

QUERIES = [
    "SELECT city, count(*), sum(amount) FROM events GROUP BY city ORDER BY city",
    "SELECT count(*) FROM events WHERE amount > 100.0",
    "SELECT max(order_id), count(*) FROM events WHERE city = 'sf'",
]


def normalized(rows):
    return [
        tuple(
            float(f"{value:.10g}") if isinstance(value, float) else value
            for value in row
        )
        for row in rows
    ]


def run_interval(compaction_interval_ms, events, ticks, seed):
    lakehouse = StreamingLakehouse(
        fields=EVENT_FIELDS,
        poll_interval_ms=150,
        compaction_interval_ms=compaction_interval_ms,
    )
    per_tick = events // ticks
    produced = 0
    for tick in range(ticks):
        produce_events(
            lakehouse,
            per_tick,
            seed=seed,
            events_per_second=250.0,
            start_ms=int(lakehouse.clock.now_ms()),
            start_id=produced,
        )
        produced += per_tick
        lakehouse.pipeline.run_for(200)

    table = lakehouse.table
    engine = lakehouse.make_engine()
    entry = {
        "name": f"compact_{int(compaction_interval_ms)}ms",
        "compaction_interval_ms": compaction_interval_ms,
        "rows_committed": table.committed.total(),
        "rows_sealed": table.sealed_watermark().total(),
        "tail_rows": table.tail_row_count(),
        "snapshots_committed": lakehouse.compactor.snapshots_committed,
        "lake_files": len(lakehouse.lake.current_snapshot().files),
        # Sealed-lane freshness: how far a lake-only reader trails the
        # newest committed event, in simulated ms.
        "sealed_freshness_lag_ms": round(
            table.max_committed_timestamp_ms - table.sealed_max_timestamp_ms(), 3
        ),
        "query_set_sim_ms": 0.0,
    }
    rows = []
    for sql in QUERIES:
        result = engine.execute(sql)
        rows.append(normalized(result.rows))
        entry["query_set_sim_ms"] += result.stats.simulated_ms
    entry["query_set_sim_ms"] = round(entry["query_set_sim_ms"], 4)
    entry["query_sets_per_sim_sec"] = round(1000.0 / entry["query_set_sim_ms"], 3)

    # Differential gate: the hybrid answer must equal a batch engine over
    # the fully replayed log cut at the same watermark.
    oracle = oracle_engine(lakehouse.broker, lakehouse.topic, table.committed)
    for sql, got in zip(QUERIES, rows):
        expected = normalized(oracle.execute_direct(sql).rows)
        assert got == expected, f"hybrid != oracle for {sql!r}"

    assert entry["rows_committed"] == produced, "pipeline lost events"
    return entry, rows


def run(smoke: bool) -> dict:
    intervals = [500.0, 2_000.0] if smoke else [500.0, 2_000.0, 8_000.0]
    events = 300 if smoke else 3_000
    ticks = 12 if smoke else 60
    report = {"smoke": smoke, "benchmarks": []}
    rows_by_interval = {}
    for interval in intervals:
        entry, rows = run_interval(interval, events, ticks, seed=7)
        report["benchmarks"].append(entry)
        rows_by_interval[interval] = rows

    # Same log, same polls → every cadence answers identically.
    baseline_rows = rows_by_interval[intervals[0]]
    for interval, rows in rows_by_interval.items():
        assert rows == baseline_rows, (
            f"compaction interval {interval} changed query results"
        )

    repeat_entry, repeat_rows = run_interval(intervals[-1], events, ticks, seed=7)
    assert repeat_rows == rows_by_interval[intervals[-1]], "rerun changed rows"
    assert repeat_entry == report["benchmarks"][-1], "rerun changed stats"
    report["determinism"] = "rerun reproduced rows and stats exactly"
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny stream + skip gates (CI)"
    )
    parser.add_argument(
        "--output", default="BENCH_lakehouse_freshness.json", help="result JSON path"
    )
    args = parser.parse_args()

    baseline = load_committed_baseline("BENCH_lakehouse_freshness.json")

    report = run(args.smoke)
    print_table(
        "Streaming lakehouse: compaction cadence vs freshness and query cost",
        [
            "config",
            "committed",
            "sealed",
            "tail rows",
            "snapshots",
            "lake files",
            "sealed lag ms",
            "query sim ms",
        ],
        [
            [
                e["name"],
                e["rows_committed"],
                e["rows_sealed"],
                e["tail_rows"],
                e["snapshots_committed"],
                e["lake_files"],
                e["sealed_freshness_lag_ms"],
                e["query_set_sim_ms"],
            ]
            for e in report["benchmarks"]
        ],
    )
    print(report["determinism"])

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.output}")

    if not args.smoke:
        entries = report["benchmarks"]
        assert len(entries) >= 3, "full mode must sweep >= 3 compaction intervals"
        lags = [e["sealed_freshness_lag_ms"] for e in entries]
        tails = [e["tail_rows"] for e in entries]
        snapshots = [e["snapshots_committed"] for e in entries]
        assert lags == sorted(lags) and lags[-1] > lags[0], (
            f"sealed freshness lag not increasing with interval: {lags}"
        )
        assert tails == sorted(tails) and tails[-1] > tails[0], (
            f"tail residency not increasing with interval: {tails}"
        )
        assert snapshots == sorted(snapshots, reverse=True) and (
            snapshots[0] > snapshots[-1]
        ), f"snapshot count not decreasing with interval: {snapshots}"
        assert_no_regression(baseline, report, metric="query_sets_per_sim_sec")
        print(
            "targets met: freshness lag and tail residency grow with the "
            "compaction interval, snapshot count shrinks, every cadence "
            "matches the batch oracle, deterministic rerun, no throughput "
            "regression"
        )


if __name__ == "__main__":
    main()
