"""Figure 17: old vs new Parquet reader on the Uber query workload.

Paper setup: 200-node Presto cluster, Uber production trips data on HDFS
in Parquet, and 21 production queries — 4 table scans (2 of them
needle-in-a-haystack), 5 group-bys, and 12 joins.  Paper result: "our new
Parquet reader consistently achieves 2X-10X speedup", with the largest
wins on needle-in-a-haystack scans; turning the reader on dropped P90
from 5 minutes to 40 seconds.

Here both readers run over the same simulated-HDFS trips table and we
measure engine wall-clock per query.  A second test ablates each reader
optimization to show its individual contribution.
"""

from __future__ import annotations

import pytest

from _harness import geometric_mean, percentile, print_table, wall_time_ms
from repro.connectors.hive import HiveConnector
from repro.core.types import BIGINT, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.formats.parquet.options import ReaderOptions
from repro.metastore.metastore import HiveMetastore
from repro.planner.analyzer import Session
from repro.storage.hdfs import HdfsFileSystem
from repro.workloads.trips import load_trips_table

DATES = ["2017-03-01", "2017-03-02", "2017-03-03"]
ROWS_PER_DATE = 1_200
NUM_CITIES = 120


@pytest.fixture(scope="module")
def environment():
    metastore = HiveMetastore()
    fs = HdfsFileSystem()
    load_trips_table(
        metastore,
        fs,
        DATES,
        rows_per_date=ROWS_PER_DATE,
        files_per_partition=2,
        row_group_size=200,
        num_cities=NUM_CITIES,
    )
    # Small dimension table for the join queries.
    from repro.connectors.memory import MemoryConnector

    dimension = MemoryConnector()
    dimension.create_table(
        "dim",
        "cities",
        [("city_id", BIGINT), ("region", VARCHAR)],
        [(i, f"region{i % 7}") for i in range(1, NUM_CITIES + 1)],
    )
    return metastore, fs, dimension


def make_engine(environment, reader: str, reader_options=None):
    metastore, fs, dimension = environment
    engine = PrestoEngine(session=Session(catalog="hive", schema="rawdata"))
    engine.register_connector(
        "hive",
        HiveConnector(metastore, fs, reader=reader, reader_options=reader_options),
    )
    engine.register_connector("dim", dimension)
    return engine


TABLE = "schemaless_mezzanine_trips_rows"

# The 21-query workload: 4 scans (2 needle-in-a-haystack), 5 group-bys,
# 12 joins, matching the paper's stated mix.
QUERIES = [
    # -- 4 table scans, 2 needle-in-a-haystack ------------------------------
    ("S1 scan", f"SELECT base.driver_uuid, fare_usd FROM {TABLE} WHERE datestr = '2017-03-01'"),
    ("S2 scan", f"SELECT base.city_id, base.status FROM {TABLE}"),
    ("S3 needle", f"SELECT base.driver_uuid FROM {TABLE} WHERE base.city_id IN (12) AND datestr = '2017-03-02'"),
    ("S4 needle", f"SELECT base.client_uuid FROM {TABLE} WHERE base.status = 'fraud'"),
    # -- 5 group-bys ----------------------------------------------------------
    ("G1 group", f"SELECT base.city_id, count(*) FROM {TABLE} GROUP BY base.city_id"),
    ("G2 group", f"SELECT base.status, sum(fare_usd) FROM {TABLE} GROUP BY base.status"),
    ("G3 group", f"SELECT base.product, avg(base.distance_km) FROM {TABLE} GROUP BY base.product"),
    ("G4 group", f"SELECT datestr, count(*) FROM {TABLE} WHERE base.city_id < 30 GROUP BY datestr"),
    ("G5 group", f"SELECT base.payment_method, max(fare_usd) FROM {TABLE} GROUP BY base.payment_method"),
    # -- 12 joins ----------------------------------------------------------------
    ("J1 join", f"SELECT c.region, count(*) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id GROUP BY c.region"),
    ("J2 join", f"SELECT c.region, sum(t.fare_usd) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id GROUP BY c.region"),
    ("J3 join", f"SELECT count(*) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id WHERE t.base.status = 'completed'"),
    ("J4 join", f"SELECT c.region, avg(t.base.rating) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id GROUP BY c.region"),
    ("J5 join", f"SELECT count(*) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id WHERE c.region = 'region3'"),
    ("J6 join", f"SELECT c.region, count(*) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id WHERE t.datestr = '2017-03-01' GROUP BY c.region"),
    ("J7 join", f"SELECT count(*) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id WHERE t.base.is_pool"),
    ("J8 join", f"SELECT c.region, min(t.fare_usd) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id GROUP BY c.region"),
    ("J9 join", f"SELECT count(*) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id WHERE t.base.surge_multiplier > 1.4"),
    ("J10 join", f"SELECT c.region, count(*) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id WHERE t.base.product = 'eats' GROUP BY c.region"),
    ("J11 join", f"SELECT count(*) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id WHERE t.base.city_id IN (5, 15, 25)"),
    ("J12 join", f"SELECT c.region, sum(t.base.eta_seconds) FROM {TABLE} t JOIN dim.dim.cities c ON t.base.city_id = c.city_id GROUP BY c.region"),
]


def test_fig17_old_vs_new_reader(environment, benchmark):
    old_engine = make_engine(environment, reader="old")
    new_engine = make_engine(environment, reader="new")

    def run():
        rows = []
        for name, sql in QUERIES:
            old_ms, old_result = wall_time_ms(lambda: old_engine.execute(sql))
            new_ms, new_result = wall_time_ms(lambda: new_engine.execute(sql))
            assert sorted(map(repr, old_result.rows)) == sorted(map(repr, new_result.rows))
            rows.append((name, old_ms, new_ms, old_ms / new_ms))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 17: Parquet readers for Presto (21 Uber benchmark queries)",
        ["query", "old_reader_ms", "new_reader_ms", "speedup"],
        [(n, f"{o:.1f}", f"{w:.1f}", f"{s:.2f}x") for n, o, w, s in rows],
    )
    speedups = [s for _, _, _, s in rows]
    needle = [s for n, _, _, s in rows if "needle" in n]
    old_p90 = percentile([o for _, o, _, _ in rows], 90)
    new_p90 = percentile([w for _, _, w, _ in rows], 90)
    print(
        f"geomean speedup: {geometric_mean(speedups):.2f}x (paper: 2-10x); "
        f"needle-in-haystack speedups: {[f'{s:.1f}x' for s in needle]}; "
        f"P90 old={old_p90:.0f}ms new={new_p90:.0f}ms "
        f"({old_p90 / new_p90:.1f}x, paper: 5min -> 40s = 7.5x)"
    )
    benchmark.extra_info["geomean_speedup"] = geometric_mean(speedups)

    # Paper shape: consistent speedup, 2-10x band, needles fastest.
    assert geometric_mean(speedups) > 2.0
    assert all(s > 1.0 for s in speedups)
    assert max(needle) >= geometric_mean(speedups)  # needles benefit most
    assert old_p90 / new_p90 > 2.0


ABLATION_CASES = [
    ("all optimizations", ReaderOptions.all_enabled()),
    ("no nested column pruning", ReaderOptions(nested_column_pruning=False)),
    ("no columnar reads", ReaderOptions(columnar_reads=False)),
    ("no predicate pushdown", ReaderOptions(predicate_pushdown=False)),
    ("no dictionary pushdown", ReaderOptions(dictionary_pushdown=False)),
    ("no lazy reads", ReaderOptions(lazy_reads=False)),
    ("no vectorized reads", ReaderOptions(vectorized=False)),
    ("none (old behaviour)", ReaderOptions.all_disabled()),
]

# A needle-in-a-haystack scan exercises every optimization at once.
ABLATION_SQL = (
    f"SELECT base.driver_uuid FROM {TABLE} "
    "WHERE base.city_id IN (12) AND datestr = '2017-03-02'"
)


def test_fig17_ablation_each_optimization(environment, benchmark):
    def run():
        rows = []
        reference = None
        for name, options in ABLATION_CASES:
            engine = make_engine(environment, reader="new", reader_options=options)
            ms, result = wall_time_ms(lambda: engine.execute(ABLATION_SQL), repeat=2)
            if reference is None:
                reference = sorted(result.rows)
            assert sorted(result.rows) == reference
            rows.append((name, ms))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base = rows[0][1]
    print_table(
        "Figure 17 ablation: contribution of each reader optimization "
        "(needle-in-a-haystack scan)",
        ["configuration", "ms", "slowdown vs all-on"],
        [(n, f"{ms:.1f}", f"{ms / base:.2f}x") for n, ms in rows],
    )
    all_off = rows[-1][1]
    assert all_off > base  # everything off is the slowest configuration
