"""Figure 18: writer throughput comparison, Snappy compression.

Paper result: "Native parquet writer consistently improves throughput by
20% for snappy compressed files."
"""

from _writer_common import report_and_assert, run_writer_comparison
from repro.formats.parquet.compression import SNAPPY


def test_fig18_writer_throughput_snappy(benchmark):
    results = benchmark.pedantic(
        lambda: run_writer_comparison(SNAPPY), rounds=1, iterations=1
    )
    report_and_assert(results, "Snappy", benchmark)
