"""Section VIII: cluster federation via the Presto gateway.

Paper claims: a single coordinator degrades "bigger than 1000 machines, or
... more than 500 complex queries running concurrently"; the gateway
federates multiple clusters behind one endpoint, and traffic can be
redirected dynamically (e.g. for zero-downtime maintenance).

The concurrency sweep drives one oversized cluster versus three federated
clusters of the same total capacity through the gateway, comparing mean
simulated query latency.
"""

from __future__ import annotations

import pytest

from _harness import print_table
from repro.common.clock import SimulatedClock
from repro.execution.cluster import PrestoClusterSim
from repro.federation.gateway import PrestoGateway

TOTAL_WORKERS = 1800
CONCURRENT_QUERIES = 600
SPLITS_PER_QUERY = 8
SPLIT_MS = 250.0


def run_single_cluster() -> float:
    cluster = PrestoClusterSim(
        workers=TOTAL_WORKERS, slots_per_worker=2, clock=SimulatedClock(), name="mono"
    )
    executions = [
        cluster.submit_query([SPLIT_MS] * SPLITS_PER_QUERY)
        for _ in range(CONCURRENT_QUERIES)
    ]
    cluster.run_until_idle()
    return sum(e.latency_ms for e in executions) / len(executions)


def run_federated(clusters: int = 3) -> float:
    gateway = PrestoGateway()
    for index in range(clusters):
        gateway.register_cluster(
            PrestoClusterSim(
                workers=TOTAL_WORKERS // clusters,
                slots_per_worker=2,
                clock=SimulatedClock(),
                name=f"fed{index}",
            )
        )
        gateway.routing.assign_group(f"team{index}", f"fed{index}")
    gateway.routing.set_default("fed0")
    executions = []
    for i in range(CONCURRENT_QUERIES):
        executions.append(
            gateway.submit(
                f"user{i}", [SPLIT_MS] * SPLITS_PER_QUERY, groups=(f"team{i % clusters}",)
            )
        )
    for cluster in gateway.clusters.values():
        cluster.run_until_idle()
    return sum(e.latency_ms for e in executions) / len(executions)


def test_sec8_federation_beats_monolith(benchmark):
    def run():
        return run_single_cluster(), run_federated()

    single_ms, federated_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section VIII: coordinator bottleneck vs gateway federation "
        f"({TOTAL_WORKERS} workers total, {CONCURRENT_QUERIES} concurrent queries)",
        ["deployment", "mean query latency ms"],
        [
            (f"single cluster ({TOTAL_WORKERS} workers, 1 coordinator)", f"{single_ms:.0f}"),
            ("3 federated clusters behind gateway", f"{federated_ms:.0f}"),
        ],
    )
    print(
        f"federation speedup: {single_ms / federated_ms:.2f}x "
        "(paper: single coordinator degrades >1000 machines / >500 queries)"
    )
    benchmark.extra_info["federation_speedup"] = single_ms / federated_ms
    assert federated_ms < single_ms


def test_sec8_coordinator_degradation_sweep(benchmark):
    """Latency vs cluster size at fixed per-query work: the knee >1000."""

    def run():
        rows = []
        for workers in (250, 500, 1000, 2000, 3000):
            cluster = PrestoClusterSim(
                workers=workers, slots_per_worker=2, clock=SimulatedClock()
            )
            executions = [cluster.submit_query([SPLIT_MS] * 4) for _ in range(50)]
            cluster.run_until_idle()
            mean = sum(e.latency_ms for e in executions) / len(executions)
            rows.append((workers, mean))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section VIII: single-coordinator latency vs cluster size",
        ["workers", "mean query latency ms"],
        [(w, f"{ms:.0f}") for w, ms in rows],
    )
    latencies = dict(rows)
    # Shape: gentle growth through 1000 machines, steep beyond the knee.
    assert latencies[3000] > latencies[1000] * 1.5
    assert latencies[1000] < latencies[250] * 2.0


def test_sec8_zero_downtime_maintenance(benchmark):
    """Drain a cluster for upgrade; its users keep running on the shared one."""

    def run():
        gateway = PrestoGateway()
        dedicated = PrestoClusterSim(workers=4, clock=SimulatedClock(), name="dedicated")
        shared = PrestoClusterSim(workers=8, clock=SimulatedClock(), name="shared")
        gateway.register_cluster(dedicated)
        gateway.register_cluster(shared)
        gateway.routing.assign_user("alice", "dedicated")
        gateway.routing.set_default("shared")

        before = gateway.submit("alice", [10.0])
        gateway.drain_cluster("dedicated", fallback="shared")
        during = gateway.submit("alice", [10.0])
        for cluster in gateway.clusters.values():
            cluster.run_until_idle()
        return before, during

    before, during = benchmark.pedantic(run, rounds=1, iterations=1)
    assert before.query_id.startswith("dedicated")
    assert during.query_id.startswith("shared")  # no downtime for alice
    assert before.finished_at is not None and during.finished_at is not None
