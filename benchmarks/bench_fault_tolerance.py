"""Fault-tolerance sweep: query success vs injected task-failure rate.

The operational half of the paper (graceful shutdown, section IX; the
gateway's no-downtime maintenance story, section VIII) presumes that a
staged query survives individual task failures.  This bench quantifies
that: for each injected task-failure rate it runs the same TPC-H-style
aggregate over several seeds, once with task retries on (bounded
attempts + exponential backoff) and once with retries off, and reports
the fraction of queries that succeed, the mean number of retried tasks,
and the mean simulated latency of successful runs.

The qualitative shape to reproduce: without retries, success collapses
roughly as (1 - rate)^tasks — a handful of percent failure rate kills
most multi-task queries — while with retries the success rate stays at
or near 1.0 until the rate is so high that some task exhausts its
attempt budget.  Correctness is also asserted: every successful faulty
run must return exactly the zero-fault rows.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py            # full
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json

from _harness import print_table
from repro.common.errors import PrestoError
from repro.connectors.memory import MemoryConnector
from repro.execution.engine import PrestoEngine
from repro.execution.faults import FaultInjector
from repro.planner.analyzer import Session
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem

SQL = (
    "SELECT returnflag, linestatus, sum(quantity), avg(extendedprice), count(*) "
    "FROM lineitem GROUP BY returnflag, linestatus "
    "ORDER BY returnflag, linestatus"
)


def make_engine(rows: int, **kwargs) -> PrestoEngine:
    connector = MemoryConnector(split_size=31)
    connector.create_table("db", "lineitem", LINEITEM_COLUMNS, generate_lineitem(rows))
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **kwargs)
    engine.register_connector("memory", connector)
    return engine


def normalize(rows):
    return [
        tuple(float(f"{v:.10g}") if isinstance(v, float) else v for v in row)
        for row in rows
    ]


def sweep_point(
    rows: int,
    rate: float,
    seeds: range,
    max_task_retries: int,
    oracle_rows: list,
) -> dict:
    succeeded = 0
    retried_total = 0
    simulated_total = 0.0
    for seed in seeds:
        engine = make_engine(
            rows,
            fault_injector=FaultInjector(seed=seed, task_failure_rate=rate),
            max_task_retries=max_task_retries,
        )
        try:
            result = engine.execute(SQL)
        except PrestoError:
            continue
        assert normalize(result.rows) == oracle_rows, (
            f"faulty run diverged from oracle (rate={rate}, seed={seed})"
        )
        succeeded += 1
        retried_total += result.stats.tasks_retried
        simulated_total += result.stats.simulated_ms
    return {
        "task_failure_rate": rate,
        "max_task_retries": max_task_retries,
        "queries": len(seeds),
        "succeeded": succeeded,
        "success_rate": round(succeeded / len(seeds), 3),
        "mean_tasks_retried": round(retried_total / len(seeds), 2),
        "mean_simulated_ms": (
            round(simulated_total / succeeded, 2) if succeeded else None
        ),
    }


def run(smoke: bool) -> dict:
    if smoke:
        rows, seeds = 120, range(4)
        rates = [0.0, 0.1, 0.3]
    else:
        rows, seeds = 250, range(20)
        rates = [0.0, 0.05, 0.1, 0.2, 0.4]
    oracle_rows = normalize(make_engine(rows).execute_direct(SQL).rows)
    points = []
    for rate in rates:
        for max_task_retries in (0, 3):
            points.append(
                sweep_point(rows, rate, seeds, max_task_retries, oracle_rows)
            )
    return {
        "benchmark": "fault_tolerance",
        "paper_section": "VIII/IX (operating through failures)",
        "smoke": smoke,
        "lineitem_rows": rows,
        "queries_per_point": len(seeds),
        "benchmarks": points,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sweep for CI"
    )
    parser.add_argument(
        "--output", default="BENCH_fault_tolerance.json", help="result JSON path"
    )
    args = parser.parse_args()

    report = run(args.smoke)
    print_table(
        "Query success vs injected task-failure rate",
        ["fail rate", "retries", "succeeded", "success", "mean retried", "mean sim ms"],
        [
            [
                p["task_failure_rate"],
                p["max_task_retries"],
                f"{p['succeeded']}/{p['queries']}",
                p["success_rate"],
                p["mean_tasks_retried"],
                p["mean_simulated_ms"] if p["mean_simulated_ms"] is not None else "-",
            ]
            for p in report["benchmarks"]
        ],
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.output}")

    by_key = {
        (p["task_failure_rate"], p["max_task_retries"]): p
        for p in report["benchmarks"]
    }
    rates = sorted({p["task_failure_rate"] for p in report["benchmarks"]})
    # Shape assertions: retries never hurt, and at every nonzero rate they
    # recover queries the no-retry configuration loses.
    for rate in rates:
        with_retries = by_key[(rate, 3)]
        without = by_key[(rate, 0)]
        assert with_retries["success_rate"] >= without["success_rate"], (
            f"retries reduced success at rate {rate}"
        )
        if rate > 0:
            assert with_retries["mean_tasks_retried"] > 0, (
                f"no retries recorded at rate {rate}"
            )
    assert by_key[(0.0, 3)]["success_rate"] == 1.0
    nonzero = [r for r in rates if r > 0]
    assert any(
        by_key[(r, 3)]["success_rate"] > by_key[(r, 0)]["success_rate"]
        for r in nonzero
    ), "retries never improved success anywhere in the sweep"
    print("shape holds: retries dominate no-retries at every failure rate")


if __name__ == "__main__":
    main()
