"""Worker-local data cache: hit ratio and latency across policies and tiers.

Reproduces the sizing/policy questions of the data-cache follow-up
literature ("Data Caching for Enterprise-Grade Petabyte-Scale OLAP", the
RaptorX/Alluxio line) on the simulated tiered cache:

1. **Policy x tier-size sweep** — replays a deterministic zipfian
   row-group access storm (with a scan-pollution fraction of one-touch
   keys) through LRU / LFU / TinyLFU caches at several tier sizes,
   reporting hit ratio per tier and per-access latency.
2. **End-to-end latency** — replays an affinity-scheduled split workload
   on the cluster sim with the cache enabled vs disabled; cache hits
   shorten split durations, so query p95 falls.
3. **Shadow-cache validation** — compares the shadow cache's "what if
   the cache were K x larger" estimate against an actual K x larger run
   of the same storm.
4. **Crash remap** — measures the fraction of keys whose ring placement
   changes when one worker crashes (the consistent-hash guarantee).

All latencies are simulated milliseconds; results are deterministic per
seed and safe to regression-guard across commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_data_cache.py            # full
    PYTHONPATH=src python benchmarks/bench_data_cache.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json

from _harness import (
    assert_no_ratio_regression,
    load_committed_baseline,
    percentile,
    print_table,
)
from repro.cache.data_cache import MIB, DataCacheConfig, TieredDataCache
from repro.common.clock import SimulatedClock
from repro.common.ring import ConsistentHashRing
from repro.execution.cluster import PrestoClusterSim
from repro.workloads.traffic_storm import CacheStorm, build_cache_storm

MISS_READ_MS = 5.0  # simulated remote-storage read charged on a miss
POLICIES = ["lru", "lfu", "tinylfu"]


def replay_cache(storm: CacheStorm, config: DataCacheConfig) -> dict:
    """Replay the storm through one cache; returns its scorecard."""
    cache = TieredDataCache(config)
    latencies = []
    for access in storm.accesses:
        read = cache.read(access.key, access.size_bytes)
        latencies.append(read.latency_ms)
    stats = cache.stats
    return {
        "name": f"{config.policy}/hot{config.hot_bytes // MIB}+"
        f"ssd{config.ssd_bytes // MIB}MiB",
        "policy": config.policy,
        "hot_mib": config.hot_bytes // MIB,
        "ssd_mib": config.ssd_bytes // MIB,
        "hit_ratio": round(cache.hit_ratio(), 4),
        "hot_hits": stats.hits_hot,
        "ssd_hits": stats.hits_ssd,
        "misses": stats.misses,
        "evictions": stats.evictions_hot + stats.evictions_ssd,
        "admission_rejects": stats.admission_rejects_hot
        + stats.admission_rejects_ssd,
        "mean_read_ms": round(sum(latencies) / len(latencies), 4),
        "p95_read_ms": round(percentile(latencies, 95), 4),
        "shadow_hit_ratio": round(cache.shadow.estimated_hit_ratio(), 4),
    }


def replay_cluster(
    storm: CacheStorm, config: DataCacheConfig, queries: int, splits_per_query: int
) -> dict:
    """End-to-end: the storm's popular keys as affinity-scheduled splits.

    Runs the query set twice and reports the *second* (steady-state)
    round, as the data-cache papers do: round one warms the per-worker
    tiers, round two shows what repeat dashboard traffic actually pays.
    One-touch scan keys are excluded here — they can never hit and would
    put a miss in nearly every query; the policy sweep covers them.
    """
    cluster = PrestoClusterSim(
        workers=4,
        slots_per_worker=2,
        clock=SimulatedClock(),
        affinity_scheduling=True,
        data_cache=config,
        name="cache-bench",
    )
    popular = [a for a in storm.accesses if not a.key.startswith("scan/")]
    rounds: list[list[float]] = []
    for _ in range(2):
        executions = []
        cursor = 0
        for _ in range(queries):
            batch = [
                popular[(cursor + i) % len(popular)] for i in range(splits_per_query)
            ]
            cursor += splits_per_query
            executions.append(
                cluster.submit_query(
                    [20.0] * len(batch),
                    split_keys=[a.key for a in batch],
                    split_sizes=[a.size_bytes for a in batch],
                )
            )
            cluster.run_until_idle()
        rounds.append([ex.finished_at - ex.submitted_at for ex in executions])
    latencies = rounds[1]
    hits = sum(w.cache_hits for w in cluster.workers.values())
    return {
        "queries": queries,
        "splits": queries * splits_per_query,
        "cache_hits": hits,
        "p50_ms": round(percentile(latencies, 50), 3),
        "p95_ms": round(percentile(latencies, 95), 3),
        "mean_ms": round(sum(latencies) / len(latencies), 3),
    }


def measure_crash_remap(workers: int = 8, keys: int = 2000) -> dict:
    """Fraction of keys remapped when one of ``workers`` crashes."""
    ring = ConsistentHashRing([f"worker-{i}" for i in range(workers)])
    names = [f"warehouse/part-{i}" for i in range(keys)]
    before = {key: ring.lookup(key) for key in names}
    victim = "worker-3"
    ring.remove(victim)
    moved = sum(1 for key in names if ring.lookup(key) != before[key])
    return {
        "workers": workers,
        "keys": keys,
        "remapped": moved,
        "remap_fraction": round(moved / keys, 4),
        "bound_fraction": round(2 / workers, 4),
    }


def run(smoke: bool) -> dict:
    if smoke:
        storm = build_cache_storm(accesses=400, keys=60, seed=11)
        tier_sizes = [(8, 32)]
        queries, splits_per_query = 20, 4
        shadow_factor = 2
    else:
        storm = build_cache_storm(accesses=8000, keys=400, seed=11)
        tier_sizes = [(16, 64), (32, 128), (64, 256)]
        queries, splits_per_query = 150, 6
        shadow_factor = 4

    sweep = []
    for hot_mib, ssd_mib in tier_sizes:
        for policy in POLICIES:
            sweep.append(
                replay_cache(
                    storm,
                    DataCacheConfig(
                        policy=policy,
                        hot_bytes=hot_mib * MIB,
                        ssd_bytes=ssd_mib * MIB,
                        miss_read_ms=MISS_READ_MS,
                        shadow_factor=shadow_factor,
                    ),
                )
            )

    # Shadow validation: the base config's shadow estimate vs an actual
    # shadow_factor x larger LRU cache over the same storm.
    base_hot, base_ssd = tier_sizes[0]
    base = next(
        e for e in sweep if e["policy"] == "lru" and e["hot_mib"] == base_hot
    )
    larger = replay_cache(
        storm,
        DataCacheConfig(
            policy="lru",
            hot_bytes=base_hot * MIB * shadow_factor,
            ssd_bytes=base_ssd * MIB * shadow_factor,
            miss_read_ms=MISS_READ_MS,
        ),
    )
    shadow = {
        "estimate": base["shadow_hit_ratio"],
        "actual_at_factor": larger["hit_ratio"],
        "error": round(abs(base["shadow_hit_ratio"] - larger["hit_ratio"]), 4),
        "factor": shadow_factor,
    }

    # End-to-end cluster replay, cached vs cold (zero-capacity tiers).
    cached_config = DataCacheConfig(
        hot_bytes=tier_sizes[-1][0] * MIB,
        ssd_bytes=tier_sizes[-1][1] * MIB,
        miss_read_ms=MISS_READ_MS,
    )
    no_cache_config = DataCacheConfig(
        hot_bytes=0, ssd_bytes=0, miss_read_ms=MISS_READ_MS
    )
    cluster_cached = replay_cluster(storm, cached_config, queries, splits_per_query)
    cluster_cold = replay_cluster(storm, no_cache_config, queries, splits_per_query)

    return {
        "benchmark": "data_cache",
        "paper_section": "VII (caching) + RaptorX/Alluxio follow-up",
        "smoke": smoke,
        "accesses": len(storm.accesses),
        "unique_keys": storm.unique_keys(),
        "seed": storm.seed,
        "miss_read_ms": MISS_READ_MS,
        "sweep": sweep,
        "shadow": shadow,
        "cluster": {"cached": cluster_cached, "no_cache": cluster_cold},
        "crash_remap": measure_crash_remap(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny storm + skip gates (CI)"
    )
    parser.add_argument(
        "--output", default="BENCH_data_cache.json", help="result JSON path"
    )
    args = parser.parse_args()

    # Load the committed baseline *before* the run overwrites it.
    baseline = load_committed_baseline("BENCH_data_cache.json")

    report = run(args.smoke)
    print_table(
        "Data cache: hit ratio and read latency by policy and tier size",
        [
            "config",
            "hit ratio",
            "hot",
            "ssd",
            "miss",
            "evicted",
            "rejected",
            "mean ms",
            "p95 ms",
        ],
        [
            [
                entry["name"],
                entry["hit_ratio"],
                entry["hot_hits"],
                entry["ssd_hits"],
                entry["misses"],
                entry["evictions"],
                entry["admission_rejects"],
                entry["mean_read_ms"],
                entry["p95_read_ms"],
            ]
            for entry in report["sweep"]
        ],
    )
    cached = report["cluster"]["cached"]
    cold = report["cluster"]["no_cache"]
    print_table(
        "End-to-end: affinity-scheduled splits, cached vs no cache",
        ["mode", "cache hits", "p50 ms", "p95 ms", "mean ms"],
        [
            ["tiered cache", cached["cache_hits"], cached["p50_ms"], cached["p95_ms"], cached["mean_ms"]],
            ["no cache", cold["cache_hits"], cold["p50_ms"], cold["p95_ms"], cold["mean_ms"]],
        ],
    )
    shadow = report["shadow"]
    remap = report["crash_remap"]
    print(
        f"shadow: estimate {shadow['estimate']:.4f} vs actual "
        f"{shadow['actual_at_factor']:.4f} at {shadow['factor']}x "
        f"(error {shadow['error']:.4f})"
    )
    print(
        f"crash remap: {remap['remapped']}/{remap['keys']} keys "
        f"({remap['remap_fraction']:.4f}) <= bound {remap['bound_fraction']:.4f}"
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.output}")

    # Structural gates hold even in smoke mode.
    assert remap["remap_fraction"] <= remap["bound_fraction"], (
        "single crash remapped more than 2/N of keys"
    )
    assert cached["cache_hits"] > 0, "cluster replay produced no cache hits"
    if not args.smoke:
        by_policy = {
            (e["policy"], e["hot_mib"]): e["hit_ratio"] for e in report["sweep"]
        }
        for hot_mib in {e["hot_mib"] for e in report["sweep"]}:
            assert by_policy[("tinylfu", hot_mib)] >= by_policy[("lru", hot_mib)], (
                f"TinyLFU lost to LRU at hot={hot_mib}MiB on the zipfian storm"
            )
        assert cached["p95_ms"] < cold["p95_ms"], (
            "tiered cache did not beat no-cache p95 latency"
        )
        assert shadow["error"] <= 0.05, (
            "shadow estimate off by more than 0.05 from the actual larger cache"
        )
        assert_no_ratio_regression(
            baseline, report, metric="hit_ratio", section="sweep"
        )
        print(
            "targets met: TinyLFU >= LRU hit ratio, cached p95 beats "
            "no-cache, shadow within 0.05, remap <= 2/N, no hit-ratio "
            "regression vs committed baseline"
        )


if __name__ == "__main__":
    main()
