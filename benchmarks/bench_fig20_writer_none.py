"""Figure 20: writer throughput comparison, no compression.

Paper result: ≥20% gains everywhere; "when writing all columns of TPCH
LINEITEM, the throughput gain is around 50%."
"""

from _writer_common import report_and_assert, run_writer_comparison
from repro.formats.parquet.compression import UNCOMPRESSED


def test_fig20_writer_throughput_uncompressed(benchmark):
    results = benchmark.pedantic(
        lambda: run_writer_comparison(UNCOMPRESSED), rounds=1, iterations=1
    )
    report_and_assert(results, "No Compression", benchmark)
    gains = {name: gain for name, _, _, gain in results}
    # Paper highlight: all-LINEITEM gains are substantial (~50%).
    assert gains["All Lineitem columns"] > 1.3
