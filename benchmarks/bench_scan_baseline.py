"""Single-core scan baseline: typed varchar buffers vs the object lane.

TPC-H Q1/Q6-style scans over LINEITEM pages, one core, reporting
rows/sec-per-core.  Each suite runs twice on identical data: once with
offsets-based :class:`VarcharBlock` columns (the native representation)
and once with the legacy object-array lane (``object_varchar_lane()``).
Results must match exactly; the varchar-heavy suites must clear a >=3x
rows/sec target and the numeric suite must stay within noise — the new
buffers are not allowed to tax numeric scans.

Page construction happens outside the timed region (both lanes pay the
same row->block conversion); repetitions re-wrap blocks to drop
per-block caches so steady-state kernel cost is what gets measured.
The ``page_shredding`` suite times that row->page conversion itself —
``Page.from_rows`` transposes through one 2-D object array — so the
conversion cost is tracked against the committed baseline too.

Usage::

    PYTHONPATH=src python benchmarks/bench_scan_baseline.py            # full
    PYTHONPATH=src python benchmarks/bench_scan_baseline.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import contextlib
import json
import time

import numpy as np

from _harness import assert_no_regression, load_committed_baseline, print_table
from repro.core.blocks import (
    Block,
    PrimitiveBlock,
    VarcharBlock,
    object_varchar_lane,
)
from repro.core.evaluator import Evaluator
from repro.core.expressions import (
    CallExpression,
    SpecialForm,
    SpecialFormExpression,
    and_,
    constant,
    variable,
)
from repro.core.functions import default_registry
from repro.core.page import Page
from repro.core.types import BIGINT, BOOLEAN, DOUBLE, VARCHAR
from repro.execution import kernels
from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem

PAGE_SIZE = 8192
REGISTRY = default_registry()
LINEITEM_TYPES = [t for _, t in LINEITEM_COLUMNS]
COLUMN_INDEX = {name: i for i, (name, _) in enumerate(LINEITEM_COLUMNS)}


def call(name, args, arg_types):
    handle, _ = REGISTRY.resolve_scalar(name, arg_types)
    return CallExpression(name, handle, handle.resolved_return_type(), tuple(args))


def in_(needle, haystack):
    return SpecialFormExpression(
        SpecialForm.IN,
        BOOLEAN,
        (needle, *(constant(v, VARCHAR) for v in haystack)),
    )


def _bindings(page: Page, names) -> dict[str, Block]:
    return {name: page.block(COLUMN_INDEX[name]) for name in names}


def _values(page: Page, name: str) -> np.ndarray:
    return page.block(COLUMN_INDEX[name]).values


# -- suites ------------------------------------------------------------------
#
# Each suite is (name, kind, predicate-bindings, fn(pages, evaluator) ->
# canonical result).  Results are compared exactly across lanes.


def scan_numeric_q6(pages, evaluator):
    """Q6: pure numeric filter + sum(extendedprice * discount)."""
    predicate = and_(
        call(
            "less_than",
            [variable("quantity", DOUBLE), constant(24.0, DOUBLE)],
            [DOUBLE, DOUBLE],
        ),
        call(
            "greater_than_or_equal",
            [variable("discount", DOUBLE), constant(0.03, DOUBLE)],
            [DOUBLE, DOUBLE],
        ),
        call(
            "less_than_or_equal",
            [variable("discount", DOUBLE), constant(0.07, DOUBLE)],
            [DOUBLE, DOUBLE],
        ),
    )
    revenue = 0.0
    matched = 0
    for page in pages:
        mask = evaluator.filter_mask(
            predicate, _bindings(page, ["quantity", "discount"]), page.position_count
        )
        positions = np.flatnonzero(mask)
        price = _values(page, "extendedprice")[positions]
        discount = _values(page, "discount")[positions]
        revenue += float((price * discount).sum())
        matched += len(positions)
    return {"revenue": round(revenue, 2), "rows": matched}


def scan_varchar_q1(pages, evaluator):
    """Q1: varchar date filter + GROUP BY (returnflag, linestatus)."""
    predicate = call(
        "less_than_or_equal",
        [variable("shipdate", VARCHAR), constant("1998-09-02", VARCHAR)],
        [VARCHAR, VARCHAR],
    )
    index = kernels.GroupIndex()
    counts = np.zeros(0, dtype=np.int64)
    qty = np.zeros(0, dtype=np.float64)
    for page in pages:
        mask = evaluator.filter_mask(
            predicate, _bindings(page, ["shipdate"]), page.position_count
        )
        positions = np.flatnonzero(mask)
        keys = [
            page.block(COLUMN_INDEX[name]).take(positions)
            for name in ("returnflag", "linestatus")
        ]
        factorized = kernels.factorize_keys(keys)
        assert factorized is not None
        codes = index.map_codes(*factorized)
        groups = len(index)
        page_counts = np.bincount(codes, minlength=groups)
        page_qty = np.bincount(
            codes, weights=_values(page, "quantity")[positions], minlength=groups
        )
        if groups > len(counts):
            counts = np.concatenate([counts, np.zeros(groups - len(counts), np.int64)])
            qty = np.concatenate([qty, np.zeros(groups - len(qty), np.float64)])
        counts[: len(page_counts)] += page_counts.astype(np.int64)
        qty[: len(page_qty)] += page_qty
    return {
        "groups": [
            [list(key), int(counts[g]), round(float(qty[g]), 2)]
            for g, key in enumerate(index.keys)
        ]
    }


def scan_varchar_filter(pages, evaluator):
    """Membership + equality + LIKE over three varchar columns."""
    predicate = and_(
        in_(variable("shipmode", VARCHAR), ["AIR", "MAIL"]),
        call(
            "equal",
            [variable("shipinstruct", VARCHAR), constant("DELIVER IN PERSON", VARCHAR)],
            [VARCHAR, VARCHAR],
        ),
        call(
            "like",
            [variable("comment", VARCHAR), constant("carefully%", VARCHAR)],
            [VARCHAR, VARCHAR],
        ),
    )
    matched = 0
    for page in pages:
        mask = evaluator.filter_mask(
            predicate,
            _bindings(page, ["shipmode", "shipinstruct", "comment"]),
            page.position_count,
        )
        matched += int(mask.sum())
    return {"rows": matched}


def scan_varchar_substr(pages, evaluator):
    """substr/length-heavy predicate (offsets-arithmetic kernels)."""
    predicate = and_(
        call(
            "equal",
            [
                call(
                    "substr",
                    [
                        variable("shipdate", VARCHAR),
                        constant(1, BIGINT),
                        constant(4, BIGINT),
                    ],
                    [VARCHAR, BIGINT, BIGINT],
                ),
                constant("1997", VARCHAR),
            ],
            [VARCHAR, VARCHAR],
        ),
        call(
            "greater_than",
            [
                call("length", [variable("comment", VARCHAR)], [VARCHAR]),
                constant(40, BIGINT),
            ],
            [BIGINT, BIGINT],
        ),
    )
    matched = 0
    for page in pages:
        mask = evaluator.filter_mask(
            predicate, _bindings(page, ["shipdate", "comment"]), page.position_count
        )
        matched += int(mask.sum())
    return {"rows": matched}


SUITES = [
    ("numeric_q6", "numeric", scan_numeric_q6),
    ("varchar_q1_groupby", "varchar", scan_varchar_q1),
    ("varchar_filter", "varchar", scan_varchar_filter),
    ("varchar_substr_length", "varchar", scan_varchar_substr),
]


# -- measurement -------------------------------------------------------------


def _rewrap(block: Block) -> Block:
    """Copy a block's identity without its lazily built caches."""
    if isinstance(block, VarcharBlock):
        return VarcharBlock(block.type, block.data, block.offsets, block.nulls)
    if isinstance(block, PrimitiveBlock):
        return PrimitiveBlock(block.type, block.values, block.nulls)
    return block


def _fresh(pages: list[Page]) -> list[Page]:
    return [
        Page([_rewrap(b) for b in page.blocks], page.position_count) for page in pages
    ]


def build_pages(rows: list[tuple]) -> list[Page]:
    return [
        Page.from_rows(LINEITEM_TYPES, rows[start : start + PAGE_SIZE])
        for start in range(0, len(rows), PAGE_SIZE)
    ]


def _shred_fingerprint(pages: list[Page]) -> tuple:
    """Cheap lane-independent identity: shape plus boundary rows."""
    return (
        len(pages),
        sum(p.position_count for p in pages),
        pages[0].row(0),
        pages[-1].row(pages[-1].position_count - 1),
    )


def _timed(fn, pages, evaluator):
    trial = _fresh(pages)
    start = time.perf_counter()
    result = fn(trial, evaluator)
    return time.perf_counter() - start, result


def run(smoke: bool) -> dict:
    rows_count = 4_000 if smoke else 200_000
    repeat = 1 if smoke else 5
    rows = generate_lineitem(rows_count)
    native_pages = build_pages(rows)
    with object_varchar_lane():
        object_pages = build_pages(rows)
    native_evaluator = Evaluator(REGISTRY)
    object_evaluator = Evaluator(REGISTRY)

    # Interleave lane repetitions per suite so cache/frequency drift hits
    # both representations equally; keep best-of-N per lane.
    native_ms: dict[str, float] = {}
    object_ms: dict[str, float] = {}
    native_results: dict[str, dict] = {}
    object_results: dict[str, dict] = {}
    for name, _, fn in SUITES:
        fn(_fresh(native_pages), native_evaluator)  # warm the compile cache
        with object_varchar_lane():
            fn(_fresh(object_pages), object_evaluator)
        native_best = object_best = float("inf")
        for _ in range(repeat):
            elapsed, native_results[name] = _timed(fn, native_pages, native_evaluator)
            native_best = min(native_best, elapsed)
            with object_varchar_lane():
                elapsed, object_results[name] = _timed(
                    fn, object_pages, object_evaluator
                )
            object_best = min(object_best, elapsed)
        native_ms[name] = native_best
        object_ms[name] = object_best

    # Page shredding: the rows -> pages conversion itself, per lane.
    native_shred = object_shred = float("inf")
    shred_fingerprints = {}
    for _ in range(repeat):
        start = time.perf_counter()
        shredded = build_pages(rows)
        native_shred = min(native_shred, time.perf_counter() - start)
        shred_fingerprints["native"] = _shred_fingerprint(shredded)
        with object_varchar_lane():
            start = time.perf_counter()
            shredded = build_pages(rows)
            object_shred = min(object_shred, time.perf_counter() - start)
            shred_fingerprints["object"] = _shred_fingerprint(shredded)

    benchmarks = [
        {
            "name": "page_shredding",
            "kind": "shredding",
            "rows": rows_count,
            "native_ms": round(native_shred * 1000.0, 3),
            "object_ms": round(object_shred * 1000.0, 3),
            "native_rows_per_sec_per_core": round(rows_count / native_shred),
            "object_rows_per_sec_per_core": round(rows_count / object_shred),
            "speedup": round(object_shred / native_shred, 2),
            "identical": shred_fingerprints["native"] == shred_fingerprints["object"],
        }
    ]
    for name, kind, _ in SUITES:
        native_s, object_s = native_ms[name], object_ms[name]
        benchmarks.append(
            {
                "name": name,
                "kind": kind,
                "rows": rows_count,
                "native_ms": round(native_s * 1000.0, 3),
                "object_ms": round(object_s * 1000.0, 3),
                "native_rows_per_sec_per_core": round(rows_count / native_s),
                "object_rows_per_sec_per_core": round(rows_count / object_s),
                "speedup": round(object_s / native_s, 2),
                "identical": native_results[name] == object_results[name],
            }
        )
    return {
        "benchmark": "scan_baseline",
        "paper_section": "III (vectorized engine) / V (columnar data plane)",
        "smoke": smoke,
        "rows": rows_count,
        "benchmarks": benchmarks,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes + skip speedup gates (CI)"
    )
    parser.add_argument(
        "--output", default="BENCH_scan_baseline.json", help="result JSON path"
    )
    args = parser.parse_args()

    # Load the committed baseline *before* the run overwrites it: full-mode
    # runs must not regress rows/sec-per-core by more than 15% vs what the
    # repo last published (the ROADMAP's "track the baseline across PRs").
    baseline = load_committed_baseline("BENCH_scan_baseline.json")

    report = run(args.smoke)
    print_table(
        "Single-core scan baseline: offsets-based varchar vs object lane",
        ["suite", "kind", "rows", "native ms", "object ms", "native rows/s", "speedup", "identical"],
        [
            [
                b["name"],
                b["kind"],
                b["rows"],
                b["native_ms"],
                b["object_ms"],
                b["native_rows_per_sec_per_core"],
                b["speedup"],
                b["identical"],
            ]
            for b in report["benchmarks"]
        ],
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.output}")

    assert all(b["identical"] for b in report["benchmarks"]), "lanes diverged"
    if not args.smoke:
        assert_no_regression(baseline, report, "native_rows_per_sec_per_core")
        for b in report["benchmarks"]:
            if b["kind"] == "varchar":
                assert b["speedup"] >= 3.0, (
                    f"{b['name']}: {b['speedup']}x below the 3x varchar target"
                )
            elif b["kind"] == "numeric":
                assert b["speedup"] >= 0.85, (
                    f"{b['name']}: numeric scan regressed ({b['speedup']}x)"
                )
        print("targets met: >=3x varchar-heavy, numeric within noise")


if __name__ == "__main__":
    main()
