"""Table I: the self-contained RowExpression representation.

The table enumerates the five subtypes that replaced the AST-based
expression representation for pushdown.  This bench verifies, and times,
the property that makes pushdown work: every subtype — including a
CallExpression with its resolved FunctionHandle — serializes, crosses a
(JSON) boundary, deserializes, re-resolves, and evaluates identically.
"""

from __future__ import annotations

import json

from _harness import print_table
from repro.core.evaluator import Evaluator
from repro.core.blocks import PrimitiveBlock
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    LambdaDefinitionExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
    constant,
    expression_from_dict,
    variable,
)
from repro.core.functions import default_registry
from repro.core.types import BIGINT, BOOLEAN, VARCHAR


def _call(name, args, types):
    handle, _ = default_registry().resolve_scalar(name, types)
    return CallExpression(name, handle, handle.resolved_return_type(), tuple(args))


def table1_expressions():
    """One representative of each Table I subtype."""
    add = _call("add", [variable("x", BIGINT), variable("y", BIGINT)], [BIGINT, BIGINT])
    return [
        ("ConstantExpression", ConstantExpression(1, BIGINT)),
        ("VariableReferenceExpression", VariableReferenceExpression("city_id", BIGINT)),
        ("CallExpression", _call("equal", [variable("c", BIGINT), constant(12, BIGINT)], [BIGINT, BIGINT])),
        (
            "SpecialFormExpression",
            SpecialFormExpression(
                SpecialForm.IN,
                BOOLEAN,
                (variable("s", VARCHAR), constant("a", VARCHAR), constant("b", VARCHAR)),
            ),
        ),
        (
            "LambdaDefinitionExpression",
            LambdaDefinitionExpression(("x", "y"), (BIGINT, BIGINT), add, BIGINT),
        ),
    ]


def round_trip_all(iterations: int = 2_000):
    expressions = table1_expressions()
    for _ in range(iterations):
        for _, expression in expressions:
            restored = expression_from_dict(json.loads(json.dumps(expression.to_dict())))
            assert restored == expression
    return expressions


def test_table1_rowexpression_round_trip(benchmark):
    expressions = benchmark(round_trip_all, 200)
    rows = []
    for name, expression in expressions:
        serialized = json.dumps(expression.to_dict())
        rows.append((name, expression.display(), f"{len(serialized)} bytes"))
    print_table(
        "Table I: self contained RowExpressions (JSON round-trip verified)",
        ["ExpressionType", "example", "serialized size"],
        rows,
    )


def test_table1_function_handle_is_self_contained(benchmark):
    """A connector with only the serialized form can re-resolve and run it."""
    expression = _call(
        "equal", [variable("city_id", BIGINT), constant(12, BIGINT)], [BIGINT, BIGINT]
    )
    payload = json.dumps(expression.to_dict())

    def connector_side():
        restored = expression_from_dict(json.loads(payload))
        evaluator = Evaluator()  # fresh evaluator, as a connector would have
        block = PrimitiveBlock.from_values(BIGINT, [11, 12, 13, 12])
        mask = evaluator.filter_mask(restored, {"city_id": block}, 4)
        return list(mask)

    result = benchmark(connector_side)
    assert result == [False, True, False, True]
