"""Section VI: geospatial queries — QuadTree vs brute force.

Paper setup: the trips-per-city join (``st_contains(c.geo_shape,
st_point(t.dest_lng, t.dest_lat))``) over geofences with hundreds of
vertices.  Paper result: "our Presto Geospatial Plugin is more than 50X
faster" than brute force, and "more than 90% [of geospatial traffic] is
completed within five minutes".

Both strategies run the same SQL; a session property flips the plan
between the QuadTree SpatialJoin (figure 13 rewrite) and the brute-force
pairwise ``st_contains``.
"""

from __future__ import annotations

import pytest

from _harness import print_table, wall_time_ms
from repro.connectors.memory import MemoryConnector
from repro.core.types import BIGINT, DOUBLE, GEOMETRY, VARCHAR
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.planner.plan import SpatialJoinNode
from repro.workloads.geofences import generate_cities, generate_trip_points

NUM_CITIES = 150
VERTICES = 400
NUM_TRIPS = 4_000

SQL = (
    "SELECT c.city_id, count(*) AS trips FROM trips_table t "
    "JOIN city_table c ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat)) "
    "WHERE t.datestr = '2017-08-01' "
    "GROUP BY c.city_id"
)


@pytest.fixture(scope="module")
def connector():
    cities = generate_cities(NUM_CITIES, vertices_per_city=VERTICES)
    points = generate_trip_points(NUM_TRIPS, cities, in_city_fraction=0.6)
    connector = MemoryConnector()
    connector.create_table(
        "geo",
        "city_table",
        [("city_id", BIGINT), ("geo_shape", GEOMETRY)],
        [(cid, polygon) for cid, polygon in cities],
    )
    connector.create_table(
        "geo",
        "trips_table",
        [("dest_lng", DOUBLE), ("dest_lat", DOUBLE), ("datestr", VARCHAR)],
        [(p.x, p.y, "2017-08-01") for p in points],
    )
    return connector


def make_engine(connector, use_index: bool):
    session = Session(
        catalog="memory", schema="geo", properties={"geo_index_enabled": use_index}
    )
    engine = PrestoEngine(session=session)
    engine.register_connector("memory", connector)
    return engine


def test_sec6_quadtree_vs_brute_force(connector, benchmark):
    indexed_engine = make_engine(connector, use_index=True)
    brute_engine = make_engine(connector, use_index=False)

    def run():
        indexed_ms, indexed = wall_time_ms(lambda: indexed_engine.execute(SQL))
        brute_ms, brute = wall_time_ms(lambda: brute_engine.execute(SQL))
        assert sorted(indexed.rows) == sorted(brute.rows)
        return indexed_ms, brute_ms, len(indexed.rows)

    indexed_ms, brute_ms, groups = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = brute_ms / indexed_ms
    print_table(
        "Section VI: trips-per-city geospatial join",
        ["strategy", "latency_ms", "speedup"],
        [
            ("brute force st_contains", f"{brute_ms:.0f}", "1.0x"),
            ("QuadTree (build_geo_index)", f"{indexed_ms:.0f}", f"{speedup:.1f}x"),
        ],
    )
    print(
        f"{NUM_TRIPS} trips x {NUM_CITIES} geofences x {VERTICES} vertices; "
        f"speedup {speedup:.1f}x (paper: >50x vs brute-force Hive MapReduce)"
    )
    benchmark.extra_info["speedup"] = speedup
    assert speedup > 10.0  # paper: >50x vs a MapReduce baseline


def test_sec6_plan_rewrite_applies(connector):
    """Figure 13: the optimizer rewrites st_contains joins to SpatialJoin."""
    engine = make_engine(connector, use_index=True)
    plan = engine.plan(SQL)
    spatial = [n for n in plan.walk() if isinstance(n, SpatialJoinNode)]
    assert len(spatial) == 1
    assert spatial[0].use_index


def test_sec6_quadtree_filters_most_candidates(connector, benchmark):
    """'The majority of bounded rectangles that do not contain target point
    could be filtered out.'"""
    from repro.geo.quadtree import GeoIndex

    cities = generate_cities(NUM_CITIES, vertices_per_city=VERTICES)
    points = generate_trip_points(500, cities, in_city_fraction=0.6)
    index = GeoIndex.build(cities)

    def probe_all():
        return sum(len(index.candidates(p)) for p in points)

    total_candidates = benchmark(probe_all)
    pairs = len(points) * NUM_CITIES
    fraction = total_candidates / pairs
    print(
        f"candidate fraction after QuadTree filtering: {fraction * 100:.2f}% "
        f"of {pairs} (point, geofence) pairs"
    )
    assert fraction < 0.05  # >95% of pairs never reach st_contains
